//! Vendored offline stand-in for `criterion`.
//!
//! Implements the benchmark-definition API this workspace uses
//! (`benchmark_group` / `sample_size` / `bench_function` / `finish`,
//! `criterion_group!`, `criterion_main!`) with a simple wall-clock
//! measurement loop: each benchmark is warmed up, run in doubling batches
//! until it accumulates enough time, and reported as ns/iter (median over
//! `sample_size` samples). Statistical analysis, plotting and baselines
//! are out of scope — the numbers are for relative, same-machine
//! comparison.
//!
//! CLI: the first non-flag argument is a substring filter on
//! `group/function` ids, matching `cargo bench -- <filter>` usage.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark registry/runner handed to `criterion_group!` functions.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { filter: None }
    }
}

impl Criterion {
    /// Build from CLI args (cargo passes `--bench` and the filter string).
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion { filter }
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            filter: self.filter.clone(),
            sample_size: 10,
        }
    }

    /// Run one stand-alone benchmark (treated as group = function name).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    name: String,
    filter: Option<String>,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set how many timing samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be nonzero");
        self.sample_size = n;
        self
    }

    /// Define and (filter permitting) immediately run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = if self.name == id {
            id.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { ns_per_iter: 0.0 };
            f(&mut b);
            samples.push(b.ns_per_iter);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!("{full:<50} {} /iter  [{} .. {}]", fmt_ns(median), fmt_ns(min), fmt_ns(max));
        self
    }

    /// Finish the group (reporting is immediate; nothing left to do).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Measure `f`, called in doubling batches until enough time has
    /// accumulated for a stable per-iteration estimate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iters >= 1 << 24 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            iters *= 2;
        }
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}
