//! Vendored offline stand-in for `serde_json`.
//!
//! Maps the vendored `serde::Value` data model to and from JSON text.
//! Output is fully deterministic: objects print in insertion order (derive
//! field order) and floats use Rust's shortest round-trip formatting, so
//! identical values always produce byte-identical JSON.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialize a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deserialize(&v)?)
}

// ---- writer ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: our writer never emits them,
                            // but accept them for robustness.
                            if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error("bad surrogate pair".into()))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error("bad \\u escape".into()))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                b => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("bad \\u escape".into()))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("hello \"world\"\n".into())),
            ("n".into(), Value::U64(42)),
            ("neg".into(), Value::I64(-7)),
            ("x".into(), Value::F64(0.125)),
            (
                "seq".into(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1, 1.0 / 3.0, 1e300, 5e-324, 123456789.123456789] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }
}
