//! Vendored offline stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! `proptest!` macro, `Strategy` with `prop_map`, integer-range and
//! `any::<T>()` strategies, `collection::vec`, `sample::select`, `Just`,
//! `prop_oneof!`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test RNG (seeded from the test path), there is no
//! shrinking, and `proptest-regressions` files are ignored. Failures still
//! report the generated inputs.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test path so every test has a stable stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`; `span` must be nonzero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        self.next_u64() % span
    }
}

/// Error raised by a failing or rejected test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Type-erase for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Build from the strategy list (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

/// Full-domain sampling for `any::<T>()`.
pub trait ArbitrarySample: Sized + Debug {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitrarySample for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitrarySample for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitrarySample for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only, spread over a wide range.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Generate arbitrary values of `T`.
pub fn any<T: ArbitrarySample>() -> Any<T> {
    Any(PhantomData)
}

impl<T: ArbitrarySample> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::collection` — container strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_incl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_incl: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_incl: n,
            }
        }
    }

    /// Vectors of `elem`-generated values with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_incl - self.size.min) as u64;
            let len = self.size.min + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// `proptest::sample` — choosing among known values.
pub mod sample {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Uniformly select one of the given values.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    /// Strategy produced by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Define property tests. See the real proptest docs; this stand-in runs
/// `cases` deterministic samples per test, with no shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => { $(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut __ok: u32 = 0;
            let mut __rejects: u32 = 0;
            while __ok < __cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)*),
                    $(&$arg),*
                );
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __result {
                    ::std::result::Result::Ok(()) => { __ok += 1; }
                    ::std::result::Result::Err($crate::TestCaseError::Reject(__why)) => {
                        __rejects += 1;
                        assert!(
                            __rejects < 10_000,
                            "too many prop_assume! rejections ({}): {}",
                            __rejects,
                            __why
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest case failed: {}\n\tinputs: {}",
                            __msg, __inputs
                        );
                    }
                }
            }
        }
    )* };
    ($($rest:tt)*) => {
        $crate::proptest!{ @with_config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Fallible assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fallible equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n\tleft:  {:?}\n\tright: {:?}",
                stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n\tleft:  {:?}\n\tright: {:?}",
                format!($($fmt)*), __l, __r
            )));
        }
    }};
}

/// Fallible inequality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n\tboth: {:?}",
                stringify!($left), stringify!($right), __l
            )));
        }
    }};
}

/// Reject the current case (inputs re-drawn, not counted as a run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len = {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![ (0u64..5).prop_map(|x| x * 2), Just(100u64) ]) {
            prop_assert!(v == 100 || (v % 2 == 0 && v < 10));
        }

        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn select_picks_members() {
        let s = crate::sample::select(vec!["a", "b", "c"]);
        let mut rng = crate::TestRng::from_name("select");
        for _ in 0..50 {
            let v = crate::Strategy::sample(&s, &mut rng);
            assert!(["a", "b", "c"].contains(&v));
        }
    }
}
