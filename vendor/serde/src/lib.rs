//! Vendored offline stand-in for `serde`.
//!
//! The build environment has no network access and no cached registry, so
//! the workspace vendors a minimal serde replacement. Instead of serde's
//! visitor-based zero-copy architecture, this stub round-trips everything
//! through an owned [`Value`] tree: `Serialize` renders a type into a
//! `Value`, `Deserialize` rebuilds it from one. `serde_json` (also
//! vendored) maps `Value` to and from JSON text.
//!
//! Supported surface (everything this workspace uses):
//! * `#[derive(Serialize, Deserialize)]` on non-generic structs and enums
//!   (externally tagged, like real serde's default representation).
//! * Primitives, `String`, `Vec<T>`, `Option<T>`, `[T; N]`, small tuples.
//! * Map serialization preserves insertion order, so derive output is
//!   deterministic field order — important for bit-identical JSON reports.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The intermediate data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also `None` and unit structs).
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (only produced for negative values or signed types).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (JSON array).
    Seq(Vec<Value>),
    /// Ordered map (JSON object); insertion order is preserved.
    Map(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
    /// An enum payload named a variant the type does not have.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        Error(format!("unknown variant `{variant}` for {ty}"))
    }
    /// The value's shape does not match the target type.
    pub fn invalid_type(ty: &str, got: &Value) -> Self {
        Error(format!("invalid type for {ty}: {got:?}"))
    }
    /// A struct field was absent from the map.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Error(format!("missing field `{field}` for {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the [`Value`] data model.
pub trait Serialize {
    /// Produce the `Value` representation.
    fn serialize(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse the `Value` representation.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---- helpers used by derive-generated code ----

/// Expect a map value; used by derived struct/enum impls.
pub fn de_map<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
    match v {
        Value::Map(m) => Ok(m),
        other => Err(Error::invalid_type(ty, other)),
    }
}

/// Expect a sequence value; used by derived tuple impls.
pub fn de_seq<'v>(v: &'v Value, ty: &str) -> Result<&'v [Value], Error> {
    match v {
        Value::Seq(s) => Ok(s),
        other => Err(Error::invalid_type(ty, other)),
    }
}

/// Look up a struct field by name.
pub fn de_field<'v>(m: &'v [(String, Value)], name: &str, ty: &str) -> Result<&'v Value, Error> {
    m.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::missing_field(name, ty))
}

// ---- primitive impls ----

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(Error::invalid_type(stringify!($t), other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for i64")))?,
                    other => return Err(Error::invalid_type(stringify!($t), other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::invalid_type("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::invalid_type("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::invalid_type("String", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        de_seq(v, "Vec")?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.serialize(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = de_seq(v, "array")?;
        if s.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                s.len()
            )));
        }
        let items: Vec<T> = s.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        items
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![self.0.serialize(), self.1.serialize()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = de_seq(v, "tuple")?;
        if s.len() != 2 {
            return Err(Error::custom("expected 2-tuple"));
        }
        Ok((A::deserialize(&s[0])?, B::deserialize(&s[1])?))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
