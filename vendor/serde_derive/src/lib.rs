//! Vendored offline stand-in for `serde_derive`.
//!
//! Hand-parses the derive input token stream (no `syn`/`quote` available
//! offline) and emits impls of the vendored `serde::Serialize` /
//! `serde::Deserialize` traits, which render through `serde::Value`.
//!
//! Supported shapes — everything this workspace derives on:
//! * non-generic structs with named fields -> `Value::Map` in field order;
//! * newtype structs -> transparent (the inner value);
//! * tuple structs with 2+ fields -> `Value::Seq`;
//! * unit structs -> `Value::Null`;
//! * non-generic enums, externally tagged like real serde: unit variants
//!   -> `Value::Str(name)`, data variants -> single-entry map
//!   `{name: payload}`.
//!
//! Field/variant attributes (`#[doc]`, `#[default]`, …) are skipped;
//! `#[serde(...)]` attributes are not supported (none exist in-tree).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_serialize(&shape).parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_deserialize(&shape).parse().expect("generated Deserialize impl parses")
}

// ---- parsing ----

fn parse_shape(input: TokenStream) -> Shape {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum keyword, got {other:?}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types ({name})");
    }
    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(&g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(&g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(&g.stream()),
            },
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("derive input must be a struct or enum, got `{other}`"),
    }
}

/// Skip any number of `#[...]` attributes and a `pub` / `pub(...)` prefix.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Skip one type (or any token run) up to a top-level `,`, tracking `<>`
/// nesting so commas inside generic arguments don't terminate early.
fn skip_to_top_level_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: &TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, got {other:?}"),
        };
        fields.push(name);
        i += 1; // field name
        i += 1; // ':'
        skip_to_top_level_comma(&toks, &mut i);
    }
    fields
}

fn count_tuple_fields(body: &TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut depth = 0i32;
    let mut arity = 0;
    let mut pending = false; // tokens seen since the last top-level comma
    for t in &toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    arity += 1;
                    pending = false;
                    continue;
                }
                _ => {}
            }
        }
        pending = true;
    }
    if pending {
        arity += 1;
    }
    arity
}

fn parse_variants(body: &TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(&g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        skip_to_top_level_comma(&toks, &mut i);
        variants.push(Variant { name, kind });
    }
    variants
}

// ---- code generation (string-built, then re-parsed) ----

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let mut body = String::from(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                body.push_str(&format!(
                    "__m.push((\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f})));\n"
                ));
            }
            body.push_str("::serde::Value::Map(__m)");
            impl_serialize(name, &body)
        }
        Shape::TupleStruct { name, arity: 1 } => {
            impl_serialize(name, "::serde::Serialize::serialize(&self.0)")
        }
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Seq(::std::vec![{}])", items.join(", ")),
            )
        }
        Shape::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(\"{vn}\".to_string(), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut payload = String::from(
                            "{ let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields {
                            payload.push_str(&format!(
                                "__m.push((\"{f}\".to_string(), ::serde::Serialize::serialize({f})));\n"
                            ));
                        }
                        payload.push_str("::serde::Value::Map(__m) }");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\"{vn}\".to_string(), {payload})]),\n"
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let mut body = format!("let __m = ::serde::de_map(__v, \"{name}\")?;\n");
            body.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                body.push_str(&format!(
                    "{f}: ::serde::Deserialize::deserialize(::serde::de_field(__m, \"{f}\", \"{name}\")?)?,\n"
                ));
            }
            body.push_str("})");
            impl_deserialize(name, &body)
        }
        Shape::TupleStruct { name, arity: 1 } => impl_deserialize(
            name,
            &format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"),
        ),
        Shape::TupleStruct { name, arity } => {
            let mut body = format!(
                "let __s = ::serde::de_seq(__v, \"{name}\")?;\n\
                 if __s.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple arity for {name}\")); }}\n"
            );
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize(&__s[{i}])?"))
                .collect();
            body.push_str(&format!(
                "::std::result::Result::Ok({name}({}))",
                items.join(", ")
            ));
            impl_deserialize(name, &body)
        }
        Shape::UnitStruct { name } => {
            impl_deserialize(name, &format!("::std::result::Result::Ok({name})"))
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::deserialize(&__s[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __s = ::serde::de_seq(__inner, \"{name}::{vn}\")?;\n\
                             if __s.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for {name}::{vn}\")); }}\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}}\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut ctor = String::new();
                        for f in fields {
                            ctor.push_str(&format!(
                                "{f}: ::serde::Deserialize::deserialize(::serde::de_field(__mm, \"{f}\", \"{name}::{vn}\")?)?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __mm = ::serde::de_map(__inner, \"{name}::{vn}\")?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {ctor} }})\n}}\n"
                        ));
                    }
                }
            }
            let body = format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::unknown_variant(__other, \"{name}\")),\n\
                 }},\n\
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __inner) = &__m[0];\n\
                 let _ = __inner;\n\
                 match __k.as_str() {{\n\
                 {data_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::unknown_variant(__other, \"{name}\")),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::serde::Error::invalid_type(\"{name}\", __other)),\n\
                 }}"
            );
            impl_deserialize(name, &body)
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
