//! Vendored offline stand-in for `rand`.
//!
//! Implements the small slice of the rand 0.9 API this workspace uses:
//! `rngs::SmallRng`, `SeedableRng::seed_from_u64`, `RngCore::next_u64`,
//! `Rng::random::<f64>()` and `Rng::random_range(..)`. `SmallRng` is
//! xoshiro256++ seeded through SplitMix64 — the same construction the real
//! crate uses on 64-bit targets, though the exact output stream is not
//! guaranteed to match upstream. Everything downstream only requires
//! determinism, which this provides.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a deterministic 64-bit generator.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of a "standard" value of a type (uniform bits / unit interval).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// A range (or similar) that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a standard value (uniform bits; `[0, 1)` for floats).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast RNG: xoshiro256++ (not cryptographically secure).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0
                .wrapping_add(s3)
                .rotate_left(23)
                .wrapping_add(s0);
            let t = s1 << 17;
            let s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            let s2 = s2 ^ t;
            let s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(0..17);
            assert!(x < 17);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
