//! Vendored offline stand-in for `rayon`.
//!
//! Supports the surface this workspace uses: `vec.into_par_iter().map(f)
//! .collect()`, `ThreadPoolBuilder::num_threads(n).build_global()` and
//! `current_num_threads()`. Work is distributed over scoped OS threads via
//! an atomic work counter; results land in pre-allocated slots, so output
//! order always matches input order regardless of thread count or
//! scheduling — parallelism never changes results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Configured global thread count; 0 = not configured (use hardware).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of threads parallel iterators will use.
pub fn current_num_threads() -> usize {
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Error type for [`ThreadPoolBuilder::build_global`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the global thread count.
///
/// Unlike real rayon, repeated `build_global` calls succeed and simply
/// update the count — threads are spawned per parallel call, not pooled.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building.
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Set the thread count (0 = hardware parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install as the global configuration.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// The traits users import.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
}

/// Parallel iterator machinery.
pub mod iter {
    use super::par_map_ordered;

    /// Conversion into a parallel iterator.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Convert.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecParIter<T>;
        fn into_par_iter(self) -> VecParIter<T> {
            VecParIter { items: self }
        }
    }

    /// A (possibly mapped) parallel pipeline over owned items.
    pub trait ParallelIterator: Sized {
        /// Element type produced by the pipeline.
        type Item: Send;

        /// Materialize all elements, in input order.
        fn drive(self) -> Vec<Self::Item>;

        /// Map each element through `f` in parallel.
        fn map<U: Send, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Item) -> U + Sync,
        {
            Map { base: self, f }
        }

        /// Collect the results (order-preserving).
        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            self.drive().into_iter().collect()
        }
    }

    /// Source stage: an owned `Vec`.
    pub struct VecParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecParIter<T> {
        type Item = T;
        fn drive(self) -> Vec<T> {
            self.items
        }
    }

    /// Map stage.
    pub struct Map<P, F> {
        base: P,
        f: F,
    }

    impl<P, U, F> ParallelIterator for Map<P, F>
    where
        P: ParallelIterator,
        U: Send,
        F: Fn(P::Item) -> U + Sync,
    {
        type Item = U;
        fn drive(self) -> Vec<U> {
            par_map_ordered(self.base.drive(), &self.f)
        }
    }
}

/// Ordered parallel map: output index i always holds `f(items[i])`.
fn par_map_ordered<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: &F) -> Vec<U> {
    let n = items.len();
    let threads = current_num_threads().min(n).max(1);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i].lock().unwrap().take().expect("item taken once");
                let out = f(item);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn build_global_is_repeatable() {
        ThreadPoolBuilder::new().num_threads(2).build_global().unwrap();
        assert_eq!(current_num_threads(), 2);
        ThreadPoolBuilder::new().num_threads(3).build_global().unwrap();
        assert_eq!(current_num_threads(), 3);
        ThreadPoolBuilder::new().num_threads(0).build_global().unwrap();
    }
}
