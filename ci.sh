#!/usr/bin/env bash
# CI gates.
#
#   ./ci.sh            per-push gate: build, full test suite, quick-scale
#                      end-to-end repro (~1 min on one core), and a traced
#                      + telemetry-sampled fig1 with the schema,
#                      check-metrics and fault-provenance (`repro
#                      explain`) reconciliation gates
#   ./ci.sh nightly    full-scale gate: `repro all --scale 1` (12 GB
#                      simulated GPU, hours on one core), traced fig1 at
#                      full scale with the schema gate, trend recording
#                      into nightly-out/, and the perf-regression gate
#                      (`repro regress`) over the accumulated trend —
#                      exits non-zero when a headline metric regressed.
#
# Run nightly from cron (the trend file accumulates across nights, so the
# regression baseline grows), e.g.:
#
#   7 2 * * * cd /path/to/repo && ./ci.sh nightly >> nightly-out/nightly.log 2>&1
set -euo pipefail
cd "$(dirname "$0")"

target="${1:-push}"

echo "== cargo build --release =="
cargo build --release --workspace

case "$target" in
push)
    echo "== cargo test =="
    cargo test -q --workspace

    echo "== repro all --scale 128 (quick-scale end-to-end) =="
    ./target/release/repro all --scale 128 --json --out ci-out

    echo "== repro fig1 --scale 16 --trace-out --metrics-out (traced+sampled run) =="
    t0=$(date +%s.%N)
    ./target/release/repro fig1 --scale 16 --no-progress --trace-cap 8192 \
        --trace-out ci-out/trace.json --metrics-out ci-out/metrics
    t1=$(date +%s.%N)
    ./target/release/repro check-trace ci-out/trace.json
    ./target/release/repro check-metrics ci-out/metrics

    echo "== repro explain (fault-provenance reconciliation gate) =="
    # explain re-derives the root-cause decomposition from the sampled
    # artefacts and exits non-zero if the attribution columns fail to
    # partition the counter columns exactly.
    ./target/release/repro explain ci-out/metrics > ci-out/explain.txt
    ./target/release/repro bench-append ci-out/BENCH_hotpaths.json \
        fig1_scale16_traced "$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')"
    ;;
nightly)
    echo "== repro all --scale 1 (full-scale end-to-end, telemetry-sampled) =="
    t0=$(date +%s.%N)
    ./target/release/repro all --scale 1 --json --no-progress --out nightly-out \
        --metrics-out nightly-out/metrics
    t1=$(date +%s.%N)
    ./target/release/repro check-metrics nightly-out/metrics
    ./target/release/repro explain nightly-out/metrics > nightly-out/explain.txt
    ./target/release/repro bench-append nightly-out/BENCH_hotpaths.json \
        all_scale1 "$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')"

    echo "== repro fig1 --scale 1 --trace-out (traced full-scale + schema gate) =="
    t0=$(date +%s.%N)
    ./target/release/repro fig1 --scale 1 --no-progress --trace-cap 8192 \
        --trace-out nightly-out/trace.json
    t1=$(date +%s.%N)
    ./target/release/repro check-trace nightly-out/trace.json
    ./target/release/repro bench-append nightly-out/BENCH_hotpaths.json \
        fig1_scale1_traced "$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')"

    echo "== perf-regression gate over the nightly trend =="
    # The trend file persists across nights (it lives outside the per-run
    # report): import tonight's headline metrics, then gate the newest
    # entry of every series against the median of its history.
    ./target/release/repro trend-import nightly-out/ci_trend.json \
        nightly-out/BENCH_hotpaths.json fig1
    ./target/release/repro trend-import nightly-out/ci_trend.json \
        nightly-out/BENCH_hotpaths.json table2
    # The bench-appended wall-time series and the sweep scheduler's
    # straggler bound (max_straggler_ms on the experiment records) ride
    # along in the same trend, so a hot-path layout or scheduler change
    # can't silently regress the big single points either.
    ./target/release/repro trend-import nightly-out/ci_trend.json \
        nightly-out/BENCH_hotpaths.json all_scale1
    ./target/release/repro trend-import nightly-out/ci_trend.json \
        nightly-out/BENCH_hotpaths.json fig1_scale1_traced
    ./target/release/repro regress nightly-out/ci_trend.json
    ;;
*)
    echo "ci.sh: unknown target '$target' (expected nothing or 'nightly')" >&2
    exit 2
    ;;
esac

echo "== ci.sh ($target): all green =="
