#!/usr/bin/env bash
# CI gate: build, full test suite, and a quick-scale end-to-end
# reproduction of every experiment. Mirrors what reviewers run by hand;
# keep it fast enough to run on every push (~1 min on one core).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== repro all --scale 128 (quick-scale end-to-end) =="
./target/release/repro all --scale 128 --json --out ci-out

echo "== repro fig1 --scale 16 --trace-out (traced run + schema gate) =="
t0=$(date +%s.%N)
./target/release/repro fig1 --scale 16 --no-progress --trace-cap 8192 \
    --trace-out ci-out/trace.json
t1=$(date +%s.%N)
./target/release/repro check-trace ci-out/trace.json
./target/release/repro bench-append ci-out/BENCH_hotpaths.json \
    fig1_scale16_traced "$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')"

echo "== ci.sh: all green =="
