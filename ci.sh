#!/usr/bin/env bash
# CI gate: build, full test suite, and a quick-scale end-to-end
# reproduction of every experiment. Mirrors what reviewers run by hand;
# keep it fast enough to run on every push (~1 min on one core).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== repro all --scale 128 (quick-scale end-to-end) =="
./target/release/repro all --scale 128 --json --out ci-out

echo "== ci.sh: all green =="
