#!/usr/bin/env bash
# CI gates.
#
#   ./ci.sh            per-push gate: build, full test suite, quick-scale
#                      end-to-end repro (~1 min on one core)
#   ./ci.sh nightly    full-scale gate: `repro all --scale 1` (12 GB
#                      simulated GPU, hours on one core), traced fig1 at
#                      full scale with the schema gate, and bench-append
#                      trend recording into nightly-out/
set -euo pipefail
cd "$(dirname "$0")"

target="${1:-push}"

echo "== cargo build --release =="
cargo build --release --workspace

case "$target" in
push)
    echo "== cargo test =="
    cargo test -q --workspace

    echo "== repro all --scale 128 (quick-scale end-to-end) =="
    ./target/release/repro all --scale 128 --json --out ci-out

    echo "== repro fig1 --scale 16 --trace-out (traced run + schema gate) =="
    t0=$(date +%s.%N)
    ./target/release/repro fig1 --scale 16 --no-progress --trace-cap 8192 \
        --trace-out ci-out/trace.json
    t1=$(date +%s.%N)
    ./target/release/repro check-trace ci-out/trace.json
    ./target/release/repro bench-append ci-out/BENCH_hotpaths.json \
        fig1_scale16_traced "$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')"
    ;;
nightly)
    echo "== repro all --scale 1 (full-scale end-to-end) =="
    t0=$(date +%s.%N)
    ./target/release/repro all --scale 1 --json --no-progress --out nightly-out
    t1=$(date +%s.%N)
    ./target/release/repro bench-append nightly-out/BENCH_hotpaths.json \
        all_scale1 "$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')"

    echo "== repro fig1 --scale 1 --trace-out (traced full-scale + schema gate) =="
    t0=$(date +%s.%N)
    ./target/release/repro fig1 --scale 1 --no-progress --trace-cap 8192 \
        --trace-out nightly-out/trace.json
    t1=$(date +%s.%N)
    ./target/release/repro check-trace nightly-out/trace.json
    ./target/release/repro bench-append nightly-out/BENCH_hotpaths.json \
        fig1_scale1_traced "$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')"
    ;;
*)
    echo "ci.sh: unknown target '$target' (expected nothing or 'nightly')" >&2
    exit 2
    ;;
esac

echo "== ci.sh ($target): all green =="
