//! Whole-stack property tests: conservation laws and determinism of
//! complete simulations across random configurations.

use proptest::prelude::*;
use sim_engine::units::MIB;
use uvm_sim::{run, PrefetchPolicy, ReplayPolicy, SimConfig, Workload, WorkloadKind};
use workloads::RegularParams;

fn small_config(mem_mib: u64) -> SimConfig {
    let mut c = SimConfig::default();
    c.driver.gpu_memory_bytes = mem_mib * MIB;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn undersubscribed_migration_is_exact(
        mib in 4u64..32,
        prefetch_on in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // GPU memory is always larger than the footprint: no evictions,
        // and every touched page migrates exactly once.
        let mut cfg = small_config(64).with_seed(seed);
        if !prefetch_on {
            cfg.driver.prefetch = PrefetchPolicy::Disabled;
        }
        let w = Workload::Regular(RegularParams {
            bytes: mib * MIB,
            warps_per_block: 8,
        });
        let r = run(&cfg, &w);
        prop_assert_eq!(r.counters.evictions, 0);
        prop_assert_eq!(r.counters.pages_migrated_h2d(), mib * MIB / 4096);
        prop_assert_eq!(r.transfers.h2d_bytes, mib * MIB);
        prop_assert_eq!(r.transfers.d2h_bytes, 0, "read-only: nothing written back");
        prop_assert!(r.driver_time > sim_engine::SimDuration::ZERO);
    }

    #[test]
    fn replay_policy_never_changes_migration_totals(
        mib in 4u64..24,
        policy_idx in 0usize..4,
    ) {
        let policy = [
            ReplayPolicy::Block,
            ReplayPolicy::Batch,
            ReplayPolicy::BatchFlush,
            ReplayPolicy::Once,
        ][policy_idx];
        let mut cfg = small_config(64);
        cfg.driver.replay_policy = policy;
        cfg.driver.prefetch = PrefetchPolicy::Disabled;
        let w = Workload::Regular(RegularParams {
            bytes: mib * MIB,
            warps_per_block: 8,
        });
        let r = run(&cfg, &w);
        // Whatever the policy costs, correctness is invariant.
        prop_assert_eq!(r.counters.pages_migrated_h2d(), mib * MIB / 4096);
        prop_assert_eq!(r.counters.evictions, 0);
    }

    #[test]
    fn oversubscribed_runs_conserve_pages(
        kind_idx in 0usize..2,
        ratio_pct in 110u64..160,
        seed in any::<u64>(),
    ) {
        let kind = [WorkloadKind::Regular, WorkloadKind::Random][kind_idx];
        let gpu_mib = 24u64;
        let cfg = small_config(gpu_mib).with_seed(seed);
        let w = Workload::with_footprint(kind, gpu_mib * MIB * ratio_pct / 100);
        let footprint_pages = w.footprint_bytes() / 4096;
        let r = run(&cfg, &w);
        prop_assert!(r.counters.evictions > 0, "oversubscription must evict");
        // Migrations at least cover the footprint; thrash only adds.
        prop_assert!(r.counters.pages_migrated_h2d() >= footprint_pages);
        // Pages evicted can never exceed pages migrated in.
        prop_assert!(r.counters.pages_evicted_total() <= r.counters.pages_migrated_h2d());
        // Resident data never exceeds GPU memory.
        prop_assert!(r.transfers.h2d_bytes >= w.footprint_bytes());
    }

    #[test]
    fn whole_stack_is_deterministic(
        kind_idx in 0usize..8,
        seed in any::<u64>(),
    ) {
        let kind = WorkloadKind::ALL[kind_idx];
        let cfg = small_config(48).with_seed(seed);
        let w = Workload::with_footprint(kind, 24 * MIB);
        let a = run(&cfg, &w);
        let b = run(&cfg, &w);
        prop_assert_eq!(a.total_time, b.total_time);
        prop_assert_eq!(a.counters, b.counters);
        prop_assert_eq!(a.engine, b.engine);
        prop_assert_eq!(a.transfers, b.transfers);
    }

    #[test]
    fn attribution_partitions_conserve(
        kind_idx in 0usize..8,
        ratio_pct in 60u64..160,
        prefetch_on in any::<bool>(),
        workers in prop_oneof![Just(0usize), Just(4usize)],
        seed in any::<u64>(),
    ) {
        // The provenance ledger is a *partition*: per-cause fault counts
        // must sum to the driver's fault total, and per-cause byte counts
        // to the transfer log — under every workload shape, subscription
        // ratio, prefetch setting, and service-worker count.
        let kind = WorkloadKind::ALL[kind_idx];
        let gpu_mib = 24u64;
        let mut cfg = small_config(gpu_mib).with_seed(seed);
        cfg.driver.service_workers = workers;
        if !prefetch_on {
            cfg.driver.prefetch = PrefetchPolicy::Disabled;
        }
        let w = Workload::with_footprint(kind, gpu_mib * MIB * ratio_pct / 100);
        let r = run(&cfg, &w);
        if let Err((eq, lhs, rhs)) =
            r.attribution
                .reconcile(&r.counters, r.transfers.h2d_bytes, r.transfers.d2h_bytes)
        {
            prop_assert!(false, "attribution violates `{}`: {} != {}", eq, lhs, rhs);
        }
        // Offender badness must be backed by the ledger's refault and
        // prefetch-evicted totals.
        let badness: u64 = r.top_offenders.iter().map(|o| o.stats.badness()).sum();
        let refaults = r.attribution.refault_used_faults + r.attribution.refault_unused_faults;
        prop_assert!(badness <= refaults + r.attribution.prefetch_evicted_pages);
    }

    #[test]
    fn attribution_is_identical_across_service_worker_counts(
        kind_idx in 0usize..8,
        seed in any::<u64>(),
    ) {
        // Classification happens only in serial paths on simulated state,
        // so the ledger is bit-identical at any planning width.
        let kind = WorkloadKind::ALL[kind_idx];
        let w = Workload::with_footprint(kind, 36 * MIB);
        let mut serial = small_config(24).with_seed(seed);
        serial.driver.service_workers = 1;
        let mut wide = small_config(24).with_seed(seed);
        wide.driver.service_workers = 4;
        let a = run(&serial, &w);
        let b = run(&wide, &w);
        prop_assert_eq!(a.attribution, b.attribution);
        prop_assert_eq!(a.top_offenders, b.top_offenders);
    }

    #[test]
    fn faults_bounded_by_accesses(
        kind_idx in 0usize..8,
        mib in 12u64..48,
    ) {
        let kind = WorkloadKind::ALL[kind_idx];
        let cfg = small_config(64);
        let w = Workload::with_footprint(kind, mib * MIB);
        let r = run(&cfg, &w);
        // The driver can never see more faults than the GPU raised.
        prop_assert!(r.total_faults() <= r.engine.faults_raised);
        prop_assert!(r.engine.faults_raised <= r.engine.faults_raised + r.engine.faults_coalesced);
        // Duplicates are a subset of fetched faults.
        prop_assert!(r.counters.duplicate_faults <= r.counters.faults_fetched);
    }
}
