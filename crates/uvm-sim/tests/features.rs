//! Tests for the analysis/extension features layered over the core
//! reproduction: explicit prefetch hints, warm-start repeated launches,
//! prefetch-waste accounting, and batch-composition histograms.

use gpu_model::Residency;
use sim_engine::units::{MIB, VABLOCK_SIZE};
use sim_engine::{CostModel, SimDuration, SimRng, SimTime};
use uvm_driver::{DriverConfig, ManagedSpace, PrefetchPolicy, UvmDriver};
use uvm_sim::{run, run_repeated, SimConfig, Workload, WorkloadKind};
use workloads::{RandomParams, RegularParams};

#[test]
fn prefetch_range_makes_a_range_fully_resident() {
    let mut space = ManagedSpace::new();
    let range = space.alloc(3 * VABLOCK_SIZE, "buf");
    let mut driver = UvmDriver::new(
        DriverConfig {
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        },
        CostModel::default(),
        space,
        SimRng::from_seed(1),
    );
    let t = driver.prefetch_range(&range, SimTime::ZERO);
    assert!(t > SimDuration::ZERO);
    for p in 0..range.num_pages {
        assert!(driver.space().is_resident(range.page(p)));
    }
    assert_eq!(driver.counters().pages_hint_prefetched, 3 * 512);
    assert_eq!(driver.counters().hint_prefetch_calls, 1);
    assert_eq!(driver.transfer_log().h2d_bytes, 3 * VABLOCK_SIZE);
    // Idempotent: a second call migrates nothing new.
    let before = driver.transfer_log().h2d_bytes;
    driver.prefetch_range(&range, SimTime::ZERO);
    assert_eq!(driver.transfer_log().h2d_bytes, before);
}

#[test]
fn prefetch_range_evicts_when_memory_is_short() {
    let mut space = ManagedSpace::new();
    let a = space.alloc(VABLOCK_SIZE, "a");
    let b = space.alloc(VABLOCK_SIZE, "b");
    let mut driver = UvmDriver::new(
        DriverConfig {
            gpu_memory_bytes: VABLOCK_SIZE,
            ..DriverConfig::default()
        },
        CostModel::default(),
        space,
        SimRng::from_seed(1),
    );
    driver.prefetch_range(&a, SimTime::ZERO);
    driver.prefetch_range(&b, SimTime::ZERO);
    assert_eq!(driver.counters().evictions, 1);
    assert!(driver.space().is_resident(b.page(0)));
    assert!(!driver.space().is_resident(a.page(0)));
}

#[test]
fn hint_prefetch_eliminates_faults_entirely() {
    // The manual-management pattern: prefetch the buffer, then launch.
    let mut space = ManagedSpace::new();
    let range = space.alloc(8 * MIB, "data");
    let trace = {
        // Reuse the regular generator's shape against our own range via a
        // fresh space is awkward; just touch every page directly.
        let mut bt = gpu_model::BlockTrace::new(SimDuration::ZERO);
        for p in 0..range.num_pages {
            bt.push_step([range.page(p)], false);
        }
        gpu_model::WorkloadTrace {
            name: "touch".into(),
            blocks: vec![bt],
            footprint_pages: range.num_pages,
        }
    };
    let mut driver = UvmDriver::new(
        DriverConfig {
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        },
        CostModel::default(),
        space,
        SimRng::from_seed(2),
    );
    driver.prefetch_range(&range, SimTime::ZERO);
    let mut engine =
        gpu_model::GpuEngine::launch(gpu_model::GpuConfig::default(), trace, SimRng::from_seed(3));
    let mut buffer = gpu_model::FaultBuffer::new(gpu_model::FaultBufferConfig::default());
    engine.run(driver.space(), &mut buffer, SimTime::ZERO);
    assert!(engine.is_done(), "no faults: kernel runs straight through");
    assert_eq!(engine.counters().faults_raised, 0);
}

#[test]
fn repeated_launches_run_warm_when_undersubscribed() {
    let mut cfg = SimConfig::default();
    cfg.driver.gpu_memory_bytes = 64 * MIB;
    let w = Workload::Regular(RegularParams {
        bytes: 16 * MIB,
        warps_per_block: 8,
    });
    let stats = run_repeated(&cfg, &w, 3);
    assert_eq!(stats.len(), 3);
    assert!(stats[0].faults > 0, "cold start faults");
    assert_eq!(stats[0].pages_migrated, 4096);
    for s in &stats[1..] {
        assert_eq!(s.faults, 0, "warm launches never fault");
        assert_eq!(s.pages_migrated, 0);
        assert!(
            s.time < stats[0].time / 4,
            "warm launch {} vs cold {}",
            s.time,
            stats[0].time
        );
    }
}

#[test]
fn repeated_launches_keep_thrashing_when_oversubscribed() {
    let mut cfg = SimConfig::default();
    cfg.driver.gpu_memory_bytes = 16 * MIB;
    let w = Workload::Random(RandomParams {
        bytes: 24 * MIB,
        warps_per_block: 8,
    });
    let stats = run_repeated(&cfg, &w, 2);
    assert!(stats[1].faults > 0, "oversubscription keeps faulting");
    assert!(stats[1].evictions > 0);
}

#[test]
fn prefetch_waste_is_observable_with_page_use_tracking() {
    // A sparse workload touching one page per big-page region: the stock
    // prefetcher's 64 KB upgrades drag in 15 unused pages per fault.
    let mut cfg = SimConfig::default();
    cfg.driver.gpu_memory_bytes = 64 * MIB;
    cfg.gpu.track_page_use = true;
    // The regular workload touches every page, so prefetch waste is zero;
    // sparse kernels (see the doc example on `prefetched_unused_pages`)
    // report the dragged-in remainder of each 64 KB upgrade.
    let w = Workload::Regular(RegularParams {
        bytes: 8 * MIB,
        warps_per_block: 8,
    });
    let r = run(&cfg, &w);
    assert_eq!(
        r.prefetched_unused_pages,
        Some(0),
        "dense kernel wastes nothing"
    );
    // Without tracking the field is absent.
    cfg.gpu.track_page_use = false;
    let r = run(&cfg, &w);
    assert_eq!(r.prefetched_unused_pages, None);
}

#[test]
fn sparse_kernel_shows_nonzero_prefetch_waste() {
    // Touch one page per 64 KB big-page region: every fault drags in 15
    // pages the kernel never uses (paper §VI-A's waste mechanism).
    let mut space = ManagedSpace::new();
    let range = space.alloc(8 * MIB, "sparse");
    let mut bt = gpu_model::BlockTrace::new(SimDuration::ZERO);
    let touched: Vec<u64> = (0..range.num_pages).step_by(16).collect();
    for &p in &touched {
        bt.push_step([range.page(p)], false);
    }
    let trace = gpu_model::WorkloadTrace {
        name: "sparse".into(),
        blocks: vec![bt],
        footprint_pages: range.num_pages,
    };
    let mut driver = UvmDriver::new(
        DriverConfig {
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        },
        CostModel::default(),
        space,
        SimRng::from_seed(4),
    );
    let gpu_cfg = gpu_model::GpuConfig {
        track_page_use: true,
        ..gpu_model::GpuConfig::default()
    };
    let mut engine = gpu_model::GpuEngine::launch(gpu_cfg, trace, SimRng::from_seed(5));
    let mut buffer = gpu_model::FaultBuffer::new(gpu_model::FaultBufferConfig::default());
    let mut clock = SimTime::ZERO;
    while !engine.is_done() {
        engine.run(driver.space(), &mut buffer, clock);
        if engine.is_done() {
            break;
        }
        loop {
            let pass = driver.process_pass(&mut buffer, clock);
            clock += pass.time;
            if pass.replays > 0 {
                break;
            }
        }
        engine.replay();
    }
    let waste = driver
        .prefetched_pages()
        .filter(|&p| !engine.page_was_used(p))
        .count();
    // At least the big-page remainder of every touched region is wasted.
    assert!(
        waste >= touched.len() * 15 / 2,
        "sparse kernel must show prefetch waste: {waste} unused of {} prefetched",
        driver.counters().pages_prefetched
    );
    for &p in &touched {
        assert!(engine.page_was_used(range.page(p)));
    }
}

#[test]
fn host_access_migrates_data_back() {
    let mut space = ManagedSpace::new();
    let range = space.alloc(2 * VABLOCK_SIZE, "buf");
    let mut driver = UvmDriver::new(
        DriverConfig {
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        },
        CostModel::default(),
        space,
        SimRng::from_seed(1),
    );
    // Pull everything to the GPU, then let the CPU touch it.
    driver.prefetch_range(&range, SimTime::ZERO);
    assert!(driver.space().is_resident(range.page(0)));
    assert!(driver.gpu_memory_in_use() > 0);
    let t = driver.host_access_range(&range, SimTime::ZERO);
    assert!(t > SimDuration::ZERO);
    for p in [0, 511, 512, 1023] {
        assert!(!driver.space().is_resident(range.page(p)));
    }
    assert_eq!(driver.counters().pages_migrated_to_host, 2 * 512);
    assert_eq!(driver.transfer_log().d2h_bytes, 2 * VABLOCK_SIZE);
    assert_eq!(driver.gpu_memory_in_use(), 0, "backing returned");
    // Idempotent on non-resident data.
    let before = driver.transfer_log().d2h_bytes;
    driver.host_access_range(&range, SimTime::ZERO);
    assert_eq!(driver.transfer_log().d2h_bytes, before);
}

#[test]
fn cpu_gpu_pipeline_round_trips() {
    // Iterative pattern: GPU kernel, CPU inspection, GPU kernel again.
    // The CPU phase drains residency, so the second launch refaults.
    let mut space = ManagedSpace::new();
    let range = space.alloc(4 * MIB, "buf");
    let make_trace = |range: &uvm_driver::VaRange| {
        let mut bt = gpu_model::BlockTrace::new(SimDuration::ZERO);
        for p in 0..range.num_pages {
            bt.push_step([range.page(p)], true);
        }
        gpu_model::WorkloadTrace {
            name: "touch".into(),
            blocks: vec![bt],
            footprint_pages: range.num_pages,
        }
    };
    let mut driver = UvmDriver::new(
        DriverConfig {
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        },
        CostModel::default(),
        space,
        SimRng::from_seed(2),
    );
    let launch = |driver: &mut UvmDriver| {
        let mut engine = gpu_model::GpuEngine::launch(
            gpu_model::GpuConfig::default(),
            make_trace(&range),
            SimRng::from_seed(3),
        );
        let mut buffer = gpu_model::FaultBuffer::new(gpu_model::FaultBufferConfig::default());
        let mut clock = SimTime::ZERO;
        let faults0 = driver.counters().faults_fetched;
        while !engine.is_done() {
            engine.run(driver.space(), &mut buffer, clock);
            if engine.is_done() {
                break;
            }
            loop {
                let pass = driver.process_pass(&mut buffer, clock);
                clock += pass.time;
                if pass.replays > 0 {
                    break;
                }
            }
            engine.replay();
        }
        driver.counters().faults_fetched - faults0
    };
    let cold = launch(&mut driver);
    assert!(cold > 0);
    let warm = launch(&mut driver);
    assert_eq!(warm, 0, "data still resident");
    driver.host_access_range(&range, SimTime::ZERO);
    let after_host = launch(&mut driver);
    assert!(after_host > 0, "CPU access invalidated GPU residency");
}

#[test]
fn batch_histograms_reflect_access_pattern() {
    let run_kind = |kind| {
        let mut space = ManagedSpace::new();
        let w = Workload::with_footprint(kind, 32 * MIB);
        let trace = w.generate(&mut space, &mut SimRng::from_seed(1));
        let mut driver = UvmDriver::new(
            DriverConfig {
                gpu_memory_bytes: 64 * MIB,
                prefetch: PrefetchPolicy::Disabled,
                ..DriverConfig::default()
            },
            CostModel::default(),
            space,
            SimRng::from_seed(2),
        );
        let mut engine = gpu_model::GpuEngine::launch(
            gpu_model::GpuConfig::default(),
            trace,
            SimRng::from_seed(3),
        );
        let mut buffer = gpu_model::FaultBuffer::new(gpu_model::FaultBufferConfig::default());
        let mut clock = SimTime::ZERO;
        while !engine.is_done() {
            engine.run(driver.space(), &mut buffer, clock);
            if engine.is_done() {
                break;
            }
            loop {
                let pass = driver.process_pass(&mut buffer, clock);
                clock += pass.time;
                if pass.replays > 0 {
                    break;
                }
            }
            engine.replay();
        }
        (
            driver.faults_per_batch().mean(),
            driver.vablocks_per_batch().mean(),
        )
    };
    let (reg_faults, reg_blocks) = run_kind(WorkloadKind::Regular);
    let (rnd_faults, rnd_blocks) = run_kind(WorkloadKind::Random);
    assert!(reg_faults > 0.0 && rnd_faults > 0.0);
    // Random faults scatter across far more VABlocks per batch — the
    // paper's §III-D coalescing insight.
    assert!(
        rnd_blocks > 1.5 * reg_blocks,
        "random {rnd_blocks:.1} vs regular {reg_blocks:.1} VABlocks/batch"
    );
}

/// The sweep thread count is invisible to the attribution stream: the
/// same points run under a 1-thread and a 4-thread global pool must
/// produce bit-identical ledgers, offender tables and telemetry. (The
/// vendored rayon only has a global pool; its thread count is documented
/// to never change results, so flipping it mid-process is safe.)
#[test]
fn attribution_is_identical_across_sweep_thread_counts() {
    let points = || {
        let mut a = SimConfig::default();
        a.driver.gpu_memory_bytes = 16 * MIB;
        a.driver.timeseries.enabled = true;
        let mut b = a.clone();
        b.driver.prefetch = PrefetchPolicy::Disabled;
        let w = Workload::Random(RandomParams {
            bytes: 24 * MIB,
            warps_per_block: 8,
        });
        vec![(a, w.clone()), (b, w)]
    };
    rayon::ThreadPoolBuilder::new().num_threads(1).build_global().unwrap();
    let narrow = uvm_sim::run_sweep(points());
    rayon::ThreadPoolBuilder::new().num_threads(4).build_global().unwrap();
    let wide = uvm_sim::run_sweep(points());
    rayon::ThreadPoolBuilder::new().num_threads(0).build_global().unwrap();
    for (a, b) in narrow.iter().zip(&wide) {
        assert_eq!(a.attribution, b.attribution);
        assert_eq!(a.top_offenders, b.top_offenders);
        assert_eq!(a.timeseries, b.timeseries);
        assert_eq!(a.counters, b.counters);
    }
}

/// §VI qualitative findings, straight from the ledger: an oversubscribed
/// run with prefetching on shows the prefetch–eviction antagonism
/// (prefetched pages evicted unused, refaults on evicted pages), and
/// turning the prefetcher off zeroes the evicted-before-use volume.
#[test]
fn attribution_exposes_prefetch_eviction_antagonism() {
    let mut on = SimConfig::default();
    on.driver.gpu_memory_bytes = 16 * MIB;
    let mut off = on.clone();
    off.driver.prefetch = PrefetchPolicy::Disabled;
    let w = Workload::Random(RandomParams {
        bytes: 24 * MIB,
        warps_per_block: 8,
    });
    let r_on = run(&on, &w);
    let r_off = run(&off, &w);
    assert!(
        r_on.attribution.prefetch_evicted_pages > 0,
        "prefetch under memory pressure must evict some pages unused"
    );
    assert!(
        r_on.attribution.refault_used_faults + r_on.attribution.refault_unused_faults > 0,
        "oversubscription must refault"
    );
    assert!(
        !r_on.top_offenders.is_empty(),
        "thrashing blocks must surface as offenders"
    );
    // With no prefetcher every resident page got there by its own fault,
    // so nothing can be evicted before use.
    assert_eq!(r_off.attribution.prefetch_evicted_pages, 0);
    assert_eq!(r_off.attribution.prefetch_hit_faults, 0);
    assert!(
        r_on.attribution.prefetch_evicted_pages > r_off.attribution.prefetch_evicted_pages,
        "the antagonism is visible as a cross-run diff"
    );
}
