//! Whole-simulation configuration: GPU hardware, fault buffer, driver,
//! cost model, and RNG seed, with presets matching the paper's platform.

use gpu_model::{FaultBufferConfig, GpuConfig};
use serde::{Deserialize, Serialize};
use sim_engine::units::GIB;
use sim_engine::CostModelConfig;
use uvm_driver::DriverConfig;

/// Full configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// GPU hardware model.
    pub gpu: GpuConfig,
    /// Hardware fault buffer.
    pub fault_buffer: FaultBufferConfig,
    /// UVM driver configuration.
    pub driver: DriverConfig,
    /// Cost-model constants.
    pub cost: CostModelConfig,
    /// Master RNG seed; all streams derive from it.
    pub seed: u64,
    /// Safety limit on driver passes before the simulator assumes
    /// livelock and panics with a diagnostic.
    pub max_passes: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            gpu: GpuConfig::default(),
            fault_buffer: FaultBufferConfig::default(),
            driver: DriverConfig::default(),
            cost: CostModelConfig::default(),
            seed: 0xC0FFEE,
            max_passes: 50_000_000,
        }
    }
}

impl SimConfig {
    /// The paper's platform: Titan V (80 SMs, 12 GB HBM2) over PCIe 3.0.
    pub fn titan_v() -> Self {
        SimConfig::default()
    }

    /// A geometrically scaled-down platform: GPU memory multiplied by
    /// `fraction` (e.g. 1/16) so oversubscription experiments run at
    /// laptop scale while preserving the subscription *ratios* that
    /// determine the paper's crossovers. Workload footprints should be
    /// scaled by the same factor.
    pub fn scaled(fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0);
        let mut cfg = SimConfig::default();
        cfg.driver.gpu_memory_bytes =
            ((12.0 * GIB as f64 * fraction) as u64).max(4 * 2 * 1024 * 1024);
        cfg
    }

    /// Builder-style: set the driver configuration.
    pub fn with_driver(mut self, driver: DriverConfig) -> Self {
        self.driver = driver;
        self
    }

    /// Builder-style: set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_v_matches_paper_platform() {
        let c = SimConfig::titan_v();
        assert_eq!(c.gpu.num_sms, 80);
        assert_eq!(c.driver.gpu_memory_bytes, 12 * GIB);
        assert_eq!(c.driver.batch_size, 256);
    }

    #[test]
    fn scaled_preserves_ratio_machinery() {
        let c = SimConfig::scaled(1.0 / 16.0);
        assert_eq!(c.driver.gpu_memory_bytes, 12 * GIB / 16);
        assert_eq!(c.gpu.num_sms, 80, "compute model unchanged");
    }

    #[test]
    fn builders_chain() {
        let c = SimConfig::default().with_seed(7).with_driver(DriverConfig {
            batch_size: 128,
            ..DriverConfig::default()
        });
        assert_eq!(c.seed, 7);
        assert_eq!(c.driver.batch_size, 128);
    }

    #[test]
    #[should_panic]
    fn scaled_rejects_zero() {
        let _ = SimConfig::scaled(0.0);
    }
}
