//! # uvm-sim
//!
//! One-stop facade over the UVM simulation workspace — a Rust
//! reproduction of the system analysed by Allen & Ge, *"Demystifying GPU
//! UVM Cost with Deep Runtime and Workload Analysis"* (IPDPS 2021).
//!
//! The workspace models the full demand-paging stack: a GPU execution
//! engine with replayable faults ([`gpu_model`]), the UVM driver with
//! batching, the density prefetcher, replay policies and LRU eviction
//! ([`uvm_driver`]), the paper's eight workloads ([`workloads`]), and the
//! instrumentation taxonomy ([`metrics`]) — all on a deterministic
//! virtual clock with a calibrated cost model ([`sim_engine`]).
//!
//! ## Quickstart
//!
//! ```
//! use uvm_sim::{run, SimConfig, Workload, WorkloadKind};
//!
//! // A scaled-down platform (GPU memory = 12GB/64) so the doc test is
//! // instant; `SimConfig::titan_v()` is the paper's platform.
//! let config = SimConfig::scaled(1.0 / 64.0);
//! let workload = Workload::with_footprint(WorkloadKind::Regular, 64 * 1024 * 1024);
//! let report = run(&config, &workload);
//!
//! println!(
//!     "UVM: {}  explicit: {}  faults: {}",
//!     report.total_time,
//!     report.explicit_time,
//!     report.total_faults()
//! );
//! assert!(report.total_faults() > 0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod simulator;

pub use config::SimConfig;
pub use simulator::{
    prepare, run, run_prepared, run_repeated, run_sweep, run_sweep_with, LaunchStats,
    PreparedWorkload, SimReport,
};

// Re-export the workspace's public surface for downstream users.
pub use gpu_model::{self, FaultBufferConfig, GpuConfig};
pub use metrics::{
    self, flame_summary, Category, ChromePoint, Counters, EventKind, Histogram, SpanCat, SpanEvent,
    SpanKind, SpanPhase, SpanRecorder, SpanTrace, Timers, TraceEvent,
};
pub use sim_engine::{self, CostModel, CostModelConfig, SimDuration, SimRng, SimTime};
pub use uvm_driver::{
    self, BatchArena, DriverConfig, EvictionPolicy, ManagedSpace, PrefetchPolicy, ReplayPolicy,
    UvmDriver,
};
pub use workloads::{self, Workload, WorkloadKind};
