//! The co-simulation loop coupling the GPU engine and the UVM driver on a
//! shared virtual clock.
//!
//! The loop alternates two phases, mirroring the real system's dynamics
//! when kernels demand-page (the driver is the serial bottleneck, the
//! paper's central observation):
//!
//! 1. **GPU phase** — the engine issues accesses until every resident
//!    block is stalled on faults (or the grid finishes). Faults land in
//!    the hardware buffer.
//! 2. **Driver phase** — the driver processes batches until it issues a
//!    replay; its per-category costs advance the virtual clock. The
//!    replay (after its propagation latency) resumes stalled warps.
//!
//! Reported kernel time is `driver critical path + ideal compute time`:
//! while warps are stalled on faults the GPU makes no progress on their
//! work, so fault handling serialises with compute — the loosely-timed
//! approximation that matches the paper's observation that the driver is
//! the bottleneck for demand-paged kernels.

use crate::config::SimConfig;
use gpu_model::dma::TransferLog;
use gpu_model::engine::EngineCounters;
use gpu_model::{FaultBuffer, GpuEngine};
use metrics::{
    Attribution, Counters, Histogram, Offender, SpanKind, SpanTrace, Timers, Timeseries,
    TraceEvent,
};
use serde::{Deserialize, Serialize};
use gpu_model::WorkloadTrace;
use sim_engine::units::PAGE_SIZE;
use sim_engine::{CostModel, SimDuration, SimRng, SimTime};
use std::sync::Arc;
use uvm_driver::{ManagedSpace, UvmDriver};
use workloads::Workload;

/// Everything a run produced: times, breakdowns, counters, traces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Workload label.
    pub workload: String,
    /// Managed footprint in bytes.
    pub footprint_bytes: u64,
    /// footprint ÷ GPU memory (oversubscription past 1.0).
    pub subscription_ratio: f64,
    /// End-to-end kernel time under UVM demand paging.
    pub total_time: SimDuration,
    /// Driver critical-path time (incl. kernel launch).
    pub driver_time: SimDuration,
    /// Ideal GPU compute time of the kernel.
    pub compute_time: SimDuration,
    /// What the same data movement costs with one explicit
    /// `cudaMemcpy`-style bulk transfer (Fig. 1's baseline).
    pub explicit_time: SimDuration,
    /// Per-category driver timers.
    pub timers: Timers,
    /// Driver counters.
    pub counters: Counters,
    /// Device-side engine counters.
    pub engine: EngineCounters,
    /// Interconnect traffic.
    pub transfers: TransferLog,
    /// Captured fault/prefetch/eviction events (empty unless enabled).
    pub trace: Vec<TraceEvent>,
    /// Fault-trace events dropped at the recorder's capacity.
    pub trace_dropped: u64,
    /// Captured batch-lifecycle spans (empty unless
    /// `driver.record_spans`). Sim-time fields are deterministic; the
    /// `wall_ns` stamps are not.
    pub span_trace: SpanTrace,
    /// Per-batch fault-count distribution (paper §III-D).
    pub faults_per_batch: Histogram,
    /// Per-batch VABlock-count distribution (paper §III-D).
    pub vablocks_per_batch: Histogram,
    /// Simulated-time telemetry samples (empty unless
    /// `driver.timeseries.enabled`). Sampled on the virtual clock, so the
    /// stream is bit-identical at any thread/worker count; the final
    /// sample is forced at the end of the driver's critical path (its
    /// `t_ns` equals `driver_time`) and carries the exact end-of-run
    /// totals (it reconciles with `counters`/`transfers`).
    pub timeseries: Timeseries,
    /// Pages the prefetcher brought in that the kernel never used —
    /// prefetch waste (paper §VI-A). `None` unless
    /// `gpu.track_page_use` was enabled.
    pub prefetched_unused_pages: Option<u64>,
    /// Fault-provenance ledger: every serviced fault and migrated byte
    /// attributed to its root cause. Always collected (word-wide mask
    /// ops on paths already walking the masks); reconciles exactly with
    /// `counters` and `transfers`.
    pub attribution: Attribution,
    /// The worst-thrashing VABlocks by attribution badness (refaults +
    /// prefetched-evicted pages), descending; block index breaks ties.
    pub top_offenders: Vec<Offender>,
}

impl SimReport {
    /// Total faults the driver observed — the paper's "total faults".
    pub fn total_faults(&self) -> u64 {
        self.counters.faults_fetched
    }

    /// Total bytes moved over the interconnect in either direction.
    pub fn bytes_moved(&self) -> u64 {
        self.transfers.total_bytes()
    }

    /// Achieved compute rate in FLOP/s given total work `flops`.
    pub fn compute_rate(&self, flops: f64) -> f64 {
        flops / self.total_time.as_secs_f64()
    }
}

/// A workload's generated trace and address space, reusable across runs.
///
/// Trace generation is deterministic in `(workload, seed)` and costs
/// milliseconds at full scale; sweeps that run the same workload under
/// several driver configs [`prepare`] once and [`run_prepared`] many
/// times. The trace is behind an [`Arc`], so a prepared workload is cheap
/// to clone and thread-safe to share.
#[derive(Debug, Clone)]
pub struct PreparedWorkload {
    space: ManagedSpace,
    trace: Arc<WorkloadTrace>,
    seed: u64,
}

/// Generate `workload`'s trace for `config`'s seed, once.
pub fn prepare(config: &SimConfig, workload: &Workload) -> PreparedWorkload {
    let root = SimRng::from_seed(config.seed);
    let mut space = ManagedSpace::new();
    let trace = workload.generate(&mut space, &mut root.derive(1));
    PreparedWorkload {
        space,
        trace: Arc::new(trace),
        seed: config.seed,
    }
}

/// Run `workload` under `config` and report.
pub fn run(config: &SimConfig, workload: &Workload) -> SimReport {
    run_prepared(config, &prepare(config, workload))
}

/// Treat `driver.service_workers == 0` (auto) as 1 (fully serial).
///
/// Auto used to silently inherit the ambient rayon pool size here, which
/// made the phase telemetry's `workers` field — and the measured
/// serial-front / parallel-service split — vary with host core count
/// even at a fixed `--service-workers`. The `repro` harness now resolves
/// auto to an explicit count *before* the config reaches this crate;
/// anything still unresolved runs serial. Simulated output never depends
/// on the value — only host wall time does.
fn resolve_service_workers(mut driver: uvm_driver::DriverConfig) -> uvm_driver::DriverConfig {
    if driver.service_workers == 0 {
        driver.service_workers = 1;
    }
    driver
}

/// Run a [`prepare`]d workload under `config` and report. Equivalent to
/// [`run`] — bit-identical results — minus the trace generation.
pub fn run_prepared(config: &SimConfig, prepared: &PreparedWorkload) -> SimReport {
    assert_eq!(
        prepared.seed, config.seed,
        "prepared workload was generated for a different seed"
    );
    let cost = CostModel::new(config.cost.clone());
    let root = SimRng::from_seed(config.seed);

    let space = prepared.space.clone();
    let footprint_bytes = space.ranges().iter().map(|r| r.num_pages).sum::<u64>() * PAGE_SIZE;
    let subscription_ratio = footprint_bytes as f64 / config.driver.gpu_memory_bytes as f64;

    let mut driver = UvmDriver::new(
        resolve_service_workers(config.driver.clone()),
        cost.clone(),
        space,
        root.derive(2),
    );
    let mut engine = GpuEngine::launch(config.gpu.clone(), Arc::clone(&prepared.trace), root.derive(3));
    let mut buffer = FaultBuffer::new(config.fault_buffer.clone());

    let mut clock = SimTime::ZERO + cost.kernel_launch();
    let mut passes: u64 = 0;
    let mut stuck_passes: u64 = 0;
    let mut last_steps: u64 = 0;
    let mut last_buffer_drops: u64 = 0;

    loop {
        engine.run(driver.space(), &mut buffer, clock);
        if engine.is_done() {
            break;
        }
        // Hardware fault-buffer overflows happen on the GPU side; surface
        // them as instants on the driver's span timeline.
        let buffer_drops = engine.counters().faults_dropped;
        if buffer_drops > last_buffer_drops {
            driver.spans_mut().instant(
                SpanKind::BufferOverflow,
                clock,
                buffer_drops - last_buffer_drops,
                0,
            );
            last_buffer_drops = buffer_drops;
        }
        if config.gpu.access_counters.enabled {
            let notifs = engine.drain_access_notifications();
            clock += driver.note_access_notifications(
                &notifs,
                config.gpu.access_counters.granularity_pages,
                clock,
            );
        }
        // Driver works until it releases the GPU with a replay.
        loop {
            let pass = driver.process_pass(&mut buffer, clock);
            clock += pass.time;
            passes += 1;
            assert!(
                passes <= config.max_passes,
                "exceeded max_passes = {} — livelock?",
                config.max_passes
            );
            if pass.replays > 0 {
                break;
            }
        }
        clock += cost.replay_latency();
        engine.replay();

        // Livelock detection: replays that never complete a step mean the
        // working set of stalled warps cannot become co-resident.
        let steps = engine.counters().steps_completed;
        if steps == last_steps {
            stuck_passes += 1;
            assert!(
                stuck_passes < 10_000,
                "no GPU progress over {stuck_passes} replays: working set of \
                 stalled warps cannot fit in {} bytes of GPU memory",
                config.driver.gpu_memory_bytes
            );
        } else {
            stuck_passes = 0;
            last_steps = steps;
        }
    }

    let driver_time = clock - SimTime::ZERO;
    let compute_time = cost.kernel_launch() + engine.compute_time();
    let total_time = driver_time + engine.compute_time();

    // Close out the telemetry stream at the end of the driver's critical
    // path, so the last sample equals the end-of-run totals exactly.
    driver.finalize_timeseries(clock);

    let mut xfer_explicit = TransferLog::default();
    let explicit_time = cost.kernel_launch()
        + gpu_model::dma::explicit_transfer(&cost, footprint_bytes, &mut xfer_explicit)
        + engine.compute_time();

    let prefetched_unused_pages = config.gpu.track_page_use.then(|| {
        driver
            .prefetched_pages()
            .filter(|&p| !engine.page_was_used(p))
            .count() as u64
    });

    SimReport {
        workload: engine.trace().name.clone(),
        footprint_bytes,
        subscription_ratio,
        total_time,
        driver_time,
        compute_time,
        explicit_time,
        timers: *driver.timers(),
        counters: *driver.counters(),
        engine: *engine.counters(),
        transfers: *driver.transfer_log(),
        trace: driver.trace().events().to_vec(),
        trace_dropped: driver.trace().dropped(),
        span_trace: driver.spans().to_trace(),
        faults_per_batch: driver.faults_per_batch().clone(),
        vablocks_per_batch: driver.vablocks_per_batch().clone(),
        timeseries: driver.take_timeseries(),
        prefetched_unused_pages,
        attribution: *driver.attribution(),
        top_offenders: driver.top_offenders(TOP_OFFENDERS_K),
    }
}

/// How many offending VABlocks a report carries. Enough to render the
/// `repro explain` table; small enough to be negligible in JSON output.
const TOP_OFFENDERS_K: usize = 8;

/// Run every `(config, workload)` point of a sweep, in parallel when a
/// rayon thread pool offers more than one thread, returning reports in
/// input order.
///
/// Trace generation is hoisted and deduplicated: points sharing a
/// `(workload, seed)` pair — e.g. the same workload measured with
/// prefetching on and off — are [`prepare`]d once. Results are
/// bit-identical to calling [`run`] on each point.
pub fn run_sweep(points: Vec<(SimConfig, Workload)>) -> Vec<SimReport> {
    run_sweep_with(points, |_, _| {})
}

/// [`run_sweep`] with a completion callback: `on_point(index, report)`
/// fires as each point finishes (from whichever worker thread ran it —
/// out of input order under parallelism). Used by the `repro` binary for
/// live progress/ETA telemetry; the returned reports are identical to
/// [`run_sweep`]'s, still in input order.
///
/// Points are scheduled over per-worker work-stealing deques rather than
/// a static split: each worker is dealt a round-robin share in
/// longest-expected-first order (a point's wall time tracks its trace's
/// access count), pops its own deque from the front, and when empty
/// steals from the back of whichever peer has the most left. Under the
/// old static split one straggler point serialised the tail of `repro
/// all`; with stealing, idle workers drain the straggler's queue behind
/// it. Determinism is unaffected: every point's simulation is
/// independent and deterministic, and each report is committed to its
/// input-index slot, so steal order changes wall time only. Queue/steal
/// stats land in [`metrics::sched`] for the harness to drain.
pub fn run_sweep_with<F>(points: Vec<(SimConfig, Workload)>, on_point: F) -> Vec<SimReport>
where
    F: Fn(usize, &SimReport) + Sync,
{
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::Instant;

    let mut prepared: Vec<(u64, Workload, PreparedWorkload)> = Vec::new();
    let jobs: Vec<(usize, SimConfig, usize)> = points
        .into_iter()
        .enumerate()
        .map(|(i, (config, workload))| {
            let idx = prepared
                .iter()
                .position(|(seed, w, _)| *seed == config.seed && *w == workload)
                .unwrap_or_else(|| {
                    prepared.push((config.seed, workload.clone(), prepare(&config, &workload)));
                    prepared.len() - 1
                });
            (i, config, idx)
        })
        .collect();

    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = rayon::current_num_threads().min(n).max(1);

    if threads <= 1 {
        // Serial: input order, no deques to maintain.
        let mut max_wall = 0u64;
        let reports: Vec<SimReport> = jobs
            .iter()
            .map(|(i, config, idx)| {
                let t0 = Instant::now();
                let report = run_prepared(config, &prepared[*idx].2);
                max_wall = max_wall.max(t0.elapsed().as_nanos() as u64);
                on_point(*i, &report);
                report
            })
            .collect();
        metrics::sched::record(&metrics::SweepSchedStats {
            points: n as u64,
            stolen: 0,
            max_point_wall_ns: max_wall,
            threads: 1,
        });
        return reports;
    }

    // Deal in longest-expected-first order (ties broken by input index,
    // keeping the deal deterministic) so the heaviest points start first
    // and the short tail is what gets stolen.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&j| {
        (
            std::cmp::Reverse(prepared[jobs[j].2].2.trace.total_accesses()),
            j,
        )
    });
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|_| Mutex::new(VecDeque::new()))
        .collect();
    for (rank, &job) in order.iter().enumerate() {
        deques[rank % threads].lock().unwrap().push_back(job);
    }

    let slots: Vec<Mutex<Option<SimReport>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let stolen = AtomicU64::new(0);
    let max_wall = AtomicU64::new(0);
    {
        let (jobs, prepared, deques) = (&jobs, &prepared, &deques);
        let (slots, stolen, max_wall, on_point) = (&slots, &stolen, &max_wall, &on_point);
        std::thread::scope(|s| {
            for me in 0..threads {
                s.spawn(move || loop {
                    let popped = deques[me].lock().unwrap().pop_front();
                    let (job, stole) = match popped {
                        Some(j) => (j, false),
                        None => {
                            // Steal from the back of the fullest peer.
                            let mut best: Option<(usize, usize)> = None;
                            for (v, d) in deques.iter().enumerate() {
                                let len = if v == me { 0 } else { d.lock().unwrap().len() };
                                if len > 0 && best.is_none_or(|(_, l)| len > l) {
                                    best = Some((v, len));
                                }
                            }
                            // Jobs are only ever consumed, so an
                            // all-empty scan means the sweep is drained.
                            let Some((v, _)) = best else { break };
                            match deques[v].lock().unwrap().pop_back() {
                                Some(j) => (j, true),
                                None => continue, // lost the race; rescan
                            }
                        }
                    };
                    let (i, config, idx) = &jobs[job];
                    let t0 = Instant::now();
                    let report = run_prepared(config, &prepared[*idx].2);
                    max_wall.fetch_max(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    if stole {
                        stolen.fetch_add(1, Ordering::Relaxed);
                    }
                    on_point(*i, &report);
                    *slots[*i].lock().unwrap() = Some(report);
                });
            }
        });
    }
    metrics::sched::record(&metrics::SweepSchedStats {
        points: n as u64,
        stolen: stolen.into_inner(),
        max_point_wall_ns: max_wall.into_inner(),
        threads: threads as u64,
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("work-stealing scheduler ran every point")
        })
        .collect()
}

/// Per-launch summary from [`run_repeated`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchStats {
    /// Launch index (0-based).
    pub launch: u32,
    /// Virtual time this launch took end to end.
    pub time: SimDuration,
    /// Faults the driver observed during this launch.
    pub faults: u64,
    /// Pages migrated host→device during this launch.
    pub pages_migrated: u64,
    /// Evictions during this launch.
    pub evictions: u64,
}

/// Launch the same kernel `launches` times against one persistent driver
/// — the iterative-application scenario. The first launch pays the full
/// demand-paging cost; later launches run warm (zero faults when the
/// footprint fits in GPU memory, steady-state thrash when it does not).
pub fn run_repeated(config: &SimConfig, workload: &Workload, launches: u32) -> Vec<LaunchStats> {
    assert!(launches > 0);
    let cost = CostModel::new(config.cost.clone());
    let root = SimRng::from_seed(config.seed);

    let mut space = ManagedSpace::new();
    let trace = Arc::new(workload.generate(&mut space, &mut root.derive(1)));
    let mut driver = UvmDriver::new(
        resolve_service_workers(config.driver.clone()),
        cost.clone(),
        space,
        root.derive(2),
    );
    let mut buffer = FaultBuffer::new(config.fault_buffer.clone());

    let mut out = Vec::with_capacity(launches as usize);
    let mut clock = SimTime::ZERO;
    for launch in 0..launches {
        let start = clock;
        let faults0 = driver.counters().faults_fetched;
        let migrated0 = driver.counters().pages_migrated_h2d();
        let evictions0 = driver.counters().evictions;
        clock += cost.kernel_launch();
        let mut engine = GpuEngine::launch(
            config.gpu.clone(),
            Arc::clone(&trace),
            root.derive(10 + launch as u64),
        );
        let mut passes = 0u64;
        loop {
            engine.run(driver.space(), &mut buffer, clock);
            if engine.is_done() {
                break;
            }
            loop {
                let pass = driver.process_pass(&mut buffer, clock);
                clock += pass.time;
                passes += 1;
                assert!(passes <= config.max_passes, "livelock in repeated launch");
                if pass.replays > 0 {
                    break;
                }
            }
            clock += cost.replay_latency();
            engine.replay();
        }
        // Kernel boundary: drain any stale entries a non-flushing replay
        // policy left behind, so they don't surface as phantom faults in
        // the next launch's counters.
        buffer.flush();
        clock += engine.compute_time();
        out.push(LaunchStats {
            launch,
            time: clock - start,
            faults: driver.counters().faults_fetched - faults0,
            pages_migrated: driver.counters().pages_migrated_h2d() - migrated0,
            evictions: driver.counters().evictions - evictions0,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::units::MIB;
    use uvm_driver::PrefetchPolicy;
    use workloads::{RegularParams, Workload};

    fn small_config(mem_mib: u64) -> SimConfig {
        let mut c = SimConfig::default();
        c.driver.gpu_memory_bytes = mem_mib * MIB;
        c
    }

    fn regular(bytes: u64) -> Workload {
        Workload::Regular(RegularParams {
            bytes,
            warps_per_block: 8,
        })
    }

    #[test]
    fn undersubscribed_regular_completes() {
        let cfg = small_config(64);
        let r = run(&cfg, &regular(16 * MIB));
        assert_eq!(r.workload, "regular");
        assert_eq!(r.footprint_bytes, 16 * MIB);
        assert!(r.subscription_ratio < 1.0);
        // Every page faults or is prefetched exactly once.
        assert_eq!(r.counters.pages_migrated_h2d(), 4096);
        assert_eq!(r.counters.evictions, 0);
        assert!(r.total_time > SimDuration::ZERO);
        assert!(r.total_faults() > 0);
    }

    #[test]
    fn prefetch_reduces_faults() {
        let cfg_on = small_config(64);
        let mut cfg_off = small_config(64);
        cfg_off.driver.prefetch = PrefetchPolicy::Disabled;
        let on = run(&cfg_on, &regular(16 * MIB));
        let off = run(&cfg_off, &regular(16 * MIB));
        assert!(
            on.total_faults() < off.total_faults() / 2,
            "prefetch on: {} faults, off: {}",
            on.total_faults(),
            off.total_faults()
        );
        // Same pages end up migrated either way (undersubscribed).
        assert_eq!(
            on.counters.pages_migrated_h2d(),
            off.counters.pages_migrated_h2d()
        );
    }

    #[test]
    fn oversubscription_triggers_evictions() {
        let cfg = small_config(16); // 16 MiB GPU, 24 MiB footprint
        let r = run(&cfg, &regular(24 * MIB));
        assert!(r.subscription_ratio > 1.0);
        assert!(r.counters.evictions > 0);
        assert!(r.counters.pages_evicted_total() > 0);
    }

    #[test]
    fn explicit_baseline_is_faster_undersubscribed() {
        let cfg = small_config(64);
        let r = run(&cfg, &regular(32 * MIB));
        assert!(
            r.explicit_time < r.total_time,
            "explicit {} vs UVM {}",
            r.explicit_time,
            r.total_time
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = small_config(32);
        let a = run(&cfg, &regular(20 * MIB));
        let b = run(&cfg, &regular(20 * MIB));
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.engine, b.engine);
    }

    #[test]
    fn seed_changes_fault_interleaving_not_coverage() {
        let a = run(&small_config(64).with_seed(1), &regular(16 * MIB));
        let b = run(&small_config(64).with_seed(2), &regular(16 * MIB));
        assert_eq!(
            a.counters.pages_migrated_h2d(),
            b.counters.pages_migrated_h2d()
        );
    }
}
