//! Property-based tests across all eight workload generators: every
//! access stays inside a live allocation, footprints account correctly,
//! the random kernel is a true permutation, and generation is
//! deterministic.

use gpu_model::WorkloadTrace;
use proptest::prelude::*;
use sim_engine::units::MIB;
use sim_engine::SimRng;
use uvm_driver::ManagedSpace;
use workloads::{Workload, WorkloadKind};

fn kind_strategy() -> impl Strategy<Value = WorkloadKind> {
    proptest::sample::select(WorkloadKind::ALL.to_vec())
}

fn every_access(trace: &WorkloadTrace) -> impl Iterator<Item = (u64, bool)> + '_ {
    trace.blocks.iter().flat_map(|b| {
        (0..b.num_steps()).flat_map(move |s| b.step(s).map(|(p, w)| (p.0, w)).collect::<Vec<_>>())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn accesses_stay_inside_allocations(
        kind in kind_strategy(),
        mib in 16u64..96,
        seed in any::<u64>(),
    ) {
        let w = Workload::with_footprint(kind, mib * MIB);
        let mut space = ManagedSpace::new();
        let mut rng = SimRng::from_seed(seed);
        let trace = w.generate(&mut space, &mut rng);
        for (page, _) in every_access(&trace) {
            prop_assert!(
                space.is_valid(gpu_model::GlobalPage(page)),
                "{}: page {} outside any allocation", w.name(), page
            );
        }
    }

    #[test]
    fn footprint_pages_matches_allocations(
        kind in kind_strategy(),
        mib in 16u64..96,
    ) {
        let w = Workload::with_footprint(kind, mib * MIB);
        let mut space = ManagedSpace::new();
        let mut rng = SimRng::from_seed(1);
        let trace = w.generate(&mut space, &mut rng);
        let allocated: u64 = space.ranges().iter().map(|r| r.num_pages).sum();
        prop_assert_eq!(trace.footprint_pages, allocated);
        prop_assert!(trace.total_accesses() > 0);
        prop_assert!(trace.total_steps() > 0);
    }

    #[test]
    fn generation_is_deterministic(
        kind in kind_strategy(),
        seed in any::<u64>(),
    ) {
        let w = Workload::with_footprint(kind, 32 * MIB);
        let gen = || {
            let mut space = ManagedSpace::new();
            let mut rng = SimRng::from_seed(seed);
            let t = w.generate(&mut space, &mut rng);
            every_access(&t).collect::<Vec<_>>()
        };
        prop_assert_eq!(gen(), gen());
    }

    #[test]
    fn random_kernel_is_a_permutation(mib in 4u64..64, seed in any::<u64>()) {
        let w = Workload::with_footprint(WorkloadKind::Random, mib * MIB);
        let mut space = ManagedSpace::new();
        let mut rng = SimRng::from_seed(seed);
        let trace = w.generate(&mut space, &mut rng);
        let mut pages: Vec<u64> = every_access(&trace).map(|(p, _)| p).collect();
        pages.sort_unstable();
        let expect: Vec<u64> = (0..trace.footprint_pages).collect();
        prop_assert_eq!(pages, expect);
    }

    #[test]
    fn regular_kernel_touches_each_page_once(mib in 4u64..64) {
        let w = Workload::with_footprint(WorkloadKind::Regular, mib * MIB);
        let mut space = ManagedSpace::new();
        let mut rng = SimRng::from_seed(0);
        let trace = w.generate(&mut space, &mut rng);
        let mut pages: Vec<u64> = every_access(&trace).map(|(p, _)| p).collect();
        prop_assert_eq!(pages.len() as u64, trace.footprint_pages);
        pages.sort_unstable();
        pages.dedup();
        prop_assert_eq!(pages.len() as u64, trace.footprint_pages);
    }

    #[test]
    fn stream_writes_only_vector_a(mib in 6u64..48) {
        let w = Workload::with_footprint(WorkloadKind::Stream, mib * MIB);
        let mut space = ManagedSpace::new();
        let mut rng = SimRng::from_seed(0);
        let trace = w.generate(&mut space, &mut rng);
        let a = space.ranges()[0].clone();
        for (page, write) in every_access(&trace) {
            let in_a = (a.start_page..a.end_page()).contains(&page);
            prop_assert_eq!(write, in_a, "writes iff in vector a");
        }
    }

    #[test]
    fn footprint_request_is_roughly_honoured(kind in kind_strategy(), mib in 32u64..128) {
        let w = Workload::with_footprint(kind, mib * MIB);
        let ratio = w.footprint_bytes() as f64 / (mib * MIB) as f64;
        prop_assert!(
            (0.3..1.7).contains(&ratio),
            "{}: footprint ratio {:.2}", w.name(), ratio
        );
    }
}
