//! The paper's "regular access" synthetic kernel (§III-C): each thread
//! touches exactly one page, the page matching its global thread ID, so
//! page access is sequential within warps and blocks.

use crate::common::{blocks_of_pages, cost_of_bytes, warp_interleave, WARP_SIZE};
use gpu_model::{GlobalPage, WorkloadTrace};
use serde::{Deserialize, Serialize};
use sim_engine::units::PAGE_SIZE;
use uvm_driver::ManagedSpace;

/// Parameters of the regular page-touch kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegularParams {
    /// Total buffer size in bytes.
    pub bytes: u64,
    /// Warps per thread block (stock CUDA kernels: 8 → 256 threads).
    pub warps_per_block: usize,
}

impl Default for RegularParams {
    fn default() -> Self {
        RegularParams {
            bytes: 256 * 1024 * 1024,
            warps_per_block: 8,
        }
    }
}

/// Generate the regular-access trace, allocating its buffer in `space`.
pub fn generate(params: &RegularParams, space: &mut ManagedSpace) -> WorkloadTrace {
    let range = space.alloc(params.bytes, "data");
    let mut pages: Vec<GlobalPage> = (0..range.num_pages).map(|i| range.page(i)).collect();
    // Within each thread block the warps issue concurrently: transpose
    // each block's page run into warp-interleaved order.
    let per_block = params.warps_per_block * WARP_SIZE;
    for chunk in pages.chunks_mut(per_block) {
        warp_interleave(chunk);
    }
    let step_cost = cost_of_bytes((WARP_SIZE as u64 * PAGE_SIZE) as f64);
    let blocks = blocks_of_pages(&pages, params.warps_per_block, step_cost, false);
    WorkloadTrace {
        name: "regular".into(),
        footprint_pages: range.num_pages,
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::units::MIB;

    #[test]
    fn covers_every_page_once_in_order() {
        let mut space = ManagedSpace::new();
        let t = generate(
            &RegularParams {
                bytes: 4 * MIB,
                warps_per_block: 8,
            },
            &mut space,
        );
        assert_eq!(t.footprint_pages, 1024);
        assert_eq!(t.total_accesses(), 1024);
        assert_eq!(t.blocks.len(), 4); // 1024 pages / 256 per block
                                       // Warp-interleaved issue order: cycle 0 of all 8 warps first.
        let first: Vec<_> = t.blocks[0].step(0).map(|(p, _)| p.0).collect();
        assert_eq!(&first[..8], &[0, 32, 64, 96, 128, 160, 192, 224]);
    }

    #[test]
    fn reads_only() {
        let mut space = ManagedSpace::new();
        let t = generate(
            &RegularParams {
                bytes: MIB,
                warps_per_block: 8,
            },
            &mut space,
        );
        assert!(t.blocks[0].step(0).all(|(_, w)| !w));
    }
}
