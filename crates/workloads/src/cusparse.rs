//! cuSPARSE-style kernel: dense→CSR conversion followed by a sparse
//! matrix–dense vector/matrix product (after Cheng et al.'s *Professional
//! CUDA C Programming* example the paper uses).
//!
//! Phase 1 streams the dense matrix sequentially while compacting into the
//! CSR arrays; phase 2 walks CSR rows and gathers from a dense operand at
//! the (random-looking) column positions of the nonzeros — the
//! random-like segments visible in Fig. 7's cusparse panel.

use crate::common::{cost_of_bytes, warp_interleave, WARP_SIZE};
use gpu_model::{BlockTrace, GlobalPage, WorkloadTrace};
use serde::{Deserialize, Serialize};
use sim_engine::units::PAGE_SIZE;
use sim_engine::SimRng;
use uvm_driver::ManagedSpace;

/// Parameters of the cuSPARSE workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CusparseParams {
    /// Dense matrix dimension (n×n f32).
    pub n: usize,
    /// Nonzero density in parts-per-thousand (e.g. 100 = 10 %).
    pub density_ppt: u32,
    /// Pages per thread block in the dense scan.
    pub pages_per_block: usize,
}

impl Default for CusparseParams {
    fn default() -> Self {
        CusparseParams {
            n: 4096,
            density_ppt: 100,
            pages_per_block: 64,
        }
    }
}

impl CusparseParams {
    /// Nonzeros in the sparse representation.
    pub fn nnz(&self) -> u64 {
        (self.n as u64 * self.n as u64 * self.density_ppt as u64) / 1000
    }

    /// Total managed footprint: dense A, CSR (vals + cols + row ptrs),
    /// dense operand B, output C.
    pub fn footprint_bytes(&self) -> u64 {
        let n = self.n as u64;
        let dense = 4 * n * n;
        let csr = 4 * self.nnz() + 4 * self.nnz() + 4 * (n + 1);
        dense + csr + dense + dense
    }
}

/// Generate the cuSPARSE trace, allocating all buffers in `space`.
pub fn generate(
    params: &CusparseParams,
    space: &mut ManagedSpace,
    rng: &mut SimRng,
) -> WorkloadTrace {
    let n = params.n as u64;
    let dense_bytes = 4 * n * n;
    let nnz = params.nnz().max(1);
    let a = space.alloc(dense_bytes, "A_dense");
    let vals = space.alloc(4 * nnz, "csr_vals");
    let cols = space.alloc(4 * nnz, "csr_cols");
    let rows = space.alloc(4 * (n + 1), "csr_rows");
    let b = space.alloc(dense_bytes, "B");
    let c = space.alloc(dense_bytes, "C");

    let step_cost = cost_of_bytes((WARP_SIZE as u64 * PAGE_SIZE) as f64);
    let mut blocks = Vec::new();

    // Phase 1: dense scan + CSR compaction. Each block scans a chunk of A
    // and writes the proportional chunk of vals/cols (and touches rows).
    let ratio = a.num_pages as f64 / vals.num_pages as f64;
    for chunk_start in (0..a.num_pages).step_by(params.pages_per_block) {
        let end = (chunk_start + params.pages_per_block as u64).min(a.num_pages);
        let mut bt = BlockTrace::new(step_cost);
        let mut scan: Vec<GlobalPage> = (chunk_start..end).map(|p| a.page(p)).collect();
        warp_interleave(&mut scan);
        for warp in scan.chunks(WARP_SIZE) {
            bt.push_step(warp.iter().copied(), false);
        }
        let v0 = (chunk_start as f64 / ratio) as u64;
        let v1 = ((end as f64 / ratio).ceil() as u64)
            .min(vals.num_pages)
            .max(v0 + 1);
        let mut out: Vec<(GlobalPage, bool)> = Vec::new();
        for v in v0..v1.min(vals.num_pages) {
            out.push((vals.page(v), true));
            out.push((cols.page(v.min(cols.num_pages - 1)), true));
        }
        out.push((
            rows.page((chunk_start * rows.num_pages / a.num_pages).min(rows.num_pages - 1)),
            true,
        ));
        for warp in out.chunks(WARP_SIZE) {
            bt.push_step_mixed(warp.iter().copied());
        }
        blocks.push(bt);
    }

    // Phase 2: SpMM — walk CSR sequentially, gather random rows of B,
    // write C sequentially.
    let gathers_per_block = 16usize;
    for chunk_start in (0..vals.num_pages).step_by(params.pages_per_block) {
        let end = (chunk_start + params.pages_per_block as u64).min(vals.num_pages);
        let mut bt = BlockTrace::new(step_cost);
        let csr_scan: Vec<GlobalPage> = (chunk_start..end)
            .flat_map(|p| [vals.page(p), cols.page(p.min(cols.num_pages - 1))])
            .collect();
        for warp in csr_scan.chunks(WARP_SIZE) {
            bt.push_step(warp.iter().copied(), false);
        }
        // Random gathers into B driven by the column indices.
        let gathers: Vec<GlobalPage> = (0..gathers_per_block)
            .map(|_| b.page(rng.index(b.num_pages as usize) as u64))
            .collect();
        for warp in gathers.chunks(WARP_SIZE) {
            bt.push_step(warp.iter().copied(), false);
        }
        // Proportional C output.
        let c0 = chunk_start * c.num_pages / vals.num_pages;
        let c1 = (end * c.num_pages / vals.num_pages)
            .max(c0 + 1)
            .min(c.num_pages);
        let out: Vec<GlobalPage> = (c0..c1).map(|p| c.page(p)).collect();
        for warp in out.chunks(WARP_SIZE) {
            bt.push_step(warp.iter().copied(), true);
        }
        blocks.push(bt);
    }

    let footprint_pages = space.ranges().iter().map(|r| r.num_pages).sum();
    WorkloadTrace {
        name: "cusparse".into(),
        footprint_pages,
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CusparseParams {
        CusparseParams {
            n: 1024,
            density_ppt: 100,
            pages_per_block: 32,
        }
    }

    #[test]
    fn allocates_all_buffers() {
        let mut space = ManagedSpace::new();
        let mut rng = SimRng::from_seed(1);
        let _ = generate(&small(), &mut space, &mut rng);
        let names: Vec<&str> = space.ranges().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["A_dense", "csr_vals", "csr_cols", "csr_rows", "B", "C"]
        );
    }

    #[test]
    fn nnz_tracks_density() {
        assert_eq!(small().nnz(), 1024 * 1024 / 10);
        let dense = CusparseParams {
            density_ppt: 1000,
            ..small()
        };
        assert_eq!(dense.nnz(), 1024 * 1024);
    }

    #[test]
    fn dense_matrix_scanned_sequentially() {
        let mut space = ManagedSpace::new();
        let mut rng = SimRng::from_seed(1);
        let t = generate(&small(), &mut space, &mut rng);
        let a = space.ranges()[0].clone();
        let mut first: Vec<u64> = t.blocks[0].step(0).map(|(p, _)| p.0).collect();
        first.sort_unstable();
        assert!(first
            .iter()
            .all(|p| (a.start_page..a.end_page()).contains(p)));
    }

    #[test]
    fn phase2_gathers_into_b() {
        let mut space = ManagedSpace::new();
        let mut rng = SimRng::from_seed(1);
        let t = generate(&small(), &mut space, &mut rng);
        let b = space.ranges()[4].clone();
        let mut b_reads = 0;
        for blk in &t.blocks {
            for s in 0..blk.num_steps() {
                for (p, w) in blk.step(s) {
                    if (b.start_page..b.end_page()).contains(&p.0) {
                        assert!(!w);
                        b_reads += 1;
                    }
                }
            }
        }
        assert!(b_reads > 0, "phase 2 gathers from B");
    }

    #[test]
    fn c_written() {
        let mut space = ManagedSpace::new();
        let mut rng = SimRng::from_seed(1);
        let t = generate(&small(), &mut space, &mut rng);
        let c = space.ranges()[5].clone();
        let mut c_writes = vec![false; c.num_pages as usize];
        for blk in &t.blocks {
            for s in 0..blk.num_steps() {
                for (p, w) in blk.step(s) {
                    if (c.start_page..c.end_page()).contains(&p.0) {
                        assert!(w);
                        c_writes[(p.0 - c.start_page) as usize] = true;
                    }
                }
            }
        }
        assert!(c_writes.iter().all(|&x| x), "every C page written");
    }
}
