//! GPU-STREAM triad (`a[i] = b[i] + s * c[i]`) — the paper evaluates the
//! triad-only configuration of Deakin et al.'s GPU-STREAM.
//!
//! The three-vector lockstep enforces a page-access *dependency*: each
//! thread block touches the same offset of `a`, `b`, and `c` together,
//! which the paper notes imposes a much stricter fault ordering than the
//! regular kernel (§IV-B).

use crate::common::cost_of_bytes;
use gpu_model::{BlockTrace, WorkloadTrace};
use serde::{Deserialize, Serialize};
use sim_engine::units::PAGE_SIZE;
use uvm_driver::ManagedSpace;

/// Parameters of the STREAM triad kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamParams {
    /// Size of each of the three vectors in bytes.
    pub bytes_per_vector: u64,
}

impl Default for StreamParams {
    fn default() -> Self {
        StreamParams {
            bytes_per_vector: 85 * 1024 * 1024,
        }
    }
}

/// Thread blocks sharing each page-triple. A 256-thread f32 triad block
/// covers 1 KB per vector, so four consecutive blocks touch the same
/// 4 KB page — from four different SMs/µTLBs, which is what generates
/// stream's duplicate faults in the paper's Table I.
pub const BLOCKS_PER_PAGE: u64 = 4;

/// Generate the triad trace, allocating vectors `a`, `b`, `c` in `space`.
pub fn generate(params: &StreamParams, space: &mut ManagedSpace) -> WorkloadTrace {
    let a = space.alloc(params.bytes_per_vector, "a");
    let b = space.alloc(params.bytes_per_vector, "b");
    let c = space.alloc(params.bytes_per_vector, "c");
    let pages = a.num_pages;
    // BLOCKS_PER_PAGE consecutive blocks share page i: each reads page i
    // of `b` and `c` concurrently and writes page i of `a`.
    let step_cost = cost_of_bytes((3 * PAGE_SIZE) as f64) / BLOCKS_PER_PAGE;
    let blocks = (0..pages * BLOCKS_PER_PAGE)
        .map(|blk| {
            let i = blk / BLOCKS_PER_PAGE;
            let mut bt = BlockTrace::new(step_cost);
            bt.push_step_mixed([(b.page(i), false), (c.page(i), false), (a.page(i), true)]);
            bt
        })
        .collect();
    WorkloadTrace {
        name: "stream".into(),
        footprint_pages: 3 * pages,
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::units::MIB;

    #[test]
    fn lockstep_triples() {
        let mut space = ManagedSpace::new();
        let t = generate(
            &StreamParams {
                bytes_per_vector: 2 * MIB,
            },
            &mut space,
        );
        assert_eq!(t.footprint_pages, 3 * 512);
        assert_eq!(t.blocks.len(), 512 * BLOCKS_PER_PAGE as usize);
        // Blocks 4i..4i+4 touch page i of each vector; `a` written.
        let step: Vec<_> = t.blocks[7 * BLOCKS_PER_PAGE as usize].step(0).collect();
        assert_eq!(step.len(), 3);
        let (pages, writes): (Vec<u64>, Vec<bool>) = step.iter().map(|(p, w)| (p.0, *w)).unzip();
        assert_eq!(pages, vec![512 + 7, 1024 + 7, 7]);
        assert_eq!(writes, vec![false, false, true]);
    }

    #[test]
    fn three_ranges_allocated() {
        let mut space = ManagedSpace::new();
        generate(&StreamParams::default(), &mut space);
        let names: Vec<&str> = space.ranges().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
