//! The paper's "random access" synthetic kernel (§III-C): each thread
//! touches a single, random, **unique** page of the buffer — a random
//! permutation of the page space.

use crate::common::{blocks_of_pages, cost_of_bytes, WARP_SIZE};
use gpu_model::{GlobalPage, WorkloadTrace};
use serde::{Deserialize, Serialize};
use sim_engine::units::PAGE_SIZE;
use sim_engine::SimRng;
use uvm_driver::ManagedSpace;

/// Parameters of the random page-touch kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomParams {
    /// Total buffer size in bytes.
    pub bytes: u64,
    /// Warps per thread block.
    pub warps_per_block: usize,
}

impl Default for RandomParams {
    fn default() -> Self {
        RandomParams {
            bytes: 256 * 1024 * 1024,
            warps_per_block: 8,
        }
    }
}

/// Generate the random-access trace, allocating its buffer in `space`.
pub fn generate(
    params: &RandomParams,
    space: &mut ManagedSpace,
    rng: &mut SimRng,
) -> WorkloadTrace {
    let range = space.alloc(params.bytes, "data");
    let mut pages: Vec<GlobalPage> = (0..range.num_pages).map(|i| range.page(i)).collect();
    rng.shuffle(&mut pages);
    let step_cost = cost_of_bytes((WARP_SIZE as u64 * PAGE_SIZE) as f64);
    let blocks = blocks_of_pages(&pages, params.warps_per_block, step_cost, false);
    WorkloadTrace {
        name: "random".into(),
        footprint_pages: range.num_pages,
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::units::MIB;

    #[test]
    fn permutation_covers_every_page_once() {
        let mut space = ManagedSpace::new();
        let mut rng = SimRng::from_seed(3);
        let t = generate(
            &RandomParams {
                bytes: 4 * MIB,
                warps_per_block: 8,
            },
            &mut space,
            &mut rng,
        );
        let mut seen: Vec<u64> = t
            .blocks
            .iter()
            .flat_map(|b| {
                (0..b.num_steps()).flat_map(|s| b.step(s).map(|(p, _)| p.0).collect::<Vec<_>>())
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..1024).collect::<Vec<u64>>());
    }

    #[test]
    fn order_is_shuffled_but_deterministic() {
        let gen = |seed| {
            let mut space = ManagedSpace::new();
            let mut rng = SimRng::from_seed(seed);
            let t = generate(&RandomParams::default(), &mut space, &mut rng);
            t.blocks[0].step(0).map(|(p, _)| p.0).collect::<Vec<_>>()
        };
        assert_eq!(gen(1), gen(1));
        assert_ne!(gen(1), gen(2));
        assert_ne!(gen(1), (0..32).collect::<Vec<u64>>(), "not sequential");
    }
}
