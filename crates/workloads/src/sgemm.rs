//! cuBLAS-style tiled SGEMM (`C = A × B`, all n×n f32, row-major).
//!
//! Each thread block computes one `tile × tile` output tile, marching over
//! the k-dimension: per k-step it cooperatively loads an A tile (row
//! segments) and a B tile (column-strided pages — the access that looks
//! random-like to the driver), and finally writes its C tile. The
//! page-level pattern matches what the paper's Fig. 7 shows cuBLAS SGEMM
//! presenting to the UVM driver, including the heavy cross-block reuse of
//! A and B pages that generates duplicate faults from distinct µTLBs.

use crate::common::{warp_interleave, GPU_FLOPS, WARP_SIZE};
use gpu_model::{BlockTrace, GlobalPage, WorkloadTrace};
use serde::{Deserialize, Serialize};
use sim_engine::units::PAGE_SIZE;
use std::collections::BTreeSet;
use uvm_driver::{ManagedSpace, VaRange};

/// Parameters of the SGEMM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgemmParams {
    /// Matrix dimension; must be a multiple of `tile`.
    pub n: usize,
    /// Tile edge in elements (page-trace granularity of one block).
    pub tile: usize,
    /// Aggregate FP32 rate of the platform (FLOP/s). Scaled platforms
    /// scale this alongside memory so the compute/transfer balance of the
    /// full-size Titan V is preserved.
    pub gpu_flops: f64,
}

impl Default for SgemmParams {
    fn default() -> Self {
        SgemmParams {
            n: 4096,
            tile: 1024,
            gpu_flops: GPU_FLOPS,
        }
    }
}

impl SgemmParams {
    /// Total managed footprint: three n×n f32 matrices.
    pub fn footprint_bytes(&self) -> u64 {
        3 * 4 * (self.n as u64) * (self.n as u64)
    }

    /// Total arithmetic work (2n³ FLOPs).
    pub fn flops(&self) -> f64 {
        2.0 * (self.n as f64).powi(3)
    }
}

/// Distinct pages covered by the `t × t` tile at (`r0`, `c0`) of an n×n
/// f32 matrix living in `range`.
fn tile_pages(range: &VaRange, n: usize, r0: usize, c0: usize, t: usize) -> Vec<GlobalPage> {
    let mut set = BTreeSet::new();
    for r in r0..r0 + t {
        let b0 = ((r * n + c0) * 4) as u64;
        let b1 = b0 + (t * 4) as u64 - 1;
        for p in b0 / PAGE_SIZE..=b1 / PAGE_SIZE {
            set.insert(range.page(p));
        }
    }
    set.into_iter().collect()
}

fn push_warp_steps(bt: &mut BlockTrace, pages: &mut [GlobalPage], write: bool) {
    // Warps load the tile cooperatively and concurrently: transpose into
    // warp-interleaved issue order so faults scatter across the tile span.
    warp_interleave(pages);
    for warp in pages.chunks(WARP_SIZE) {
        bt.push_step(warp.iter().copied(), write);
    }
}

/// Generate the SGEMM trace, allocating A, B, C in `space`.
pub fn generate(params: &SgemmParams, space: &mut ManagedSpace) -> WorkloadTrace {
    let (n, t) = (params.n, params.tile);
    assert!(t > 0 && n % t == 0, "n must be a multiple of tile");
    let mat_bytes = 4 * (n as u64) * (n as u64);
    let a = space.alloc(mat_bytes, "A");
    let b = space.alloc(mat_bytes, "B");
    let c = space.alloc(mat_bytes, "C");

    let nt = n / t;
    let mut blocks = Vec::with_capacity(nt * nt);
    for bi in 0..nt {
        for bj in 0..nt {
            let mut bt = BlockTrace::new(sim_engine::SimDuration::ZERO);
            for k in 0..nt {
                let mut a_pages = tile_pages(&a, n, bi * t, k * t, t);
                let mut b_pages = tile_pages(&b, n, k * t, bj * t, t);
                push_warp_steps(&mut bt, &mut a_pages, false);
                push_warp_steps(&mut bt, &mut b_pages, false);
            }
            let mut c_pages = tile_pages(&c, n, bi * t, bj * t, t);
            push_warp_steps(&mut bt, &mut c_pages, true);
            // Smear the block's arithmetic evenly over its steps.
            let block_flops = 2.0 * (t as f64) * (t as f64) * (n as f64);
            bt.step_cost = sim_engine::SimDuration::from_nanos(
                (block_flops / bt.num_steps() as f64 / params.gpu_flops * 1e9).round() as u64,
            );
            blocks.push(bt);
        }
    }

    WorkloadTrace {
        name: "sgemm".into(),
        footprint_pages: 3 * mat_bytes / PAGE_SIZE,
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SgemmParams {
        SgemmParams {
            n: 2048,
            tile: 1024,
            ..SgemmParams::default()
        }
    }

    #[test]
    fn grid_shape() {
        let mut space = ManagedSpace::new();
        let t = generate(&small(), &mut space);
        assert_eq!(t.blocks.len(), 4, "(n/tile)^2 blocks");
        assert_eq!(t.footprint_pages, 3 * 4 * 2048 * 2048 / 4096);
        assert_eq!(space.ranges().len(), 3);
    }

    #[test]
    fn tile_pages_are_strided_rows() {
        let mut space = ManagedSpace::new();
        let range = space.alloc(4 * 2048 * 2048, "A");
        // Tile (0,0) of a 2048-wide matrix: row r segment starts at
        // r*8192 bytes = page 2r; 1024 elements = 4096 bytes = exactly one
        // page... starting mid... row stride is 2 pages.
        let pages = tile_pages(&range, 2048, 0, 0, 1024);
        assert_eq!(pages.len(), 1024);
        assert_eq!(pages[0].0, 0);
        assert_eq!(pages[1].0, 2, "column tiling strides over pages");
        // The second column-tile covers the odd pages.
        let pages = tile_pages(&range, 2048, 0, 1024, 1024);
        assert_eq!(pages[0].0, 1);
        assert_eq!(pages[1].0, 3);
    }

    #[test]
    fn c_written_a_b_read() {
        let mut space = ManagedSpace::new();
        let t = generate(&small(), &mut space);
        let bt = &t.blocks[0];
        let c_start = space.ranges()[2].start_page;
        let mut saw_c_write = false;
        for s in 0..bt.num_steps() {
            for (p, w) in bt.step(s) {
                if p.0 >= c_start {
                    assert!(w, "C pages are written");
                    saw_c_write = true;
                } else {
                    assert!(!w, "A/B pages are read");
                }
            }
        }
        assert!(saw_c_write);
    }

    #[test]
    fn cross_block_reuse_exists() {
        // Blocks in the same block-row share A pages.
        let mut space = ManagedSpace::new();
        let t = generate(&small(), &mut space);
        let pages_of = |b: &BlockTrace| {
            let mut v: Vec<u64> = (0..b.num_steps())
                .flat_map(|s| b.step(s).map(|(p, _)| p.0).collect::<Vec<_>>())
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let p0 = pages_of(&t.blocks[0]); // (0,0)
        let p1 = pages_of(&t.blocks[1]); // (0,1)
        let shared = p0.iter().filter(|p| p1.binary_search(p).is_ok()).count();
        assert!(shared > 0, "same block-row shares A tiles");
    }

    #[test]
    fn step_cost_accounts_total_flops() {
        let mut space = ManagedSpace::new();
        let t = generate(&small(), &mut space);
        let total: f64 = t
            .blocks
            .iter()
            .map(|b| b.step_cost.as_micros_f64() * b.num_steps() as f64)
            .sum();
        let expect = crate::common::cost_of_flops(small().flops()).as_micros_f64();
        let err = (total - expect).abs() / expect;
        assert!(err < 0.01, "smeared cost within 1% of 2n^3/rate");
    }

    #[test]
    #[should_panic(expected = "multiple of tile")]
    fn bad_tile_rejected() {
        let mut space = ManagedSpace::new();
        generate(
            &SgemmParams {
                n: 1000,
                tile: 512,
                ..SgemmParams::default()
            },
            &mut space,
        );
    }
}
