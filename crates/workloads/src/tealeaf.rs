//! TeaLeaf-style 2-D heat-conduction solver (UK-MAC TeaLeaf CUDA port).
//!
//! A CG-based 5-point stencil solver over several co-allocated field
//! arrays (u, p, r, w, …). Thread blocks own 2-D tiles, so each block's
//! page accesses stride by the row length across every field array — the
//! multi-allocation, strided pattern that gives TeaLeaf the lowest
//! prefetch fault-coverage in the paper's Table I.

use crate::common::{cost_of_bytes, WARP_SIZE};
use gpu_model::{BlockTrace, GlobalPage, WorkloadTrace};
use serde::{Deserialize, Serialize};
use sim_engine::units::PAGE_SIZE;
use std::collections::BTreeSet;
use uvm_driver::ManagedSpace;

/// Parameters of the TeaLeaf workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TealeafParams {
    /// Grid edge (cells); arrays are n×n f64.
    pub n: usize,
    /// Number of field arrays (TeaLeaf's CG solver keeps ~5 live).
    pub arrays: usize,
    /// Solver iterations (data is reused across iterations; only the
    /// first faults when undersubscribed).
    pub iterations: usize,
    /// Tile edge in cells for the 2-D block decomposition.
    pub tile: usize,
}

impl Default for TealeafParams {
    fn default() -> Self {
        TealeafParams {
            n: 2048,
            arrays: 5,
            iterations: 2,
            tile: 256,
        }
    }
}

impl TealeafParams {
    /// Total managed footprint.
    pub fn footprint_bytes(&self) -> u64 {
        self.arrays as u64 * 8 * (self.n as u64) * (self.n as u64)
    }
}

/// Generate the TeaLeaf trace, allocating its field arrays in `space`.
pub fn generate(params: &TealeafParams, space: &mut ManagedSpace) -> WorkloadTrace {
    let (n, t) = (params.n, params.tile);
    assert!(t > 0 && n % t == 0, "n must be a multiple of tile");
    assert!(params.arrays >= 1 && params.iterations >= 1);
    let arr_bytes = 8 * (n as u64) * (n as u64);
    let arrays: Vec<_> = (0..params.arrays)
        .map(|i| space.alloc(arr_bytes, format!("field{i}")))
        .collect();

    let nt = n / t;
    let mut blocks = Vec::with_capacity(params.iterations * nt * nt);
    for _iter in 0..params.iterations {
        for bi in 0..nt {
            for bj in 0..nt {
                // Pages of this block's t×t tile in one array: rows stride
                // by 8n bytes.
                let mut tile_pages = BTreeSet::new();
                for r in bi * t..(bi + 1) * t {
                    let b0 = ((r * n + bj * t) * 8) as u64;
                    let b1 = b0 + (t * 8) as u64 - 1;
                    for p in b0 / PAGE_SIZE..=b1 / PAGE_SIZE {
                        tile_pages.insert(p);
                    }
                }
                let tile_pages: Vec<u64> = tile_pages.into_iter().collect();
                let step_cost =
                    cost_of_bytes((tile_pages.len() * params.arrays) as f64 * PAGE_SIZE as f64)
                        / tile_pages.len().div_ceil(WARP_SIZE) as u64;
                let mut bt = BlockTrace::new(step_cost);
                // The stencil update reads/writes all field arrays in
                // lockstep: interleave one warp-chunk per array.
                for chunk in tile_pages.chunks(WARP_SIZE) {
                    for (ai, arr) in arrays.iter().enumerate() {
                        let write = ai == 0; // u is updated, others read
                        bt.push_step(chunk.iter().map(|&p| GlobalPage(arr.start_page + p)), write);
                    }
                }
                blocks.push(bt);
            }
        }
    }

    WorkloadTrace {
        name: "tealeaf".into(),
        footprint_pages: params.arrays as u64 * arr_bytes / PAGE_SIZE,
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TealeafParams {
        TealeafParams {
            n: 1024,
            arrays: 3,
            iterations: 2,
            tile: 256,
        }
    }

    #[test]
    fn grid_and_footprint() {
        let mut space = ManagedSpace::new();
        let t = generate(&small(), &mut space);
        // 4x4 tiles x 2 iterations.
        assert_eq!(t.blocks.len(), 32);
        assert_eq!(space.ranges().len(), 3);
        assert_eq!(t.footprint_pages, 3 * 8 * 1024 * 1024 / 4096);
    }

    #[test]
    fn tiles_stride_across_rows() {
        let mut space = ManagedSpace::new();
        let t = generate(&small(), &mut space);
        // Block (0,1) of array 0: row r segment at (r*1024 + 256)*8 —
        // pages stride by 2 (8KB rows), tile cols cover a sub-page range
        // crossing one page boundary.
        let bt = &t.blocks[1];
        let first_warp: Vec<u64> = bt.step(0).map(|(p, _)| p.0).collect();
        assert!(first_warp.windows(2).all(|w| w[1] > w[0]));
        assert!(first_warp[1] - first_warp[0] <= 2);
    }

    #[test]
    fn arrays_interleave_in_lockstep() {
        let mut space = ManagedSpace::new();
        let t = generate(&small(), &mut space);
        let bt = &t.blocks[0];
        let arr_pages = 8 * 1024 * 1024 / 4096_u64;
        // Steps cycle through the arrays: consecutive steps land in
        // consecutive allocations.
        let s0: Vec<u64> = bt.step(0).map(|(p, _)| p.0).collect();
        let s1: Vec<u64> = bt.step(1).map(|(p, _)| p.0).collect();
        let s2: Vec<u64> = bt.step(2).map(|(p, _)| p.0).collect();
        assert!(s0[0] < arr_pages);
        assert!((arr_pages..2 * arr_pages).contains(&s1[0]));
        assert!((2 * arr_pages..3 * arr_pages).contains(&s2[0]));
    }

    #[test]
    fn first_array_is_written() {
        let mut space = ManagedSpace::new();
        let t = generate(&small(), &mut space);
        let bt = &t.blocks[0];
        let writes: Vec<bool> = (0..3).map(|s| bt.step(s).next().unwrap().1).collect();
        assert_eq!(writes, vec![true, false, false]);
    }

    #[test]
    fn iterations_revisit_the_same_pages() {
        let mut space = ManagedSpace::new();
        let t = generate(&small(), &mut space);
        let half = t.blocks.len() / 2;
        let pages = |b: &BlockTrace| -> Vec<u64> {
            (0..b.num_steps())
                .flat_map(|s| b.step(s).map(|(p, _)| p.0).collect::<Vec<_>>())
                .collect()
        };
        assert_eq!(pages(&t.blocks[0]), pages(&t.blocks[half]));
    }
}
