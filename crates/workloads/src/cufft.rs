//! cuFFT-style forward + inverse transform (out-of-place, complex f32).
//!
//! The driver-visible pattern of a large 1-D FFT: each pass streams the
//! input sequentially while writing the output in a bit-reversal-style
//! scattered order; the inverse transform then reads that output
//! sequentially and scatters back into the input buffer. This produces
//! the two-allocation, sequential-plus-scattered pattern of Fig. 7's
//! cuFFT panels.

use crate::common::{cost_of_flops, warp_interleave, WARP_SIZE};
use gpu_model::{BlockTrace, GlobalPage, WorkloadTrace};
use serde::{Deserialize, Serialize};
use sim_engine::units::PAGE_SIZE;
use uvm_driver::ManagedSpace;

/// Parameters of the FFT workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CufftParams {
    /// Signal buffer size in bytes (complex f32 elements = bytes / 8).
    /// Rounded up to a power-of-two page count internally.
    pub bytes: u64,
    /// Also run the inverse transform (paper evaluates both directions).
    pub inverse: bool,
    /// Pages per thread block per pass.
    pub pages_per_block: usize,
}

impl Default for CufftParams {
    fn default() -> Self {
        CufftParams {
            bytes: 128 * 1024 * 1024,
            inverse: true,
            pages_per_block: 64,
        }
    }
}

/// Bit-reverse the low `bits` bits of `i`.
fn bit_reverse(i: u64, bits: u32) -> u64 {
    i.reverse_bits() >> (64 - bits)
}

/// Generate the FFT trace, allocating `in` and `out` buffers in `space`.
pub fn generate(params: &CufftParams, space: &mut ManagedSpace) -> WorkloadTrace {
    let pages = (params.bytes.div_ceil(PAGE_SIZE)).next_power_of_two();
    let bits = pages.trailing_zeros();
    let input = space.alloc(pages * PAGE_SIZE, "in");
    let output = space.alloc(pages * PAGE_SIZE, "out");

    let n_elems = (pages * PAGE_SIZE / 8) as f64;
    let pass_flops =
        5.0 * n_elems * n_elems.log2() / (pages as f64 / params.pages_per_block as f64);

    let mut blocks = Vec::new();
    let pass = |src: &uvm_driver::VaRange,
                dst: &uvm_driver::VaRange,
                blocks: &mut Vec<BlockTrace>| {
        for chunk_start in (0..pages).step_by(params.pages_per_block) {
            let mut bt = BlockTrace::new(cost_of_flops(pass_flops));
            let end = (chunk_start + params.pages_per_block as u64).min(pages);
            // Sequential read of the source chunk in warp-concurrent
            // (transposed) issue order…
            let mut src_pages: Vec<GlobalPage> = (chunk_start..end).map(|p| src.page(p)).collect();
            warp_interleave(&mut src_pages);
            for warp in src_pages.chunks(WARP_SIZE) {
                bt.push_step(warp.iter().copied(), false);
            }
            // …then bit-reversed scattered writes of the destination.
            let dst_pages: Vec<GlobalPage> = (chunk_start..end)
                .map(|p| dst.page(bit_reverse(p, bits)))
                .collect();
            for warp in dst_pages.chunks(WARP_SIZE) {
                bt.push_step(warp.iter().copied(), true);
            }
            blocks.push(bt);
        }
    };
    pass(&input, &output, &mut blocks);
    if params.inverse {
        pass(&output, &input, &mut blocks);
    }

    WorkloadTrace {
        name: "cufft".into(),
        footprint_pages: 2 * pages,
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::units::MIB;

    fn small() -> CufftParams {
        CufftParams {
            bytes: 4 * MIB,
            inverse: true,
            pages_per_block: 64,
        }
    }

    #[test]
    fn bit_reverse_is_a_permutation() {
        let n = 1024u64;
        let mut seen: Vec<u64> = (0..n).map(|i| bit_reverse(i, 10)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
        assert_eq!(bit_reverse(1, 10), 512);
    }

    #[test]
    fn forward_and_inverse_passes() {
        let mut space = ManagedSpace::new();
        let t = generate(&small(), &mut space);
        // 1024 pages, 64 per block, 2 passes -> 32 blocks.
        assert_eq!(t.blocks.len(), 32);
        assert_eq!(t.footprint_pages, 2048);
        // Forward-only halves the block count.
        let mut space = ManagedSpace::new();
        let fwd = generate(
            &CufftParams {
                inverse: false,
                ..small()
            },
            &mut space,
        );
        assert_eq!(fwd.blocks.len(), 16);
    }

    #[test]
    fn reads_sequential_writes_scattered() {
        let mut space = ManagedSpace::new();
        let t = generate(&small(), &mut space);
        let bt = &t.blocks[0];
        let reads: Vec<u64> = (0..bt.num_steps())
            .flat_map(|s| {
                bt.step(s)
                    .filter(|(_, w)| !w)
                    .map(|(p, _)| p.0)
                    .collect::<Vec<_>>()
            })
            .collect();
        let writes: Vec<u64> = (0..bt.num_steps())
            .flat_map(|s| {
                bt.step(s)
                    .filter(|(_, w)| *w)
                    .map(|(p, _)| p.0)
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut sorted_reads = reads.clone();
        sorted_reads.sort_unstable();
        assert_eq!(sorted_reads, (0..64).collect::<Vec<_>>(), "input streamed");
        assert_eq!(writes.len(), 64);
        let out_base = 1024;
        assert!(writes.iter().all(|&p| p >= out_base), "writes hit `out`");
        let mut sorted = writes.clone();
        sorted.sort_unstable();
        assert_ne!(writes, sorted, "scattered order");
    }

    #[test]
    fn every_page_of_both_buffers_touched() {
        let mut space = ManagedSpace::new();
        let t = generate(&small(), &mut space);
        let mut seen = vec![false; 2048];
        for b in &t.blocks {
            for s in 0..b.num_steps() {
                for (p, _) in b.step(s) {
                    seen[p.0 as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
