//! # workloads
//!
//! Page-granularity access-trace generators for the eight benchmarks the
//! paper evaluates (§III-B): the regular and random synthetic page-touch
//! kernels, cuBLAS SGEMM, GPU-STREAM triad, cuFFT (forward + inverse),
//! TeaLeaf, HPGMG, and the cuSPARSE dense→CSR + SpMM kernel.
//!
//! Each generator allocates its buffers through the managed-memory API
//! (exactly as a CUDA application calls `cudaMallocManaged`) and produces
//! a [`gpu_model::WorkloadTrace`]: the page-access pattern
//! the kernel presents *to the UVM driver*. Numerics are not simulated —
//! the paper's analysis depends only on which pages are touched, in what
//! order, by which concurrent blocks (see DESIGN.md's substitution table).

#![warn(missing_docs)]

pub mod common;
pub mod cufft;
pub mod cusparse;
pub mod hpgmg;
pub mod random;
pub mod regular;
pub mod sgemm;
pub mod stream;
pub mod tealeaf;

use gpu_model::WorkloadTrace;
use serde::{Deserialize, Serialize};
use sim_engine::units::PAGE_SIZE;
use sim_engine::SimRng;
use uvm_driver::ManagedSpace;

pub use cufft::CufftParams;
pub use cusparse::CusparseParams;
pub use hpgmg::HpgmgParams;
pub use random::RandomParams;
pub use regular::RegularParams;
pub use sgemm::SgemmParams;
pub use stream::StreamParams;
pub use tealeaf::TealeafParams;

/// The eight benchmark kinds of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Regular page-touch kernel.
    Regular,
    /// Random (unique-page) page-touch kernel.
    Random,
    /// cuBLAS-style tiled SGEMM.
    Sgemm,
    /// GPU-STREAM triad.
    Stream,
    /// cuFFT forward + inverse.
    Cufft,
    /// TeaLeaf heat-conduction solver.
    Tealeaf,
    /// HPGMG geometric multigrid.
    Hpgmg,
    /// cuSPARSE dense→CSR + SpMM.
    Cusparse,
}

impl WorkloadKind {
    /// All kinds, in the paper's Table I order.
    pub const ALL: [WorkloadKind; 8] = [
        WorkloadKind::Regular,
        WorkloadKind::Random,
        WorkloadKind::Sgemm,
        WorkloadKind::Stream,
        WorkloadKind::Cufft,
        WorkloadKind::Tealeaf,
        WorkloadKind::Hpgmg,
        WorkloadKind::Cusparse,
    ];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Regular => "regular",
            WorkloadKind::Random => "random",
            WorkloadKind::Sgemm => "sgemm",
            WorkloadKind::Stream => "stream",
            WorkloadKind::Cufft => "cufft",
            WorkloadKind::Tealeaf => "tealeaf",
            WorkloadKind::Hpgmg => "hpgmg",
            WorkloadKind::Cusparse => "cusparse",
        }
    }
}

/// A fully parameterised workload, ready to generate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// Regular page-touch.
    Regular(RegularParams),
    /// Random page-touch.
    Random(RandomParams),
    /// Tiled SGEMM.
    Sgemm(SgemmParams),
    /// STREAM triad.
    Stream(StreamParams),
    /// FFT forward + inverse.
    Cufft(CufftParams),
    /// TeaLeaf solver.
    Tealeaf(TealeafParams),
    /// Multigrid V-cycles.
    Hpgmg(HpgmgParams),
    /// Sparse conversion + SpMM.
    Cusparse(CusparseParams),
}

fn round_down(v: u64, multiple: u64) -> u64 {
    (v / multiple).max(1) * multiple
}

impl Workload {
    /// The workload's kind.
    pub fn kind(&self) -> WorkloadKind {
        match self {
            Workload::Regular(_) => WorkloadKind::Regular,
            Workload::Random(_) => WorkloadKind::Random,
            Workload::Sgemm(_) => WorkloadKind::Sgemm,
            Workload::Stream(_) => WorkloadKind::Stream,
            Workload::Cufft(_) => WorkloadKind::Cufft,
            Workload::Tealeaf(_) => WorkloadKind::Tealeaf,
            Workload::Hpgmg(_) => WorkloadKind::Hpgmg,
            Workload::Cusparse(_) => WorkloadKind::Cusparse,
        }
    }

    /// Table label.
    pub fn name(&self) -> &'static str {
        self.kind().label()
    }

    /// Total managed bytes the workload will allocate.
    pub fn footprint_bytes(&self) -> u64 {
        match self {
            Workload::Regular(p) => p.bytes,
            Workload::Random(p) => p.bytes,
            Workload::Sgemm(p) => p.footprint_bytes(),
            Workload::Stream(p) => 3 * p.bytes_per_vector,
            Workload::Cufft(p) => 2 * p.bytes.div_ceil(PAGE_SIZE).next_power_of_two() * PAGE_SIZE,
            Workload::Tealeaf(p) => p.footprint_bytes(),
            Workload::Hpgmg(p) => p.footprint_bytes(),
            Workload::Cusparse(p) => p.footprint_bytes(),
        }
    }

    /// Size a workload of `kind` to approximately `bytes` of managed
    /// footprint (problem dimensions are rounded to tile/power-of-two
    /// constraints, so the realised footprint can deviate slightly;
    /// consult [`footprint_bytes`](Self::footprint_bytes) for the truth).
    pub fn with_footprint(kind: WorkloadKind, bytes: u64) -> Workload {
        match kind {
            WorkloadKind::Regular => Workload::Regular(RegularParams {
                bytes,
                ..RegularParams::default()
            }),
            WorkloadKind::Random => Workload::Random(RandomParams {
                bytes,
                ..RandomParams::default()
            }),
            WorkloadKind::Sgemm => {
                // 3 * 4 * n^2 = bytes.
                let tile = 256;
                let n = round_down((bytes as f64 / 12.0).sqrt() as u64, tile) as usize;
                Workload::Sgemm(SgemmParams {
                    n,
                    tile: tile as usize,
                    ..SgemmParams::default()
                })
            }
            WorkloadKind::Stream => Workload::Stream(StreamParams {
                bytes_per_vector: bytes / 3,
            }),
            WorkloadKind::Cufft => {
                // Two buffers, each a power-of-two page count.
                let pages = ((bytes / 2) / PAGE_SIZE).max(1);
                let pages = if pages.is_power_of_two() {
                    pages
                } else {
                    pages.next_power_of_two() / 2
                };
                Workload::Cufft(CufftParams {
                    bytes: pages * PAGE_SIZE,
                    ..CufftParams::default()
                })
            }
            WorkloadKind::Tealeaf => {
                let arrays = 5u64;
                let n =
                    round_down((bytes as f64 / (arrays as f64 * 8.0)).sqrt() as u64, 256) as usize;
                Workload::Tealeaf(TealeafParams {
                    n,
                    arrays: arrays as usize,
                    tile: 128,
                    ..TealeafParams::default()
                })
            }
            WorkloadKind::Hpgmg => {
                // sum of levels ~ (4/3) * 8 n^2.
                let n = round_down((bytes as f64 * 3.0 / 32.0).sqrt() as u64, 256) as usize;
                Workload::Hpgmg(HpgmgParams {
                    n,
                    ..HpgmgParams::default()
                })
            }
            WorkloadKind::Cusparse => {
                // 3 dense (12 n^2) + csr (~0.8 n^2 at 10%).
                let n = round_down((bytes as f64 / 12.8).sqrt() as u64, 128) as usize;
                Workload::Cusparse(CusparseParams {
                    n,
                    ..CusparseParams::default()
                })
            }
        }
    }

    /// Allocate the workload's buffers in `space` and build its trace.
    pub fn generate(&self, space: &mut ManagedSpace, rng: &mut SimRng) -> WorkloadTrace {
        match self {
            Workload::Regular(p) => regular::generate(p, space),
            Workload::Random(p) => random::generate(p, space, rng),
            Workload::Sgemm(p) => sgemm::generate(p, space),
            Workload::Stream(p) => stream::generate(p, space),
            Workload::Cufft(p) => cufft::generate(p, space),
            Workload::Tealeaf(p) => tealeaf::generate(p, space),
            Workload::Hpgmg(p) => hpgmg::generate(p, space, rng),
            Workload::Cusparse(p) => cusparse::generate(p, space, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::units::{GIB, MIB};

    #[test]
    fn with_footprint_hits_target_within_tolerance() {
        for kind in WorkloadKind::ALL {
            let target = GIB;
            let w = Workload::with_footprint(kind, target);
            let got = w.footprint_bytes() as f64 / target as f64;
            assert!(
                (0.4..1.6).contains(&got),
                "{}: footprint ratio {got:.2} out of tolerance",
                w.name()
            );
        }
    }

    #[test]
    fn footprint_matches_generated_allocations() {
        for kind in WorkloadKind::ALL {
            let w = Workload::with_footprint(kind, 64 * MIB);
            let mut space = ManagedSpace::new();
            let mut rng = SimRng::from_seed(5);
            let t = w.generate(&mut space, &mut rng);
            let allocated: u64 = space.ranges().iter().map(|r| r.num_pages).sum();
            assert_eq!(
                t.footprint_pages,
                allocated,
                "{}: trace footprint vs allocations",
                w.name()
            );
            let declared = w.footprint_bytes().div_ceil(PAGE_SIZE);
            let ratio = allocated as f64 / declared as f64;
            assert!(
                (0.95..1.05).contains(&ratio),
                "{}: declared {declared} vs allocated {allocated}",
                w.name()
            );
        }
    }

    #[test]
    fn all_kinds_generate_nonempty_traces() {
        for kind in WorkloadKind::ALL {
            let w = Workload::with_footprint(kind, 64 * MIB);
            let mut space = ManagedSpace::new();
            let mut rng = SimRng::from_seed(5);
            let t = w.generate(&mut space, &mut rng);
            assert!(!t.blocks.is_empty(), "{}", w.name());
            assert!(t.total_accesses() > 0, "{}", w.name());
            assert_eq!(t.name, w.name());
        }
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<&str> = WorkloadKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 8);
    }
}
