//! HPGMG-style geometric multigrid V-cycles.
//!
//! A hierarchy of 2-D grids, each ¼ the size of the previous. Each
//! V-cycle smooths on the fine level (tiled sweeps), restricts downwards
//! (read fine / write coarse), smooths on progressively smaller levels,
//! then prolongates back up. The paper's Fig. 7 shows the resulting
//! pattern: long sequential bands over the fine grids punctuated by
//! random-looking bursts on the small coarse levels, and Table I shows the
//! lowest fault coverage of the suite (64 %).

use crate::common::{cost_of_bytes, WARP_SIZE};
use gpu_model::{BlockTrace, GlobalPage, WorkloadTrace};
use serde::{Deserialize, Serialize};
use sim_engine::units::PAGE_SIZE;
use sim_engine::SimRng;
use uvm_driver::{ManagedSpace, VaRange};

/// Parameters of the multigrid workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HpgmgParams {
    /// Fine-grid edge (cells); grids are n×n f64, halving per level.
    pub n: usize,
    /// Number of multigrid levels.
    pub levels: usize,
    /// Number of V-cycles.
    pub vcycles: usize,
    /// Pages per thread block in the sweeps.
    pub pages_per_block: usize,
}

impl Default for HpgmgParams {
    fn default() -> Self {
        HpgmgParams {
            n: 4096,
            levels: 4,
            vcycles: 2,
            pages_per_block: 64,
        }
    }
}

impl HpgmgParams {
    /// Grid edge at `level`.
    fn edge(&self, level: usize) -> usize {
        (self.n >> level).max(32)
    }

    /// Bytes of the grid at `level`.
    fn level_bytes(&self, level: usize) -> u64 {
        let e = self.edge(level) as u64;
        8 * e * e
    }

    /// Total managed footprint across levels.
    pub fn footprint_bytes(&self) -> u64 {
        (0..self.levels).map(|l| self.level_bytes(l)).sum()
    }
}

/// Sequential sweep over a level's pages (a smoother pass).
fn sweep(range: &VaRange, pages_per_block: usize, write: bool, out: &mut Vec<BlockTrace>) {
    let step_cost = cost_of_bytes((WARP_SIZE as u64 * PAGE_SIZE) as f64);
    for chunk_start in (0..range.num_pages).step_by(pages_per_block) {
        let end = (chunk_start + pages_per_block as u64).min(range.num_pages);
        let mut bt = BlockTrace::new(step_cost);
        let pages: Vec<GlobalPage> = (chunk_start..end).map(|p| range.page(p)).collect();
        for warp in pages.chunks(WARP_SIZE) {
            bt.push_step(warp.iter().copied(), write);
        }
        out.push(bt);
    }
}

/// Inter-level transfer: read `src` sequentially, write a random-looking
/// scatter of `dst` pages (boundary/aggregation indirection on the small
/// coarse grids).
fn transfer(
    src: &VaRange,
    dst: &VaRange,
    pages_per_block: usize,
    rng: &mut SimRng,
    out: &mut Vec<BlockTrace>,
) {
    let step_cost = cost_of_bytes((WARP_SIZE as u64 * PAGE_SIZE) as f64);
    let mut dst_pages: Vec<u64> = (0..dst.num_pages).collect();
    rng.shuffle(&mut dst_pages);
    let ratio = (src.num_pages as f64 / dst.num_pages as f64).max(1.0);
    for chunk_start in (0..src.num_pages).step_by(pages_per_block) {
        let end = (chunk_start + pages_per_block as u64).min(src.num_pages);
        let mut bt = BlockTrace::new(step_cost);
        let pages: Vec<GlobalPage> = (chunk_start..end).map(|p| src.page(p)).collect();
        for warp in pages.chunks(WARP_SIZE) {
            bt.push_step(warp.iter().copied(), false);
        }
        // The corresponding coarse pages (scattered), ~1 per `ratio`.
        let d0 = (chunk_start as f64 / ratio) as u64;
        let d1 = ((end as f64 / ratio) as u64).max(d0 + 1).min(dst.num_pages);
        let coarse: Vec<GlobalPage> = (d0..d1).map(|i| dst.page(dst_pages[i as usize])).collect();
        for warp in coarse.chunks(WARP_SIZE) {
            bt.push_step(warp.iter().copied(), true);
        }
        out.push(bt);
    }
}

/// Generate the multigrid trace, allocating one grid per level in `space`.
pub fn generate(params: &HpgmgParams, space: &mut ManagedSpace, rng: &mut SimRng) -> WorkloadTrace {
    assert!(params.levels >= 1 && params.vcycles >= 1);
    let grids: Vec<VaRange> = (0..params.levels)
        .map(|l| space.alloc(params.level_bytes(l), format!("level{l}")))
        .collect();

    let mut blocks = Vec::new();
    for _cycle in 0..params.vcycles {
        // Down-stroke: smooth, then restrict to the next-coarser level.
        for l in 0..params.levels - 1 {
            sweep(&grids[l], params.pages_per_block, true, &mut blocks);
            transfer(
                &grids[l],
                &grids[l + 1],
                params.pages_per_block,
                rng,
                &mut blocks,
            );
        }
        // Coarsest solve.
        sweep(
            &grids[params.levels - 1],
            params.pages_per_block,
            true,
            &mut blocks,
        );
        // Up-stroke: prolongate, then smooth.
        for l in (0..params.levels - 1).rev() {
            transfer(
                &grids[l + 1],
                &grids[l],
                params.pages_per_block,
                rng,
                &mut blocks,
            );
            sweep(&grids[l], params.pages_per_block, true, &mut blocks);
        }
    }

    WorkloadTrace {
        name: "hpgmg".into(),
        footprint_pages: grids.iter().map(|g| g.num_pages).sum(),
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HpgmgParams {
        HpgmgParams {
            n: 512,
            levels: 3,
            vcycles: 1,
            pages_per_block: 32,
        }
    }

    #[test]
    fn allocates_halving_levels() {
        let mut space = ManagedSpace::new();
        let mut rng = SimRng::from_seed(1);
        let t = generate(&small(), &mut space, &mut rng);
        assert_eq!(space.ranges().len(), 3);
        let p: Vec<u64> = space.ranges().iter().map(|r| r.num_pages).collect();
        assert_eq!(p, vec![512, 128, 32]); // 512² , 256², 128² f64
        assert_eq!(t.footprint_pages, 512 + 128 + 32);
    }

    #[test]
    fn touches_every_level() {
        let mut space = ManagedSpace::new();
        let mut rng = SimRng::from_seed(1);
        let t = generate(&small(), &mut space, &mut rng);
        let mut seen = vec![false; space.num_blocks() * 512];
        for b in &t.blocks {
            for s in 0..b.num_steps() {
                for (p, _) in b.step(s) {
                    seen[p.0 as usize] = true;
                }
            }
        }
        // Every valid page of every level is touched at least once.
        for r in space.ranges() {
            for p in r.start_page..r.end_page() {
                assert!(seen[p as usize], "page {p} untouched");
            }
        }
    }

    #[test]
    fn vcycles_scale_block_count() {
        let mk = |vcycles| {
            let mut space = ManagedSpace::new();
            let mut rng = SimRng::from_seed(1);
            generate(&HpgmgParams { vcycles, ..small() }, &mut space, &mut rng)
                .blocks
                .len()
        };
        assert_eq!(mk(2), 2 * mk(1));
    }

    #[test]
    fn coarse_writes_are_scattered() {
        let mut space = ManagedSpace::new();
        let mut rng = SimRng::from_seed(1);
        let t = generate(&small(), &mut space, &mut rng);
        // Collect the write targets in level 1 from restrict blocks.
        let l1 = &space.ranges()[1];
        let mut writes: Vec<u64> = Vec::new();
        for b in &t.blocks {
            for s in 0..b.num_steps() {
                for (p, w) in b.step(s) {
                    if w && (l1.start_page..l1.end_page()).contains(&p.0) {
                        writes.push(p.0);
                    }
                }
            }
        }
        let mut sorted = writes.clone();
        sorted.sort_unstable();
        assert!(!writes.is_empty());
        assert_ne!(writes, sorted, "restriction writes are scattered");
    }
}
