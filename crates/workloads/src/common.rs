//! Shared helpers for workload trace generation: device rate constants,
//! step-cost computation, and block/warp chunking.

use gpu_model::{BlockTrace, GlobalPage};
use sim_engine::SimDuration;

/// Aggregate FP32 rate of the modelled GPU (Titan V ≈ 14 TFLOP/s).
pub const GPU_FLOPS: f64 = 14.0e12;

/// Effective device-memory bandwidth (Titan V HBM2 ≈ 650 GB/s).
pub const GPU_MEM_BW: f64 = 650.0e9;

/// Threads per warp; a warp's concurrent accesses form one trace step.
pub const WARP_SIZE: usize = 32;

/// Wall-time of `flops` of arithmetic at ideal whole-GPU utilisation.
pub fn cost_of_flops(flops: f64) -> SimDuration {
    debug_assert!(flops >= 0.0);
    SimDuration::from_nanos((flops / GPU_FLOPS * 1e9).round() as u64)
}

/// Wall-time to stream `bytes` through device memory (bandwidth-bound
/// kernels).
pub fn cost_of_bytes(bytes: f64) -> SimDuration {
    debug_assert!(bytes >= 0.0);
    SimDuration::from_nanos((bytes / GPU_MEM_BW * 1e9).round() as u64)
}

/// Chunk a flat page list into thread blocks of warp-granularity steps:
/// every [`WARP_SIZE`] consecutive pages form one step (a warp's
/// concurrent accesses), and `warps_per_block` steps form one block.
pub fn blocks_of_pages(
    pages: &[GlobalPage],
    warps_per_block: usize,
    step_cost: SimDuration,
    write: bool,
) -> Vec<BlockTrace> {
    assert!(warps_per_block > 0);
    let pages_per_block = warps_per_block * WARP_SIZE;
    let mut out = Vec::with_capacity(pages.len().div_ceil(pages_per_block));
    for chunk in pages.chunks(pages_per_block) {
        let mut bt = BlockTrace::new(step_cost);
        for warp in chunk.chunks(WARP_SIZE) {
            bt.push_step(warp.iter().copied(), write);
        }
        out.push(bt);
    }
    out
}

/// Reorder a block's pages into warp-concurrent issue order.
///
/// A thread block's warps all issue their loads concurrently, so the
/// fault stream the driver sees from one block is *transposed*: first
/// each warp's page 0, then each warp's page 1, … . For kernels whose
/// warps cover consecutive page runs this scatters faults across the
/// block's whole span (one per 32-page run per cycle) — which is what
/// makes the density prefetcher effective on them (paper §IV-C).
pub fn warp_interleave(pages: &mut [GlobalPage]) {
    let n = pages.len();
    if n <= WARP_SIZE {
        return;
    }
    let warps = n.div_ceil(WARP_SIZE);
    let mut out = Vec::with_capacity(n);
    for j in 0..WARP_SIZE {
        for w in 0..warps {
            let idx = w * WARP_SIZE + j;
            if idx < n {
                out.push(pages[idx]);
            }
        }
    }
    pages.copy_from_slice(&out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_cost_scales() {
        assert_eq!(cost_of_flops(GPU_FLOPS), SimDuration::from_secs(1));
        assert_eq!(cost_of_flops(0.0), SimDuration::ZERO);
    }

    #[test]
    fn byte_cost_scales() {
        assert_eq!(cost_of_bytes(GPU_MEM_BW), SimDuration::from_secs(1));
    }

    #[test]
    fn chunking_produces_warp_steps() {
        let pages: Vec<GlobalPage> = (0..100).map(GlobalPage).collect();
        let blocks = blocks_of_pages(&pages, 2, SimDuration::ZERO, false);
        // 100 pages, 64 per block -> 2 blocks (64 + 36).
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].num_steps(), 2);
        assert_eq!(blocks[0].num_accesses(), 64);
        assert_eq!(blocks[1].num_steps(), 2); // 32 + 4
        assert_eq!(blocks[1].num_accesses(), 36);
        let total: usize = blocks.iter().map(|b| b.num_accesses()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn warp_interleave_transposes() {
        let mut pages: Vec<GlobalPage> = (0..64).map(GlobalPage).collect();
        warp_interleave(&mut pages);
        // Two warps: cycle j yields page j of warp 0 then page j of warp 1.
        assert_eq!(pages[0], GlobalPage(0));
        assert_eq!(pages[1], GlobalPage(32));
        assert_eq!(pages[2], GlobalPage(1));
        assert_eq!(pages[3], GlobalPage(33));
        let mut sorted: Vec<u64> = pages.iter().map(|p| p.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>(), "permutation");
    }

    #[test]
    fn warp_interleave_small_input_unchanged() {
        let mut pages: Vec<GlobalPage> = (0..20).map(GlobalPage).collect();
        warp_interleave(&mut pages);
        assert_eq!(pages, (0..20).map(GlobalPage).collect::<Vec<_>>());
    }

    #[test]
    fn warp_interleave_ragged_tail() {
        let mut pages: Vec<GlobalPage> = (0..70).map(GlobalPage).collect();
        warp_interleave(&mut pages);
        let mut sorted: Vec<u64> = pages.iter().map(|p| p.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..70).collect::<Vec<_>>());
    }

    #[test]
    fn chunking_preserves_order() {
        let pages: Vec<GlobalPage> = (0..64).map(GlobalPage).collect();
        let blocks = blocks_of_pages(&pages, 1, SimDuration::ZERO, true);
        let first_step: Vec<_> = blocks[0].step(0).collect();
        assert_eq!(first_step[0], (GlobalPage(0), true));
        assert_eq!(first_step[31], (GlobalPage(31), true));
    }
}
