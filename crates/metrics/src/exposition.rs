//! Prometheus-style text exposition of end-of-run metrics.
//!
//! The repro harness publishes each sweep point's final counters and
//! gauges in the [text exposition format] so the artefacts are directly
//! comparable across workloads and scrapeable by standard tooling:
//!
//! ```text
//! # HELP uvm_faults_fetched_total Fault entries fetched from the hardware buffer.
//! # TYPE uvm_faults_fetched_total counter
//! uvm_faults_fetched_total{workload="regular",ratio="1.25",policy="density"} 81920
//! ```
//!
//! [`Exposition`] assembles families (declared once, samples per label
//! set, in insertion order — deterministic output); [`validate`] parses a
//! rendered blob back and checks the format invariants (name and label
//! legality, TYPE-before-sample, single declaration per family,
//! non-negative counters), powering `repro check-metrics` and the format
//! unit tests.
//!
//! [text exposition format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use std::fmt::Write;

/// Prometheus metric kinds used here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Cumulative, non-decreasing.
    Counter,
    /// Point-in-time value.
    Gauge,
}

impl MetricKind {
    /// The TYPE keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// A metric family's identity: name, kind, and help text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricDef {
    /// Metric name (must satisfy [`valid_metric_name`]).
    pub name: &'static str,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// One-line HELP text.
    pub help: &'static str,
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*` — the Prometheus metric-name charset.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `[a-zA-Z_][a-zA-Z0-9_]*` — the label-name charset (no colons).
pub fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escape a label value per the exposition format (`\\`, `\"`, `\n`).
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

struct Family {
    def: MetricDef,
    /// (rendered label block, value) per sample, in insertion order.
    samples: Vec<(String, f64)>,
}

/// An exposition under assembly: families keyed by name, samples appended
/// per label set. `push` order fixes the output order, so renders are
/// deterministic.
#[derive(Default)]
pub struct Exposition {
    families: Vec<Family>,
}

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one sample of `def` with the given labels. Panics on an
    /// illegal metric/label name or a negative counter value — those are
    /// programming errors in the registry, not data.
    pub fn push(&mut self, def: &MetricDef, labels: &[(&str, &str)], value: f64) {
        assert!(valid_metric_name(def.name), "illegal metric name {}", def.name);
        assert!(
            def.kind != MetricKind::Counter || value >= 0.0,
            "negative counter {}",
            def.name
        );
        let mut block = String::new();
        if !labels.is_empty() {
            block.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                assert!(valid_label_name(k), "illegal label name {k}");
                if i > 0 {
                    block.push(',');
                }
                let _ = write!(block, "{k}=\"{}\"", escape_label_value(v));
            }
            block.push('}');
        }
        match self.families.iter_mut().find(|f| f.def.name == def.name) {
            Some(f) => {
                assert_eq!(f.def.kind, def.kind, "kind clash for {}", def.name);
                f.samples.push((block, value));
            }
            None => self.families.push(Family {
                def: *def,
                samples: vec![(block, value)],
            }),
        }
    }

    /// Render the text exposition (HELP + TYPE once per family, then its
    /// samples). Integral values render without a decimal point.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            let _ = writeln!(out, "# HELP {} {}", f.def.name, f.def.help);
            let _ = writeln!(out, "# TYPE {} {}", f.def.name, f.def.kind.as_str());
            for (labels, value) in &f.samples {
                if value.fract() == 0.0 && value.abs() < 9.007_199_254_740_992e15 {
                    let _ = writeln!(out, "{}{} {}", f.def.name, labels, *value as i64);
                } else {
                    let _ = writeln!(out, "{}{} {}", f.def.name, labels, value);
                }
            }
        }
        out
    }
}

/// Statistics from a successful [`validate`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExpositionStats {
    /// Metric families declared.
    pub families: usize,
    /// Sample lines parsed.
    pub samples: usize,
}

/// Split a sample line `name{labels} value` into its parts; labels block
/// may be absent. Returns `(name, labels_or_empty, value_text)`.
fn split_sample(line: &str) -> Result<(&str, &str, &str), String> {
    let (head, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("sample line without value: `{line}`"))?;
    if let Some(open) = head.find('{') {
        if !head.ends_with('}') {
            return Err(format!("unterminated label block: `{line}`"));
        }
        Ok((&head[..open], &head[open + 1..head.len() - 1], value))
    } else {
        Ok((head, "", value))
    }
}

/// Check one label block body (`k="v",k2="v2"`), honouring escapes.
fn check_labels(body: &str, line: &str) -> Result<(), String> {
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without `=` in `{line}`"))?;
        let name = &rest[..eq];
        if !valid_label_name(name) {
            return Err(format!("illegal label name `{name}` in `{line}`"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("unquoted label value in `{line}`"));
        }
        // Scan the quoted value, skipping escaped characters.
        let bytes = rest.as_bytes();
        let mut i = 1;
        loop {
            match bytes.get(i) {
                None => return Err(format!("unterminated label value in `{line}`")),
                Some(b'\\') => i += 2,
                Some(b'"') => break,
                Some(_) => i += 1,
            }
        }
        rest = &rest[i + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.is_empty() {
            return Err(format!("junk after label value in `{line}`"));
        }
    }
    Ok(())
}

/// Parse a rendered exposition and check the format invariants. Returns
/// family/sample counts on success, the first violation otherwise.
pub fn validate(text: &str) -> Result<ExpositionStats, String> {
    // name -> (kind, has_help, sample_count)
    let mut families: Vec<(String, String, bool, usize)> = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if !valid_metric_name(name) {
                return Err(format!("HELP for illegal metric name `{name}`"));
            }
            match families.iter_mut().find(|(n, ..)| n == name) {
                Some((_, _, has_help, _)) => {
                    if *has_help {
                        return Err(format!("duplicate HELP for `{name}`"));
                    }
                    *has_help = true;
                }
                None => families.push((name.to_string(), String::new(), true, 0)),
            }
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().unwrap_or("");
            let kind = it.next().unwrap_or("");
            if !valid_metric_name(name) {
                return Err(format!("TYPE for illegal metric name `{name}`"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("unknown TYPE `{kind}` for `{name}`"));
            }
            match families.iter_mut().find(|(n, ..)| n == name) {
                Some((_, k, _, samples)) => {
                    if !k.is_empty() {
                        return Err(format!("duplicate TYPE for `{name}`"));
                    }
                    if *samples > 0 {
                        return Err(format!("TYPE for `{name}` after its samples"));
                    }
                    *k = kind.to_string();
                }
                None => families.push((name.to_string(), kind.to_string(), false, 0)),
            }
        } else if line.starts_with('#') {
            // Free-form comment: legal, ignored.
        } else {
            let (name, labels, value) = split_sample(line)?;
            if !valid_metric_name(name) {
                return Err(format!("sample for illegal metric name `{name}`"));
            }
            check_labels(labels, line)?;
            let v: f64 = value
                .parse()
                .map_err(|_| format!("unparseable value `{value}` in `{line}`"))?;
            let fam = families
                .iter_mut()
                .find(|(n, ..)| n == name)
                .ok_or_else(|| format!("sample for undeclared metric `{name}`"))?;
            if fam.1.is_empty() {
                return Err(format!("sample for `{name}` before its TYPE"));
            }
            if fam.1 == "counter" && !(v >= 0.0) {
                return Err(format!("negative counter sample in `{line}`"));
            }
            fam.3 += 1;
        }
    }
    for (name, kind, _, samples) in &families {
        if kind.is_empty() {
            return Err(format!("metric `{name}` has HELP but no TYPE"));
        }
        if *samples == 0 {
            return Err(format!("metric `{name}` declared but has no samples"));
        }
    }
    Ok(ExpositionStats {
        families: families.len(),
        samples: families.iter().map(|f| f.3).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAULTS: MetricDef = MetricDef {
        name: "uvm_faults_fetched_total",
        kind: MetricKind::Counter,
        help: "Fault entries fetched from the hardware buffer.",
    };
    const RESIDENT: MetricDef = MetricDef {
        name: "uvm_resident_pages",
        kind: MetricKind::Gauge,
        help: "Pages currently backed by GPU memory.",
    };

    #[test]
    fn name_legality() {
        assert!(valid_metric_name("uvm_faults_total"));
        assert!(valid_metric_name("_x"));
        assert!(valid_metric_name("ns:metric"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("9lives"));
        assert!(!valid_metric_name("has-dash"));
        assert!(!valid_metric_name("has space"));
        assert!(valid_label_name("workload"));
        assert!(!valid_label_name("ns:label"));
        assert!(!valid_label_name("1st"));
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_label_value(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label_value("x\ny"), "x\\ny");
    }

    #[test]
    fn render_declares_each_family_once() {
        let mut e = Exposition::new();
        e.push(&FAULTS, &[("workload", "regular"), ("ratio", "0.50")], 100.0);
        e.push(&FAULTS, &[("workload", "random"), ("ratio", "1.25")], 250.0);
        e.push(&RESIDENT, &[("workload", "regular")], 4096.0);
        let text = e.render();
        assert_eq!(text.matches("# TYPE uvm_faults_fetched_total").count(), 1);
        assert_eq!(text.matches("# HELP uvm_faults_fetched_total").count(), 1);
        assert!(text.contains(
            "uvm_faults_fetched_total{workload=\"regular\",ratio=\"0.50\"} 100"
        ));
        assert!(text.contains("uvm_resident_pages{workload=\"regular\"} 4096"));
        let stats = validate(&text).expect("self-rendered exposition validates");
        assert_eq!(stats.families, 2);
        assert_eq!(stats.samples, 3);
    }

    #[test]
    fn render_escapes_label_values() {
        let mut e = Exposition::new();
        e.push(&RESIDENT, &[("workload", "odd\"name")], 1.0);
        let text = e.render();
        assert!(text.contains(r#"workload="odd\"name""#));
        validate(&text).expect("escaped value still validates");
    }

    #[test]
    #[should_panic(expected = "negative counter")]
    fn negative_counter_rejected_at_push() {
        let mut e = Exposition::new();
        e.push(&FAULTS, &[], -1.0);
    }

    #[test]
    fn validate_rejects_format_violations() {
        // Sample before TYPE.
        let bad = "# HELP m help\nm 1\n# TYPE m counter\n";
        assert!(validate(bad).unwrap_err().contains("before its TYPE"));
        // Undeclared metric.
        assert!(validate("m 1\n").unwrap_err().contains("undeclared"));
        // Duplicate TYPE.
        let dup = "# TYPE m counter\n# TYPE m counter\nm 1\n";
        assert!(validate(dup).unwrap_err().contains("duplicate TYPE"));
        // Negative counter sample.
        let neg = "# HELP m h\n# TYPE m counter\nm -5\n";
        assert!(validate(neg).unwrap_err().contains("negative counter"));
        // Illegal label name.
        let lbl = "# HELP m h\n# TYPE m gauge\nm{9x=\"v\"} 1\n";
        assert!(validate(lbl).unwrap_err().contains("illegal label name"));
        // Unparseable value.
        let val = "# HELP m h\n# TYPE m gauge\nm{} x\n";
        assert!(validate(val).is_err());
        // Declared but sample-less family.
        let empty = "# HELP m h\n# TYPE m gauge\n";
        assert!(validate(empty).unwrap_err().contains("no samples"));
    }

    #[test]
    fn gauge_may_be_negative_and_fractional() {
        let text = "# HELP g h\n# TYPE g gauge\ng -1.5\n";
        let stats = validate(text).expect("negative gauge is fine");
        assert_eq!(stats.samples, 1);
    }
}
