//! Per-category virtual-time accounting.
//!
//! The categories follow the paper's instrumentation taxonomy exactly:
//!
//! * **Preprocess** — fault fetch from the buffer, polling, bookkeeping,
//!   sorting into VABlock bins (paper §III-C "pre/post-processing").
//! * **ServicePma / ServiceMigrate / ServiceMap** — the three service
//!   sub-categories of Fig. 4: calls into the proprietary physical memory
//!   allocator, data movement (staging + DMA + zeroing), and page-table
//!   mapping + membars.
//! * **ReplayPolicy** — issuing replays and (for flushing policies) fault
//!   buffer flushes (paper §III-E).
//! * **Eviction** — write-backs, unmapping, and fault-path restarts
//!   (paper §V-A).

use serde::{Deserialize, Serialize};
use sim_engine::SimDuration;
use std::fmt;
use std::ops::{Add, AddAssign};

/// The instrumentation categories of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Fault fetch/poll/sort (pre- and post-processing).
    Preprocess,
    /// Physical memory allocation calls (PMA Alloc Pages in Fig. 4).
    ServicePma,
    /// Data migration: staging, DMA, zeroing (Migrate Pages in Fig. 4).
    ServiceMigrate,
    /// Page mapping and membars (Map Pages in Fig. 4).
    ServiceMap,
    /// Replay-policy work: replay issue, buffer flushes.
    ReplayPolicy,
    /// Eviction work: write-back, unmap, fault-path restart.
    Eviction,
}

impl Category {
    /// All categories in presentation order.
    pub const ALL: [Category; 6] = [
        Category::Preprocess,
        Category::ServicePma,
        Category::ServiceMigrate,
        Category::ServiceMap,
        Category::ReplayPolicy,
        Category::Eviction,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Category::Preprocess => "preprocess",
            Category::ServicePma => "pma_alloc",
            Category::ServiceMigrate => "migrate",
            Category::ServiceMap => "map",
            Category::ReplayPolicy => "replay_policy",
            Category::Eviction => "eviction",
        }
    }
}

/// Accumulated virtual time per category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timers {
    preprocess: SimDuration,
    service_pma: SimDuration,
    service_migrate: SimDuration,
    service_map: SimDuration,
    replay_policy: SimDuration,
    eviction: SimDuration,
}

impl Timers {
    /// Charge `d` to `cat`.
    #[inline]
    pub fn charge(&mut self, cat: Category, d: SimDuration) {
        *self.slot(cat) += d;
    }

    fn slot(&mut self, cat: Category) -> &mut SimDuration {
        match cat {
            Category::Preprocess => &mut self.preprocess,
            Category::ServicePma => &mut self.service_pma,
            Category::ServiceMigrate => &mut self.service_migrate,
            Category::ServiceMap => &mut self.service_map,
            Category::ReplayPolicy => &mut self.replay_policy,
            Category::Eviction => &mut self.eviction,
        }
    }

    /// Time accumulated in `cat`.
    pub fn get(&self, cat: Category) -> SimDuration {
        match cat {
            Category::Preprocess => self.preprocess,
            Category::ServicePma => self.service_pma,
            Category::ServiceMigrate => self.service_migrate,
            Category::ServiceMap => self.service_map,
            Category::ReplayPolicy => self.replay_policy,
            Category::Eviction => self.eviction,
        }
    }

    /// Total *service* time: the paper's "service" category is the sum of
    /// the three sub-categories (Fig. 3 vs Fig. 4 granularity).
    pub fn service_total(&self) -> SimDuration {
        self.service_pma + self.service_migrate + self.service_map
    }

    /// Total driver time across all categories.
    pub fn total(&self) -> SimDuration {
        self.preprocess + self.service_total() + self.replay_policy + self.eviction
    }

    /// Fraction of total driver time spent in `cat` (0.0 if no time).
    pub fn fraction(&self, cat: Category) -> f64 {
        let total = self.total().as_nanos();
        if total == 0 {
            0.0
        } else {
            self.get(cat).as_nanos() as f64 / total as f64
        }
    }
}

impl Add for Timers {
    type Output = Timers;
    fn add(mut self, rhs: Timers) -> Timers {
        self += rhs;
        self
    }
}

impl AddAssign for Timers {
    fn add_assign(&mut self, rhs: Timers) {
        self.preprocess += rhs.preprocess;
        self.service_pma += rhs.service_pma;
        self.service_migrate += rhs.service_migrate;
        self.service_map += rhs.service_map;
        self.replay_policy += rhs.replay_policy;
        self.eviction += rhs.eviction;
    }
}

impl fmt::Display for Timers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for cat in Category::ALL {
            writeln!(
                f,
                "  {:<14} {:>12} ({:>5.1}%)",
                cat.label(),
                self.get(cat).to_string(),
                100.0 * self.fraction(cat)
            )?;
        }
        write!(f, "  {:<14} {:>12}", "total", self.total().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_get() {
        let mut t = Timers::default();
        t.charge(Category::Preprocess, SimDuration::from_micros(5));
        t.charge(Category::Preprocess, SimDuration::from_micros(3));
        t.charge(Category::ServiceMap, SimDuration::from_micros(2));
        assert_eq!(t.get(Category::Preprocess), SimDuration::from_micros(8));
        assert_eq!(t.get(Category::ServiceMap), SimDuration::from_micros(2));
        assert_eq!(t.get(Category::Eviction), SimDuration::ZERO);
    }

    #[test]
    fn service_total_sums_subcategories() {
        let mut t = Timers::default();
        t.charge(Category::ServicePma, SimDuration::from_micros(1));
        t.charge(Category::ServiceMigrate, SimDuration::from_micros(2));
        t.charge(Category::ServiceMap, SimDuration::from_micros(3));
        t.charge(Category::Preprocess, SimDuration::from_micros(100));
        assert_eq!(t.service_total(), SimDuration::from_micros(6));
        assert_eq!(t.total(), SimDuration::from_micros(106));
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut t = Timers::default();
        for (i, cat) in Category::ALL.iter().enumerate() {
            t.charge(*cat, SimDuration::from_micros((i + 1) as u64));
        }
        let sum: f64 = Category::ALL.iter().map(|&c| t.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_timers_have_zero_fraction() {
        let t = Timers::default();
        assert_eq!(t.fraction(Category::Preprocess), 0.0);
        assert_eq!(t.total(), SimDuration::ZERO);
    }

    #[test]
    fn add_merges() {
        let mut a = Timers::default();
        a.charge(Category::Eviction, SimDuration::from_micros(4));
        let mut b = Timers::default();
        b.charge(Category::Eviction, SimDuration::from_micros(6));
        b.charge(Category::ReplayPolicy, SimDuration::from_micros(1));
        let c = a + b;
        assert_eq!(c.get(Category::Eviction), SimDuration::from_micros(10));
        assert_eq!(c.get(Category::ReplayPolicy), SimDuration::from_micros(1));
    }
}
