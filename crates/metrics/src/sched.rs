//! Host wall-time accounting for the sweep's work-stealing point
//! scheduler: how many points ran, how many were executed by a thread
//! other than the one they were dealt to (steals), and the longest
//! single point (the straggler that bounds sweep wall time).
//!
//! Like [`phase`](crate::phase), these are *host* measurements —
//! deliberately kept out of serialized simulation results so simulated
//! output stays bit-identical across thread counts and hosts. The sweep
//! scheduler records one [`SweepSchedStats`] per sweep into the
//! process-global totals; the `repro` harness drains them per experiment
//! into `BENCH_hotpaths.json`, which is what makes the static-split vs
//! work-stealing win measurable.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// One sweep's (or experiment's) point-scheduler statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepSchedStats {
    /// Simulation points executed.
    pub points: u64,
    /// Points executed by a worker they were not dealt to — each steal is
    /// a point that would have waited behind a straggler under the static
    /// split.
    pub stolen: u64,
    /// Wall nanoseconds of the single longest point — the straggler that
    /// lower-bounds the sweep's wall time at any thread count.
    pub max_point_wall_ns: u64,
    /// Sweep worker threads (1 = serial; deques are not spun up).
    pub threads: u64,
}

impl SweepSchedStats {
    /// Merge another sweep's stats into this accumulator: counts add,
    /// the straggler and thread width take the max.
    pub fn merge(&mut self, o: &SweepSchedStats) {
        self.points += o.points;
        self.stolen += o.stolen;
        self.max_point_wall_ns = self.max_point_wall_ns.max(o.max_point_wall_ns);
        self.threads = self.threads.max(o.threads);
    }
}

static POINTS: AtomicU64 = AtomicU64::new(0);
static STOLEN: AtomicU64 = AtomicU64::new(0);
static MAX_POINT_WALL_NS: AtomicU64 = AtomicU64::new(0);
static THREADS_MAX: AtomicU64 = AtomicU64::new(0);

/// Add one sweep's stats to the process-global totals (thread-safe).
pub fn record(s: &SweepSchedStats) {
    POINTS.fetch_add(s.points, Ordering::Relaxed);
    STOLEN.fetch_add(s.stolen, Ordering::Relaxed);
    MAX_POINT_WALL_NS.fetch_max(s.max_point_wall_ns, Ordering::Relaxed);
    THREADS_MAX.fetch_max(s.threads, Ordering::Relaxed);
}

/// Drain the process-global totals, resetting them to zero. The `repro`
/// harness calls this after each experiment.
pub fn take() -> SweepSchedStats {
    SweepSchedStats {
        points: POINTS.swap(0, Ordering::Relaxed),
        stolen: STOLEN.swap(0, Ordering::Relaxed),
        max_point_wall_ns: MAX_POINT_WALL_NS.swap(0, Ordering::Relaxed),
        threads: THREADS_MAX.swap(0, Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counts_and_maxes_straggler() {
        let mut a = SweepSchedStats {
            points: 4,
            stolen: 1,
            max_point_wall_ns: 100,
            threads: 2,
        };
        let b = SweepSchedStats {
            points: 6,
            stolen: 0,
            max_point_wall_ns: 50,
            threads: 8,
        };
        a.merge(&b);
        assert_eq!(a.points, 10);
        assert_eq!(a.stolen, 1);
        assert_eq!(a.max_point_wall_ns, 100);
        assert_eq!(a.threads, 8);
    }

    // `record`/`take` touch process-global state shared with other tests
    // in this binary, so only the at-least invariant is asserted.
    #[test]
    fn record_take_roundtrip() {
        let s = SweepSchedStats {
            points: 3,
            stolen: 2,
            max_point_wall_ns: 77,
            threads: 4,
        };
        record(&s);
        let got = take();
        assert!(got.points >= 3);
        assert!(got.stolen >= 2);
        assert!(got.max_point_wall_ns >= 77);
        assert!(got.threads >= 4);
    }
}
