//! Power-of-two bucket histograms for batch-composition analysis.
//!
//! The paper's §III-D insight is that *batch composition* drives service
//! cost: a batch whose faults collapse into few VABlocks coalesces
//! allocation and DMA work; one VABlock per fault is the worst case.
//! The driver records per-batch fault counts and VABlock counts here so
//! experiments can show those distributions.

use serde::{Deserialize, Serialize};
use std::fmt;

const BUCKETS: usize = 17; // 0, 1, 2, 3-4, 5-8, ..., 16385+

/// A histogram with buckets 0, 1, 2, (2,4], (4,8], … (log2-spaced).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    match v {
        0 => 0,
        1 => 1,
        2 => 2,
        _ => {
            // (2^k, 2^(k+1)] lands in bucket k + 2 (v=3,4 -> 3; 5..8 -> 4 …).
            let k = 64 - (v - 1).leading_zeros() as usize; // ceil(log2(v))
            (k + 1).min(BUCKETS - 1)
        }
    }
}

/// Inclusive upper bound of a bucket (for display).
fn bucket_hi(b: usize) -> u64 {
    match b {
        0 => 0,
        1 => 1,
        2 => 2,
        _ => 1u64 << (b - 1),
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean observation (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Count in the bucket containing `v`.
    pub fn count_for(&self, v: u64) -> u64 {
        self.counts[bucket_of(v)]
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) as the inclusive upper bound
    /// of the bucket where the cumulative count first reaches
    /// `ceil(q * total)`. Exact for the width-1 buckets (0, 1, 2); an
    /// upper bound (within 2× of the true value) for wider buckets.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        debug_assert!(q > 0.0 && q <= 1.0, "quantile out of range");
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top bucket is open-ended — report the observed max;
                // elsewhere the observed max tightens the bucket bound.
                return if b == BUCKETS - 1 {
                    self.max
                } else {
                    bucket_hi(b).min(self.max)
                };
            }
        }
        self.max
    }

    /// Median (p50) observation bucket bound.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th-percentile observation bucket bound.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th-percentile observation bucket bound.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Iterate `(bucket_upper_bound, count)` over non-empty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (bucket_hi(b), c))
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} max={}",
            self.total,
            self.mean(),
            self.max
        )?;
        for (hi, c) in self.buckets() {
            write!(f, " ≤{hi}:{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 3);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(5), 4);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(9), 5);
        assert_eq!(bucket_of(256), 9);
        assert_eq!(bucket_of(257), 10);
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 1, 4, 256] {
            h.record(v);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.max(), 256);
        assert!((h.mean() - 52.4).abs() < 1e-9);
        assert_eq!(h.count_for(1), 2);
        assert_eq!(h.count_for(3), 1); // 4 in (2,4]
        assert_eq!(h.count_for(200), 1); // 256 in (128,256]
    }

    #[test]
    fn merge_adds() {
        let mut a = Histogram::default();
        a.record(4);
        let mut b = Histogram::default();
        b.record(4);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count_for(4), 2);
        assert_eq!(a.max(), 100);
    }

    #[test]
    fn display_and_bucket_iteration() {
        let mut h = Histogram::default();
        h.record(1);
        h.record(7);
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(buckets, vec![(1, 1), (8, 1)]);
        let s = h.to_string();
        assert!(s.contains("n=2"));
        assert!(s.contains("≤8:1"));
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::default();
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.buckets().count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn percentiles_exact_in_unit_buckets() {
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(2);
        }
        assert_eq!(h.p50(), 1);
        assert_eq!(h.percentile(0.90), 1);
        assert_eq!(h.p95(), 2);
        assert_eq!(h.p99(), 2);
        assert_eq!(h.percentile(1.0), 2);
    }

    #[test]
    fn percentiles_report_bucket_upper_bound() {
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.record(3); // bucket (2,4]
        }
        h.record(200); // bucket (128,256]
        assert_eq!(h.p50(), 4);
        assert_eq!(h.p95(), 4);
        // Rank 100 lands in the (128,256] bucket, capped at the max seen.
        assert_eq!(h.percentile(0.999), 200);
        assert_eq!(h.p99(), 4);
    }

    #[test]
    fn percentile_top_bucket_caps_at_max() {
        let mut h = Histogram::default();
        h.record(1_000_000); // beyond the last finite bucket boundary
        assert_eq!(h.p50(), 1_000_000);
        assert_eq!(h.p99(), 1_000_000);
    }
}
