//! Event counters the simulated driver maintains — the numbers behind
//! Table I (fault reduction) and Table II (SGEMM fault/eviction scaling).
//!
//! [`COUNTER_REGISTRY`] binds every counter (and the derived totals) to a
//! Prometheus-legal metric name and HELP text, so the exposition output
//! and the CSV/JSON artefacts can never drift from the struct.

use crate::exposition::{MetricDef, MetricKind};
use serde::{Deserialize, Serialize};

/// Driver-side event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Fault entries fetched from the hardware buffer (the paper's
    /// "total faults" — what instrumented drivers observe).
    pub faults_fetched: u64,
    /// Fetched entries discarded as duplicates/already-resident during
    /// pre-processing.
    pub duplicate_faults: u64,
    /// Distinct pages serviced because they faulted.
    pub pages_faulted_in: u64,
    /// Pages migrated because the prefetcher asked for them.
    pub pages_prefetched: u64,
    /// Pages zeroed on first-touch allocation (no host copy needed).
    pub pages_zeroed: u64,
    /// Fault batches processed.
    pub batches: u64,
    /// Replay notifications issued.
    pub replays: u64,
    /// Fault-buffer flushes performed by the replay policy.
    pub buffer_flushes: u64,
    /// Polling iterations on not-yet-ready fault entries.
    pub polls: u64,
    /// VABlock evictions performed.
    pub evictions: u64,
    /// Pages written back to the host during evictions (the paper's
    /// "pages evicted" in Table II counts pages requiring migration).
    pub pages_evicted_migrated: u64,
    /// Pages released during eviction without write-back (clean).
    pub pages_evicted_clean: u64,
    /// PMA allocation calls into the proprietary driver.
    pub pma_calls: u64,
    /// VABlocks visited across all batches (service bookkeeping).
    pub vablocks_serviced: u64,
    /// Pages migrated by explicit prefetch hints (`cudaMemPrefetchAsync`
    /// style), outside the fault path.
    pub pages_hint_prefetched: u64,
    /// Explicit prefetch-hint calls serviced.
    pub hint_prefetch_calls: u64,
    /// VABlocks pinned by the thrashing-mitigation extension.
    pub thrash_pins: u64,
    /// Pages migrated device→host because the CPU faulted on them.
    pub pages_migrated_to_host: u64,
    /// CPU-side fault episodes serviced (one per host access call).
    pub host_fault_calls: u64,
}

impl Counters {
    /// Total pages migrated host→device (faulted + prefetched).
    pub fn pages_migrated_h2d(&self) -> u64 {
        self.pages_faulted_in + self.pages_prefetched
    }

    /// Total pages released by evictions (dirty write-backs plus clean
    /// drops) — Table II's "# Pages Evicted".
    pub fn pages_evicted_total(&self) -> u64 {
        self.pages_evicted_migrated + self.pages_evicted_clean
    }

    /// Pages evicted per driver-observed fault — Table II's tail metric
    /// (its column satisfies `pages_evicted / faults`). Returns 0.0 when
    /// no faults were observed.
    pub fn evictions_per_fault(&self) -> f64 {
        if self.faults_fetched == 0 {
            0.0
        } else {
            self.pages_evicted_total() as f64 / self.faults_fetched as f64
        }
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, o: &Counters) {
        self.faults_fetched += o.faults_fetched;
        self.duplicate_faults += o.duplicate_faults;
        self.pages_faulted_in += o.pages_faulted_in;
        self.pages_prefetched += o.pages_prefetched;
        self.pages_zeroed += o.pages_zeroed;
        self.batches += o.batches;
        self.replays += o.replays;
        self.buffer_flushes += o.buffer_flushes;
        self.polls += o.polls;
        self.evictions += o.evictions;
        self.pages_evicted_migrated += o.pages_evicted_migrated;
        self.pages_evicted_clean += o.pages_evicted_clean;
        self.pma_calls += o.pma_calls;
        self.vablocks_serviced += o.vablocks_serviced;
        self.pages_hint_prefetched += o.pages_hint_prefetched;
        self.hint_prefetch_calls += o.hint_prefetch_calls;
        self.thrash_pins += o.thrash_pins;
        self.pages_migrated_to_host += o.pages_migrated_to_host;
        self.host_fault_calls += o.host_fault_calls;
    }
}

/// One exposition registry entry: metric identity plus the extractor
/// reading it off a [`Counters`] snapshot.
pub struct CounterMetric {
    /// Metric name/kind/help for the exposition output.
    pub def: MetricDef,
    /// Field (or derived-total) extractor.
    pub read: fn(&Counters) -> u64,
}

macro_rules! counter_metric {
    ($name:literal, $help:literal, $read:expr) => {
        CounterMetric {
            def: MetricDef {
                name: $name,
                kind: MetricKind::Counter,
                help: $help,
            },
            read: $read,
        }
    };
}

/// Every [`Counters`] field (plus the derived H2D/eviction totals) as an
/// exposition metric family. All entries are cumulative counters.
pub const COUNTER_REGISTRY: &[CounterMetric] = &[
    counter_metric!(
        "uvm_faults_fetched_total",
        "Fault entries fetched from the hardware buffer.",
        |c| c.faults_fetched
    ),
    counter_metric!(
        "uvm_duplicate_faults_total",
        "Fetched entries discarded as duplicates during pre-processing.",
        |c| c.duplicate_faults
    ),
    counter_metric!(
        "uvm_pages_faulted_in_total",
        "Distinct pages serviced because they faulted.",
        |c| c.pages_faulted_in
    ),
    counter_metric!(
        "uvm_pages_prefetched_total",
        "Pages migrated because the prefetcher asked for them.",
        |c| c.pages_prefetched
    ),
    counter_metric!(
        "uvm_pages_zeroed_total",
        "Pages zeroed on first-touch allocation.",
        |c| c.pages_zeroed
    ),
    counter_metric!("uvm_batches_total", "Fault batches processed.", |c| c.batches),
    counter_metric!("uvm_replays_total", "Replay notifications issued.", |c| c.replays),
    counter_metric!(
        "uvm_buffer_flushes_total",
        "Fault-buffer flushes performed by the replay policy.",
        |c| c.buffer_flushes
    ),
    counter_metric!(
        "uvm_polls_total",
        "Polling iterations on not-yet-ready fault entries.",
        |c| c.polls
    ),
    counter_metric!("uvm_evictions_total", "VABlock evictions performed.", |c| c.evictions),
    counter_metric!(
        "uvm_pages_evicted_migrated_total",
        "Pages written back to the host during evictions.",
        |c| c.pages_evicted_migrated
    ),
    counter_metric!(
        "uvm_pages_evicted_clean_total",
        "Pages released during eviction without write-back.",
        |c| c.pages_evicted_clean
    ),
    counter_metric!(
        "uvm_pma_calls_total",
        "PMA allocation calls into the proprietary driver.",
        |c| c.pma_calls
    ),
    counter_metric!(
        "uvm_vablocks_serviced_total",
        "VABlocks visited across all batches.",
        |c| c.vablocks_serviced
    ),
    counter_metric!(
        "uvm_pages_hint_prefetched_total",
        "Pages migrated by explicit prefetch hints outside the fault path.",
        |c| c.pages_hint_prefetched
    ),
    counter_metric!(
        "uvm_hint_prefetch_calls_total",
        "Explicit prefetch-hint calls serviced.",
        |c| c.hint_prefetch_calls
    ),
    counter_metric!(
        "uvm_thrash_pins_total",
        "VABlocks pinned by the thrashing-mitigation extension.",
        |c| c.thrash_pins
    ),
    counter_metric!(
        "uvm_pages_migrated_to_host_total",
        "Pages migrated device to host because the CPU faulted on them.",
        |c| c.pages_migrated_to_host
    ),
    counter_metric!(
        "uvm_host_fault_calls_total",
        "CPU-side fault episodes serviced.",
        |c| c.host_fault_calls
    ),
    counter_metric!(
        "uvm_pages_migrated_h2d_total",
        "Total pages migrated host to device (faulted plus prefetched).",
        |c| c.pages_migrated_h2d()
    ),
    counter_metric!(
        "uvm_pages_evicted_pages_total",
        "Total pages released by evictions (dirty plus clean).",
        |c| c.pages_evicted_total()
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_migrated_sums_fault_and_prefetch() {
        let c = Counters {
            pages_faulted_in: 10,
            pages_prefetched: 32,
            ..Counters::default()
        };
        assert_eq!(c.pages_migrated_h2d(), 42);
    }

    #[test]
    fn evictions_per_fault_handles_zero() {
        let c = Counters::default();
        assert_eq!(c.evictions_per_fault(), 0.0);
        let c = Counters {
            faults_fetched: 100,
            pages_evicted_migrated: 150,
            pages_evicted_clean: 100,
            ..Counters::default()
        };
        assert_eq!(c.pages_evicted_total(), 250);
        assert!((c.evictions_per_fault() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = Counters {
            faults_fetched: 1,
            batches: 2,
            ..Counters::default()
        };
        let b = Counters {
            faults_fetched: 10,
            evictions: 5,
            pma_calls: 3,
            ..Counters::default()
        };
        a.merge(&b);
        assert_eq!(a.faults_fetched, 11);
        assert_eq!(a.batches, 2);
        assert_eq!(a.evictions, 5);
        assert_eq!(a.pma_calls, 3);
    }

    #[test]
    fn registry_names_are_legal_unique_counters() {
        let mut seen = Vec::new();
        for m in COUNTER_REGISTRY {
            assert!(
                crate::exposition::valid_metric_name(m.def.name),
                "illegal name {}",
                m.def.name
            );
            assert!(m.def.name.starts_with("uvm_"), "unprefixed {}", m.def.name);
            assert!(m.def.name.ends_with("_total"), "counter without _total: {}", m.def.name);
            assert_eq!(m.def.kind, MetricKind::Counter);
            assert!(!m.def.help.is_empty());
            assert!(!seen.contains(&m.def.name), "duplicate {}", m.def.name);
            seen.push(m.def.name);
        }
    }

    #[test]
    fn registry_extractors_read_the_right_fields() {
        let c = Counters {
            faults_fetched: 7,
            pages_faulted_in: 3,
            pages_prefetched: 9,
            pages_evicted_migrated: 4,
            pages_evicted_clean: 2,
            ..Counters::default()
        };
        let read = |name: &str| {
            (COUNTER_REGISTRY
                .iter()
                .find(|m| m.def.name == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .read)(&c)
        };
        assert_eq!(read("uvm_faults_fetched_total"), 7);
        assert_eq!(read("uvm_pages_migrated_h2d_total"), 12);
        assert_eq!(read("uvm_pages_evicted_pages_total"), 6);
    }
}
