//! Span-level batch-lifecycle tracing.
//!
//! The paper's contribution is *visibility*: a per-batch breakdown of
//! where UVM time goes (pre/post-processing, the three fault-service
//! sub-phases, replay policy, eviction — Fig. 4–6). Run-level
//! [`Timers`](crate::Timers) totals show the shares; this module records
//! the *timeline*: one [`SpanEvent`] per lifecycle phase, stamped in both
//! sim-time and wall-time, organised as
//!
//! ```text
//! Pass (one fault batch)                         ph=B … ph=E
//! ├─ first_touch / interrupt_wake / fetch_sort   leaf, cat=preprocess
//! ├─ VABlock service                             ph=B … ph=E
//! │  ├─ vablock_setup / map_pages                leaf, cat=map
//! │  ├─ pma_alloc                                leaf, cat=pma_alloc
//! │  ├─ page_zero / migrate_h2d                  leaf, cat=migrate
//! │  └─ evict                                    leaf, cat=eviction
//! ├─ buffer_flush / replay_issue                 leaf, cat=replay_policy
//! └─ instants: duplicates filtered, thrash pins, replay, buffer drops
//! ```
//!
//! Every leaf span is recorded by the same call that charges the
//! [`Timers`](crate::Timers), so captured leaf durations (plus the
//! dropped-span remainder the recorder keeps per category) sum *exactly*
//! to the run's per-category totals — the invariant
//! [`chrome::validate`](crate::chrome::validate) checks on exported
//! traces.
//!
//! The recorder is a **bounded buffer**: enabling tracing on a full-scale
//! (12 GB) run degrades gracefully by dropping events past the capacity
//! (counted, and with dropped *time* still accounted per category)
//! instead of growing without limit. When disabled it is a single enum
//! branch per call with no captured state — the PR-1 hot paths are
//! untouched, which the `hot_paths` criterion suite guards.

use crate::timers::{Category, Timers};
use serde::{Deserialize, Serialize};
use sim_engine::{SimDuration, SimTime};
use std::time::Instant;

/// What lifecycle phase a span (or instant) describes. The names are the
/// labels shown in Perfetto/`chrome://tracing`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// One driver pass: fetch + service + replay for one fault batch.
    Pass,
    /// One VABlock's service (children: map/migrate/pma leaves).
    VablockService,
    /// One explicit prefetch hint (`cudaMemPrefetchAsync` style).
    PrefetchHint,
    /// One CPU access episode migrating pages back to the host.
    HostAccess,
    /// One-time driver initialisation on the first touched fault.
    FirstTouch,
    /// Interrupt delivery + driver wakeup.
    InterruptWake,
    /// Fault fetch, ready-bit polling, and sort into VABlock bins.
    FetchSort,
    /// Access-counter notification processing.
    AccessNotify,
    /// Per-VABlock service bookkeeping (charged to the map category).
    VablockSetup,
    /// A call into the physical memory allocator.
    PmaAlloc,
    /// Zeroing newly allocated backing pages.
    PageZero,
    /// Host→device migration (staging + DMA).
    MigrateH2d,
    /// Page-table mapping + membar (+ LRU update on the fault path).
    MapPages,
    /// One VABlock eviction: write-back, unmap, restart cost.
    Evict,
    /// Device→host migration of a CPU-faulted block.
    MigrateD2h,
    /// Fault-buffer flush performed by the replay policy.
    BufferFlush,
    /// Replay notification issue.
    ReplayIssue,
    /// Instant: duplicate faults filtered during pre-processing.
    DuplicatesFiltered,
    /// Instant: the thrashing detector pinned a VABlock.
    ThrashPin,
    /// Instant: the eviction path skipped a pinned victim.
    ThrashSkip,
    /// Instant: a replay resumed the GPU's stalled warps.
    Replay,
    /// Instant: the hardware fault buffer overflowed (entries lost).
    BufferOverflow,
}

impl SpanKind {
    /// Label shown in trace viewers and the flame summary.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Pass => "pass",
            SpanKind::VablockService => "vablock_service",
            SpanKind::PrefetchHint => "prefetch_hint",
            SpanKind::HostAccess => "host_access",
            SpanKind::FirstTouch => "first_touch",
            SpanKind::InterruptWake => "interrupt_wake",
            SpanKind::FetchSort => "fetch_sort",
            SpanKind::AccessNotify => "access_notify",
            SpanKind::VablockSetup => "vablock_setup",
            SpanKind::PmaAlloc => "pma_alloc",
            SpanKind::PageZero => "page_zero",
            SpanKind::MigrateH2d => "migrate_h2d",
            SpanKind::MapPages => "map_pages",
            SpanKind::Evict => "evict",
            SpanKind::MigrateD2h => "migrate_d2h",
            SpanKind::BufferFlush => "buffer_flush",
            SpanKind::ReplayIssue => "replay_issue",
            SpanKind::DuplicatesFiltered => "duplicates_filtered",
            SpanKind::ThrashPin => "thrash_pin",
            SpanKind::ThrashSkip => "thrash_skip",
            SpanKind::Replay => "replay",
            SpanKind::BufferOverflow => "buffer_overflow",
        }
    }
}

/// Chrome-trace phase of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanPhase {
    /// Begin of a nesting container span (`ph: "B"`).
    Begin,
    /// End of the innermost open container span (`ph: "E"`).
    End,
    /// A complete leaf span with a duration (`ph: "X"`).
    Leaf,
    /// A zero-duration instant event (`ph: "i"`).
    Instant,
}

/// Category a span's time is charged to. Leaf spans carry a
/// [`Timers`] category so their durations reconcile against the
/// run totals; container spans and instants carry structural categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanCat {
    /// A whole driver pass (container; duration = sum of its leaves).
    Batch,
    /// A VABlock service window (container).
    Vablock,
    /// Leaf charged to [`Category::Preprocess`].
    Preprocess,
    /// Leaf charged to [`Category::ServicePma`].
    Pma,
    /// Leaf charged to [`Category::ServiceMigrate`].
    Migrate,
    /// Leaf charged to [`Category::ServiceMap`].
    Map,
    /// Leaf charged to [`Category::ReplayPolicy`].
    ReplayPolicy,
    /// Leaf charged to [`Category::Eviction`].
    Eviction,
    /// Instant marker (no time charged).
    Marker,
}

impl SpanCat {
    /// The timer category a leaf span reconciles against, if any.
    pub fn timer_category(self) -> Option<Category> {
        match self {
            SpanCat::Preprocess => Some(Category::Preprocess),
            SpanCat::Pma => Some(Category::ServicePma),
            SpanCat::Migrate => Some(Category::ServiceMigrate),
            SpanCat::Map => Some(Category::ServiceMap),
            SpanCat::ReplayPolicy => Some(Category::ReplayPolicy),
            SpanCat::Eviction => Some(Category::Eviction),
            SpanCat::Batch | SpanCat::Vablock | SpanCat::Marker => None,
        }
    }

    /// Label used for the Chrome-trace `cat` field.
    pub fn label(self) -> &'static str {
        match self {
            SpanCat::Batch => "batch",
            SpanCat::Vablock => "vablock",
            SpanCat::Preprocess => Category::Preprocess.label(),
            SpanCat::Pma => Category::ServicePma.label(),
            SpanCat::Migrate => Category::ServiceMigrate.label(),
            SpanCat::Map => Category::ServiceMap.label(),
            SpanCat::ReplayPolicy => Category::ReplayPolicy.label(),
            SpanCat::Eviction => Category::Eviction.label(),
            SpanCat::Marker => "marker",
        }
    }
}

/// From a timer category to the span category leaf spans use.
impl From<Category> for SpanCat {
    fn from(c: Category) -> SpanCat {
        match c {
            Category::Preprocess => SpanCat::Preprocess,
            Category::ServicePma => SpanCat::Pma,
            Category::ServiceMigrate => SpanCat::Migrate,
            Category::ServiceMap => SpanCat::Map,
            Category::ReplayPolicy => SpanCat::ReplayPolicy,
            Category::Eviction => SpanCat::Eviction,
        }
    }
}

/// One recorded span / instant event.
///
/// Sim-time fields (`ts`, `dur`) are deterministic — bit-identical across
/// runs and thread counts. `wall_ns` is the wall-clock stamp (nanoseconds
/// since the recorder was created) and is explicitly excluded from
/// determinism comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Lifecycle phase this event describes.
    pub kind: SpanKind,
    /// Chrome-trace phase (begin/end/leaf/instant).
    pub phase: SpanPhase,
    /// Category the time is charged to.
    pub cat: SpanCat,
    /// Sim-time stamp (span start for `Leaf`, event time otherwise).
    pub ts: SimTime,
    /// Sim-time duration (zero for `Begin`/`End`/`Instant`).
    pub dur: SimDuration,
    /// Wall-clock nanoseconds since recorder creation (non-deterministic).
    pub wall_ns: u64,
    /// First event-specific argument (e.g. batch number, VABlock index).
    pub a: u64,
    /// Second event-specific argument (e.g. faults fetched, page count).
    pub b: u64,
}

/// Everything a run's span capture produced: the (bounded) event list,
/// the drop counter, and the per-category time of dropped leaf spans so
/// `captured + dropped_time == Timers` stays exact under pressure.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SpanTrace {
    /// Captured events in emission order.
    pub events: Vec<SpanEvent>,
    /// Events dropped because the buffer was at capacity.
    pub dropped: u64,
    /// Per-category sim-time carried by dropped *leaf* spans.
    pub dropped_time: Timers,
}

impl SpanTrace {
    /// Sum of captured leaf-span time per category.
    pub fn leaf_totals(&self) -> Timers {
        let mut t = Timers::default();
        for e in &self.events {
            if e.phase == SpanPhase::Leaf {
                if let Some(cat) = e.cat.timer_category() {
                    t.charge(cat, e.dur);
                }
            }
        }
        t
    }

    /// Captured leaf time plus the dropped remainder — must equal the
    /// driver's [`Timers`] totals for the same run.
    pub fn reconciled_totals(&self) -> Timers {
        self.leaf_totals() + self.dropped_time
    }
}

/// Interior state of an enabled recorder.
#[derive(Debug, Clone)]
struct SpanBuf {
    events: Vec<SpanEvent>,
    cap: usize,
    dropped: u64,
    dropped_time: Timers,
    /// Container `Begin` events actually emitted whose `End` is pending;
    /// their `End`s are emitted even at capacity so B/E stay balanced.
    open_emitted: u32,
    /// Container `Begin` events dropped whose `End` is pending; their
    /// `End`s are dropped to match.
    open_dropped: u32,
    epoch: Instant,
}

/// Default bounded capacity: 64 Ki events (~3 MiB). Full-scale runs
/// overflow this by design; dropped events are counted and dropped leaf
/// *time* stays accounted per category.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;

/// Bounded recorder for batch-lifecycle spans.
///
/// Constructed [`SpanRecorder::disabled`] (the default), every method is
/// one enum-variant branch and records nothing. [`SpanRecorder::bounded`]
/// captures up to `capacity` events.
#[derive(Debug, Clone, Default)]
pub enum SpanRecorder {
    /// Record nothing (zero-cost beyond one branch per call).
    #[default]
    Off,
    /// Record into a bounded buffer.
    On(Box<SpanBufOpaque>),
}

/// Opaque wrapper keeping `SpanBuf` private while the enum is public.
#[derive(Debug, Clone)]
pub struct SpanBufOpaque(SpanBuf);

impl SpanRecorder {
    /// A recorder that discards everything.
    pub fn disabled() -> Self {
        SpanRecorder::Off
    }

    /// A recorder capturing up to `capacity` events, then counting drops.
    pub fn bounded(capacity: usize) -> Self {
        SpanRecorder::On(Box::new(SpanBufOpaque(SpanBuf {
            events: Vec::new(),
            cap: capacity.max(1),
            dropped: 0,
            dropped_time: Timers::default(),
            open_emitted: 0,
            open_dropped: 0,
            epoch: Instant::now(),
        })))
    }

    /// True if events are being captured.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(self, SpanRecorder::On(_))
    }

    /// Record a complete leaf span `[ts, ts + dur]` charged to `cat`.
    #[inline]
    pub fn leaf(&mut self, kind: SpanKind, cat: Category, ts: SimTime, dur: SimDuration) {
        if let SpanRecorder::On(buf) = self {
            buf.0.push_leaf(kind, cat, ts, dur, 0, 0);
        }
    }

    /// Record a leaf span with event-specific arguments.
    #[inline]
    pub fn leaf_args(
        &mut self,
        kind: SpanKind,
        cat: Category,
        ts: SimTime,
        dur: SimDuration,
        a: u64,
        b: u64,
    ) {
        if let SpanRecorder::On(buf) = self {
            buf.0.push_leaf(kind, cat, ts, dur, a, b);
        }
    }

    /// Open a container span (`Pass`, `VablockService`, …) at `ts`.
    #[inline]
    pub fn begin(&mut self, kind: SpanKind, cat: SpanCat, ts: SimTime, a: u64, b: u64) {
        if let SpanRecorder::On(buf) = self {
            buf.0.push_begin(kind, cat, ts, a, b);
        }
    }

    /// Close the innermost open container span at `ts`.
    #[inline]
    pub fn end(&mut self, kind: SpanKind, cat: SpanCat, ts: SimTime, a: u64, b: u64) {
        if let SpanRecorder::On(buf) = self {
            buf.0.push_end(kind, cat, ts, a, b);
        }
    }

    /// Record an instant marker at `ts`.
    #[inline]
    pub fn instant(&mut self, kind: SpanKind, ts: SimTime, a: u64, b: u64) {
        if let SpanRecorder::On(buf) = self {
            buf.0.push_instant(kind, ts, a, b);
        }
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        match self {
            SpanRecorder::Off => 0,
            SpanRecorder::On(buf) => buf.0.events.len(),
        }
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped at capacity.
    pub fn dropped(&self) -> u64 {
        match self {
            SpanRecorder::Off => 0,
            SpanRecorder::On(buf) => buf.0.dropped,
        }
    }

    /// Captured events in emission order.
    pub fn events(&self) -> &[SpanEvent] {
        match self {
            SpanRecorder::Off => &[],
            SpanRecorder::On(buf) => &buf.0.events,
        }
    }

    /// Snapshot the capture into an owned [`SpanTrace`].
    pub fn to_trace(&self) -> SpanTrace {
        match self {
            SpanRecorder::Off => SpanTrace::default(),
            SpanRecorder::On(buf) => SpanTrace {
                events: buf.0.events.clone(),
                dropped: buf.0.dropped,
                dropped_time: buf.0.dropped_time,
            },
        }
    }
}

impl SpanBuf {
    fn wall_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn push_leaf(&mut self, kind: SpanKind, cat: Category, ts: SimTime, dur: SimDuration, a: u64, b: u64) {
        if self.events.len() >= self.cap {
            self.dropped += 1;
            self.dropped_time.charge(cat, dur);
            return;
        }
        let wall_ns = self.wall_ns();
        self.events.push(SpanEvent {
            kind,
            phase: SpanPhase::Leaf,
            cat: cat.into(),
            ts,
            dur,
            wall_ns,
            a,
            b,
        });
    }

    fn push_begin(&mut self, kind: SpanKind, cat: SpanCat, ts: SimTime, a: u64, b: u64) {
        if self.events.len() >= self.cap {
            self.dropped += 1;
            self.open_dropped += 1;
            return;
        }
        let wall_ns = self.wall_ns();
        self.open_emitted += 1;
        self.events.push(SpanEvent {
            kind,
            phase: SpanPhase::Begin,
            cat,
            ts,
            dur: SimDuration::ZERO,
            wall_ns,
            a,
            b,
        });
    }

    fn push_end(&mut self, kind: SpanKind, cat: SpanCat, ts: SimTime, a: u64, b: u64) {
        // Container spans nest strictly (pass > vablock), so ends pair
        // LIFO: drop the end if its begin was dropped, emit it (even past
        // capacity, overshooting by at most the nesting depth) if its
        // begin was emitted — B/E stay balanced either way.
        if self.open_dropped > 0 {
            self.open_dropped -= 1;
            self.dropped += 1;
            return;
        }
        if self.open_emitted == 0 {
            return; // unmatched end; nothing sensible to record
        }
        let wall_ns = self.wall_ns();
        self.open_emitted -= 1;
        self.events.push(SpanEvent {
            kind,
            phase: SpanPhase::End,
            cat,
            ts,
            dur: SimDuration::ZERO,
            wall_ns,
            a,
            b,
        });
    }

    fn push_instant(&mut self, kind: SpanKind, ts: SimTime, a: u64, b: u64) {
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        let wall_ns = self.wall_ns();
        self.events.push(SpanEvent {
            kind,
            phase: SpanPhase::Instant,
            cat: SpanCat::Marker,
            ts,
            dur: SimDuration::ZERO,
            wall_ns,
            a,
            b,
        });
    }
}

/// One row of the flamegraph-style per-phase summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlameRow {
    /// Phase label.
    pub label: &'static str,
    /// Occurrences captured.
    pub count: u64,
    /// Total sim-time across occurrences (zero for instants).
    pub total: SimDuration,
}

/// Aggregate captured events into a per-phase (kind) summary, ordered by
/// total sim-time descending (instants last, by count descending) — the
/// text flamegraph `repro --trace-out` prints.
pub fn flame_summary(events: &[SpanEvent]) -> Vec<FlameRow> {
    let mut rows: Vec<FlameRow> = Vec::new();
    for e in events {
        // Container time is counted at the Begin event via its matching
        // End; cheapest is to aggregate Leaf durations and count the rest.
        let (count, total) = match e.phase {
            SpanPhase::Leaf => (1, e.dur),
            SpanPhase::Begin | SpanPhase::Instant => (1, SimDuration::ZERO),
            SpanPhase::End => (0, SimDuration::ZERO),
        };
        if count == 0 {
            continue;
        }
        match rows.iter_mut().find(|r| r.label == e.kind.label()) {
            Some(r) => {
                r.count += count;
                r.total += total;
            }
            None => rows.push(FlameRow {
                label: e.kind.label(),
                count,
                total,
            }),
        }
    }
    rows.sort_by(|x, y| y.total.cmp(&x.total).then(y.count.cmp(&x.count)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    #[test]
    fn disabled_recorder_is_empty() {
        let mut r = SpanRecorder::disabled();
        r.leaf(SpanKind::MapPages, Category::ServiceMap, t(0), SimDuration::from_nanos(5));
        r.begin(SpanKind::Pass, SpanCat::Batch, t(0), 0, 0);
        r.instant(SpanKind::Replay, t(1), 1, 0);
        assert!(!r.is_enabled());
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.to_trace().events.len(), 0);
    }

    #[test]
    fn leaf_times_reconcile_with_timers() {
        let mut r = SpanRecorder::bounded(16);
        let mut timers = Timers::default();
        for (i, cat) in Category::ALL.iter().enumerate() {
            let d = SimDuration::from_nanos((i as u64 + 1) * 10);
            timers.charge(*cat, d);
            r.leaf(SpanKind::MapPages, *cat, t(i as u64), d);
        }
        let trace = r.to_trace();
        assert_eq!(trace.leaf_totals(), timers);
        assert_eq!(trace.reconciled_totals(), timers);
    }

    #[test]
    fn capacity_drops_count_and_keep_time_accounted() {
        let mut r = SpanRecorder::bounded(2);
        let mut timers = Timers::default();
        for i in 0..5u64 {
            let d = SimDuration::from_nanos(7);
            timers.charge(Category::ServiceMigrate, d);
            r.leaf(SpanKind::MigrateH2d, Category::ServiceMigrate, t(i), d);
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let trace = r.to_trace();
        assert_eq!(
            trace.dropped_time.get(Category::ServiceMigrate),
            SimDuration::from_nanos(21)
        );
        assert_eq!(trace.reconciled_totals(), timers);
    }

    #[test]
    fn begin_end_stay_balanced_at_capacity() {
        let mut r = SpanRecorder::bounded(3);
        // First pass fits; second pass's begin is dropped.
        r.begin(SpanKind::Pass, SpanCat::Batch, t(0), 0, 0);
        r.leaf(SpanKind::FetchSort, Category::Preprocess, t(1), SimDuration::from_nanos(1));
        r.end(SpanKind::Pass, SpanCat::Batch, t(2), 0, 0);
        r.begin(SpanKind::Pass, SpanCat::Batch, t(3), 1, 0);
        r.end(SpanKind::Pass, SpanCat::Batch, t(4), 1, 0);
        let begins = r.events().iter().filter(|e| e.phase == SpanPhase::Begin).count();
        let ends = r.events().iter().filter(|e| e.phase == SpanPhase::End).count();
        assert_eq!(begins, ends, "B/E must stay balanced under drops");
        assert_eq!(r.dropped(), 2, "dropped begin and its end");
    }

    #[test]
    fn end_past_capacity_closes_emitted_begin() {
        let mut r = SpanRecorder::bounded(2);
        r.begin(SpanKind::Pass, SpanCat::Batch, t(0), 0, 0);
        r.leaf(SpanKind::FetchSort, Category::Preprocess, t(1), SimDuration::from_nanos(1));
        // Buffer is now full, but the pass's end must still be emitted.
        r.end(SpanKind::Pass, SpanCat::Batch, t(2), 0, 0);
        assert_eq!(r.len(), 3, "end overshoots capacity to stay balanced");
        let begins = r.events().iter().filter(|e| e.phase == SpanPhase::Begin).count();
        let ends = r.events().iter().filter(|e| e.phase == SpanPhase::End).count();
        assert_eq!(begins, ends);
    }

    #[test]
    fn flame_summary_orders_by_total_time() {
        let mut r = SpanRecorder::bounded(16);
        r.leaf(SpanKind::MigrateH2d, Category::ServiceMigrate, t(0), SimDuration::from_nanos(100));
        r.leaf(SpanKind::MapPages, Category::ServiceMap, t(1), SimDuration::from_nanos(10));
        r.leaf(SpanKind::MapPages, Category::ServiceMap, t(2), SimDuration::from_nanos(10));
        r.instant(SpanKind::Replay, t(3), 1, 0);
        let rows = flame_summary(r.events());
        assert_eq!(rows[0].label, "migrate_h2d");
        assert_eq!(rows[1].label, "map_pages");
        assert_eq!(rows[1].count, 2);
        assert_eq!(rows[1].total, SimDuration::from_nanos(20));
        assert_eq!(rows.last().unwrap().label, "replay");
    }
}
