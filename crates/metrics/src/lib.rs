//! # metrics
//!
//! Instrumentation substrate mirroring the driver instrumentation the
//! paper's authors added to the open-source NVIDIA UVM kernel module.
//!
//! * [`timers`] — per-category virtual-time accounting using the paper's
//!   taxonomy: *pre/post-processing*, *fault service* (split into Map
//!   Pages / Migrate Pages / PMA Alloc Pages, as in Fig. 4), *replay
//!   policy*, and *eviction*.
//! * [`counters`] — event counters: driver-observed faults, duplicates
//!   filtered, pages migrated/prefetched, evictions, replays, batches.
//! * [`histogram`] — log2-bucket histograms of batch composition
//!   (faults and VABlocks per batch), the paper's §III-D lever.
//! * [`trace`] — optional capture of per-fault records (page, virtual
//!   time, order) and eviction records, powering the access-pattern
//!   scatter figures (Fig. 7 and Fig. 8).
//! * [`span`] — span-level batch-lifecycle tracing: begin/end/leaf/instant
//!   events per driver pass, bounded recorder, flame-style summaries.
//! * [`phase`] — host wall-time split of the driver's two-phase batch
//!   service (serial front vs parallel planning), for Amdahl tracking.
//! * [`sched`] — host wall-time stats of the sweep's work-stealing point
//!   scheduler (points stolen, max straggler), for load-balance tracking.
//! * [`chrome`] — Chrome-trace/Perfetto JSON export of span traces plus a
//!   validator for the trace-event-format invariants.
//! * [`timeseries`] — bounded simulated-time sampling of the cumulative
//!   signals (the time-resolved data behind Fig. 8–10), deterministic
//!   across host thread counts and allocation-free in steady state.
//! * [`exposition`] — Prometheus text-exposition rendering and a format
//!   validator for the sampled metrics.
//! * [`attribution`] — fault-provenance ledger: per-cause root-cause
//!   totals (cold / refault / prefetch-hit / replay-duplicate /
//!   prefetch-evicted) that partition the counters and the transfer log
//!   exactly, plus the per-VABlock offender table.
//! * [`report`] — plain-text table and CSV rendering for the `repro`
//!   binary that regenerates the paper's tables and figures.

#![warn(missing_docs)]

pub mod attribution;
pub mod chrome;
pub mod counters;
pub mod exposition;
pub mod histogram;
pub mod phase;
pub mod report;
pub mod sched;
pub mod span;
pub mod timers;
pub mod timeseries;
pub mod trace;

pub use attribution::{
    top_offenders, Attribution, AttributionMetric, BlockStats, Offender, ATTRIBUTION_REGISTRY,
};
pub use chrome::{ChromePoint, TraceStats};
pub use counters::{CounterMetric, Counters, COUNTER_REGISTRY};
pub use exposition::{Exposition, ExpositionStats, MetricDef, MetricKind};
pub use histogram::Histogram;
pub use phase::ServicePhaseWall;
pub use sched::SweepSchedStats;
pub use timeseries::{
    Sample, Timeseries, TimeseriesConfig, TimeseriesSampler, DEFAULT_SAMPLE_CAPACITY,
    DEFAULT_SAMPLE_INTERVAL_NS,
};
pub use span::{
    flame_summary, FlameRow, SpanCat, SpanEvent, SpanKind, SpanPhase, SpanRecorder, SpanTrace,
    DEFAULT_SPAN_CAPACITY,
};
pub use timers::{Category, Timers};
pub use trace::{EventKind, TraceEvent, TraceRecorder};
