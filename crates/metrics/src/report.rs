//! Plain-text table and CSV rendering for experiment reports.
//!
//! The `repro` binary prints each of the paper's tables and figure data
//! series through this module, so output formatting is consistent and
//! testable.

use serde::{Deserialize, Serialize};

/// A simple fixed-width text table builder.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `digits` decimal places.
pub fn f(v: f64, digits: usize) -> String {
    format!("{:.*}", digits, v)
}

/// Format a percentage with 2 decimal places.
pub fn pct(v: f64) -> String {
    format!("{:.2}", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "12345".into()]);
        let out = t.render();
        assert!(out.starts_with("== demo =="));
        assert!(out.contains("  name  value"));
        assert!(out.contains("longer  12345"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn number_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.8227), "82.27");
    }
}
