//! Fault-provenance ledger — per-cause root-cause attribution of every
//! serviced fault and every migrated byte.
//!
//! The paper's §VI decomposition does not count faults, it *explains*
//! them: baseline cold service, prefetcher coverage, evict-before-use
//! thrash, and the prefetch–eviction antagonism. [`Attribution`] is the
//! compact ledger the driver maintains to answer "why did this fault /
//! this byte happen", partitioned so the causes reconcile *exactly*
//! against [`Counters`](crate::Counters) and the transfer log:
//!
//! * **Fault entries** (`faults_fetched`) partition into five causes —
//!   `ColdFirstTouch`, `EvictionRefault` split by evict-before-use
//!   (`refault_used` / `refault_unused`), `PrefetchHit` (a stale entry
//!   absorbed by a prefetched, not-yet-touched resident page) and
//!   `ReplayDuplicate` (every other discarded entry).
//! * **H2D bytes** partition by arrival path: the three fault causes
//!   plus density-prefetch and hint-prefetch pages, times the page size.
//! * **D2H bytes** partition into eviction write-back and CPU-fault
//!   host migration.
//! * **Evicted pages** partition by the touched-bit at eviction time:
//!   `evicted_used` vs `prefetch_evicted` (arrived via prefetch, evicted
//!   before any access — the paper's antagonism signal).
//!
//! Everything here is plain-old-data, preallocated by the driver, and
//! allocation-free in steady state like [`timeseries`](crate::timeseries).
//! Classification happens only in the driver's serial paths (gather,
//! ordered commit, eviction) using simulated state, so the streams are
//! bit-identical at any `--threads`/`--service-workers` value.

use crate::counters::Counters;
use crate::exposition::{MetricDef, MetricKind};
use serde::{Deserialize, Serialize};
use sim_engine::units::PAGE_SIZE;

/// Per-cause cumulative totals. Field order mirrors the partition
/// groups documented at module level; every field is a monotonic
/// counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribution {
    /// `ColdFirstTouch`: pages faulted in that had never been evicted
    /// since allocation (or since a host migration reset their history).
    pub cold_faults: u64,
    /// `EvictionRefault` (used): refaults of pages that had been touched
    /// before their most recent eviction — genuine working-set churn.
    pub refault_used_faults: u64,
    /// `EvictionRefault` (evict-before-use): refaults of pages evicted
    /// *untouched* — the closed prefetch→evict→refault antagonism loop.
    pub refault_unused_faults: u64,
    /// `PrefetchHit`: fault entries absorbed because the prefetcher had
    /// already migrated the page (page resident, not yet touched).
    pub prefetch_hit_faults: u64,
    /// `ReplayDuplicate`: remaining discarded entries — same-page
    /// duplicates within a batch, entries on already-touched resident
    /// pages (replay races), entries on invalid pages.
    pub replay_dup_faults: u64,
    /// Pages migrated H2D because the density prefetcher asked.
    pub prefetch_pages: u64,
    /// Pages migrated H2D by explicit prefetch hints.
    pub hint_pages: u64,
    /// Pages evicted after being touched (faulted on, or absorbing a
    /// stale fault entry while resident).
    pub evicted_used_pages: u64,
    /// `PrefetchEvicted`: pages evicted having *never* been touched —
    /// they arrived via prefetch and were thrown away unused.
    pub prefetch_evicted_pages: u64,
    /// D2H bytes written back by evictions (dirty pages only).
    pub writeback_bytes: u64,
    /// D2H bytes migrated because the CPU faulted on resident pages.
    pub host_migrated_bytes: u64,
}

impl Attribution {
    /// Sum of the five fault causes — must equal
    /// [`Counters::faults_fetched`].
    pub fn fault_total(&self) -> u64 {
        self.cold_faults
            + self.refault_used_faults
            + self.refault_unused_faults
            + self.prefetch_hit_faults
            + self.replay_dup_faults
    }

    /// Fault entries that migrated a page (the non-duplicate causes) —
    /// must equal [`Counters::pages_faulted_in`].
    pub fn pages_faulted(&self) -> u64 {
        self.cold_faults + self.refault_used_faults + self.refault_unused_faults
    }

    /// H2D bytes by cause — must equal the transfer log's H2D total.
    pub fn h2d_bytes(&self) -> u64 {
        (self.pages_faulted() + self.prefetch_pages + self.hint_pages) * PAGE_SIZE
    }

    /// D2H bytes by cause — must equal the transfer log's D2H total.
    pub fn d2h_bytes(&self) -> u64 {
        self.writeback_bytes + self.host_migrated_bytes
    }

    /// Evicted pages by touched-bit — must equal
    /// [`Counters::pages_evicted_total`].
    pub fn evicted_total(&self) -> u64 {
        self.evicted_used_pages + self.prefetch_evicted_pages
    }

    /// Share of evicted pages thrown away before any access, in basis
    /// points (0 when nothing was evicted) — the paper's
    /// evict-before-use rate.
    pub fn evict_before_use_bp(&self) -> u64 {
        let total = self.evicted_total();
        if total == 0 {
            0
        } else {
            self.prefetch_evicted_pages * 10_000 / total
        }
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, o: &Attribution) {
        self.cold_faults += o.cold_faults;
        self.refault_used_faults += o.refault_used_faults;
        self.refault_unused_faults += o.refault_unused_faults;
        self.prefetch_hit_faults += o.prefetch_hit_faults;
        self.replay_dup_faults += o.replay_dup_faults;
        self.prefetch_pages += o.prefetch_pages;
        self.hint_pages += o.hint_pages;
        self.evicted_used_pages += o.evicted_used_pages;
        self.prefetch_evicted_pages += o.prefetch_evicted_pages;
        self.writeback_bytes += o.writeback_bytes;
        self.host_migrated_bytes += o.host_migrated_bytes;
    }

    /// Check every partition equation against a [`Counters`] snapshot
    /// and the transfer-log byte totals. Returns the first violated
    /// equation as `(what, attributed, observed)`.
    pub fn reconcile(
        &self,
        c: &Counters,
        h2d_bytes: u64,
        d2h_bytes: u64,
    ) -> Result<(), (&'static str, u64, u64)> {
        let checks = [
            ("fault causes vs faults_fetched", self.fault_total(), c.faults_fetched),
            ("migrating causes vs pages_faulted_in", self.pages_faulted(), c.pages_faulted_in),
            (
                "duplicate causes vs duplicate_faults",
                self.prefetch_hit_faults + self.replay_dup_faults,
                c.duplicate_faults,
            ),
            ("prefetch pages vs pages_prefetched", self.prefetch_pages, c.pages_prefetched),
            ("hint pages vs pages_hint_prefetched", self.hint_pages, c.pages_hint_prefetched),
            ("evicted causes vs pages_evicted", self.evicted_total(), c.pages_evicted_total()),
            ("H2D bytes by cause vs transfer log", self.h2d_bytes(), h2d_bytes),
            ("D2H bytes by cause vs transfer log", self.d2h_bytes(), d2h_bytes),
        ];
        for (what, attributed, observed) in checks {
            if attributed != observed {
                return Err((what, attributed, observed));
            }
        }
        Ok(())
    }
}

/// One exposition registry entry: metric identity plus the extractor
/// reading it off an [`Attribution`] snapshot.
pub struct AttributionMetric {
    /// Metric name/kind/help for the exposition output.
    pub def: MetricDef,
    /// Field extractor.
    pub read: fn(&Attribution) -> u64,
}

macro_rules! attr_metric {
    ($name:literal, $help:literal, $read:expr) => {
        AttributionMetric {
            def: MetricDef {
                name: $name,
                kind: MetricKind::Counter,
                help: $help,
            },
            read: $read,
        }
    };
}

/// Every [`Attribution`] field as an exposition metric family, kept in
/// lockstep with the struct by test (like `COUNTER_REGISTRY`).
pub const ATTRIBUTION_REGISTRY: &[AttributionMetric] = &[
    attr_metric!(
        "uvm_attr_cold_faults_total",
        "Faults on pages never evicted since allocation (ColdFirstTouch).",
        |a| a.cold_faults
    ),
    attr_metric!(
        "uvm_attr_refault_used_faults_total",
        "Refaults of pages touched before their last eviction (EvictionRefault).",
        |a| a.refault_used_faults
    ),
    attr_metric!(
        "uvm_attr_refault_unused_faults_total",
        "Refaults of pages evicted before any use (EvictionRefault, evict-before-use).",
        |a| a.refault_unused_faults
    ),
    attr_metric!(
        "uvm_attr_prefetch_hit_faults_total",
        "Fault entries absorbed by a prefetched not-yet-touched resident page (PrefetchHit).",
        |a| a.prefetch_hit_faults
    ),
    attr_metric!(
        "uvm_attr_replay_duplicate_faults_total",
        "Remaining discarded fault entries (ReplayDuplicate).",
        |a| a.replay_dup_faults
    ),
    attr_metric!(
        "uvm_attr_prefetch_pages_total",
        "Pages migrated H2D by the density prefetcher.",
        |a| a.prefetch_pages
    ),
    attr_metric!(
        "uvm_attr_hint_prefetch_pages_total",
        "Pages migrated H2D by explicit prefetch hints.",
        |a| a.hint_pages
    ),
    attr_metric!(
        "uvm_attr_evicted_used_pages_total",
        "Pages evicted after being touched.",
        |a| a.evicted_used_pages
    ),
    attr_metric!(
        "uvm_attr_prefetch_evicted_pages_total",
        "Pages evicted without ever being touched (PrefetchEvicted).",
        |a| a.prefetch_evicted_pages
    ),
    attr_metric!(
        "uvm_attr_writeback_bytes_total",
        "D2H bytes written back by evictions.",
        |a| a.writeback_bytes
    ),
    attr_metric!(
        "uvm_attr_host_migrated_bytes_total",
        "D2H bytes migrated on CPU faults.",
        |a| a.host_migrated_bytes
    ),
];

/// Per-VABlock offender totals the driver accumulates in a preallocated
/// table (one slot per block — no growth in steady state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockStats {
    /// Refault entries charged to this block (used + evict-before-use).
    pub refault_faults: u64,
    /// Pages this block had evicted untouched (PrefetchEvicted).
    pub prefetch_evicted_pages: u64,
    /// Evictions of this block (its generation stamp at end of run).
    pub evictions: u64,
}

impl BlockStats {
    /// Ranking key for the offender table: blocks that refault a lot
    /// and throw prefetched pages away dominate the avoidable cost.
    pub fn badness(&self) -> u64 {
        self.refault_faults + self.prefetch_evicted_pages
    }
}

/// One row of the top-K offender table, labelled by VABlock index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Offender {
    /// VABlock index within the managed space.
    pub block: u64,
    /// The block's accumulated stats.
    pub stats: BlockStats,
}

/// Select the top-`k` offender blocks from a per-block stats table,
/// ranked by [`BlockStats::badness`] descending with block index as the
/// deterministic tie-break. Blocks with zero badness are omitted.
pub fn top_offenders(stats: &[BlockStats], k: usize) -> Vec<Offender> {
    let mut rows: Vec<Offender> = stats
        .iter()
        .enumerate()
        .filter(|(_, s)| s.badness() > 0)
        .map(|(i, s)| Offender {
            block: i as u64,
            stats: *s,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.stats
            .badness()
            .cmp(&a.stats.badness())
            .then(a.block.cmp(&b.block))
    });
    rows.truncate(k);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_reconcile_when_consistent() {
        let a = Attribution {
            cold_faults: 10,
            refault_used_faults: 4,
            refault_unused_faults: 2,
            prefetch_hit_faults: 3,
            replay_dup_faults: 1,
            prefetch_pages: 8,
            hint_pages: 5,
            evicted_used_pages: 6,
            prefetch_evicted_pages: 2,
            writeback_bytes: 3 * PAGE_SIZE,
            host_migrated_bytes: PAGE_SIZE,
        };
        let c = Counters {
            faults_fetched: 20,
            duplicate_faults: 4,
            pages_faulted_in: 16,
            pages_prefetched: 8,
            pages_hint_prefetched: 5,
            pages_evicted_migrated: 3,
            pages_evicted_clean: 5,
            ..Counters::default()
        };
        assert_eq!(a.fault_total(), 20);
        assert_eq!(a.h2d_bytes(), 29 * PAGE_SIZE);
        assert_eq!(a.d2h_bytes(), 4 * PAGE_SIZE);
        assert_eq!(a.evict_before_use_bp(), 2_500);
        a.reconcile(&c, 29 * PAGE_SIZE, 4 * PAGE_SIZE).expect("consistent");
    }

    #[test]
    fn reconcile_reports_the_violated_equation() {
        let a = Attribution {
            cold_faults: 1,
            ..Attribution::default()
        };
        let c = Counters::default();
        let err = a.reconcile(&c, PAGE_SIZE, 0).expect_err("fault total off");
        assert_eq!(err, ("fault causes vs faults_fetched", 1, 0));
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = Attribution {
            cold_faults: 1,
            writeback_bytes: 2,
            ..Attribution::default()
        };
        let b = Attribution {
            cold_faults: 10,
            prefetch_evicted_pages: 7,
            host_migrated_bytes: 3,
            ..Attribution::default()
        };
        a.merge(&b);
        assert_eq!(a.cold_faults, 11);
        assert_eq!(a.prefetch_evicted_pages, 7);
        assert_eq!(a.writeback_bytes, 2);
        assert_eq!(a.host_migrated_bytes, 3);
    }

    #[test]
    fn registry_names_are_legal_unique_counters() {
        let mut seen = Vec::new();
        for m in ATTRIBUTION_REGISTRY {
            assert!(
                crate::exposition::valid_metric_name(m.def.name),
                "illegal name {}",
                m.def.name
            );
            assert!(m.def.name.starts_with("uvm_attr_"), "unprefixed {}", m.def.name);
            assert!(m.def.name.ends_with("_total"), "counter without _total: {}", m.def.name);
            assert_eq!(m.def.kind, MetricKind::Counter);
            assert!(!m.def.help.is_empty());
            assert!(!seen.contains(&m.def.name), "duplicate {}", m.def.name);
            seen.push(m.def.name);
        }
    }

    #[test]
    fn registry_covers_every_field_exactly_once() {
        // Lockstep guard: a ledger with a unique value per field must be
        // read back as exactly that multiset — adding an Attribution
        // field without a registry entry (or vice versa) fails here.
        let a = Attribution {
            cold_faults: 1,
            refault_used_faults: 2,
            refault_unused_faults: 3,
            prefetch_hit_faults: 4,
            replay_dup_faults: 5,
            prefetch_pages: 6,
            hint_pages: 7,
            evicted_used_pages: 8,
            prefetch_evicted_pages: 9,
            writeback_bytes: 10,
            host_migrated_bytes: 11,
        };
        let mut read: Vec<u64> = ATTRIBUTION_REGISTRY.iter().map(|m| (m.read)(&a)).collect();
        read.sort_unstable();
        assert_eq!(read, (1..=11).collect::<Vec<u64>>());
    }

    #[test]
    fn top_offenders_rank_and_tiebreak_deterministically() {
        let stats = vec![
            BlockStats::default(), // omitted: zero badness
            BlockStats {
                refault_faults: 5,
                prefetch_evicted_pages: 0,
                evictions: 1,
            },
            BlockStats {
                refault_faults: 0,
                prefetch_evicted_pages: 5,
                evictions: 2,
            },
            BlockStats {
                refault_faults: 9,
                prefetch_evicted_pages: 0,
                evictions: 3,
            },
        ];
        let top = top_offenders(&stats, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].block, 3);
        // Equal badness (blocks 1 and 2): lower index wins.
        assert_eq!(top[1].block, 1);
        let all = top_offenders(&stats, 10);
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].block, 2);
    }
}
