//! Simulated-time telemetry timeseries.
//!
//! End-of-run aggregates (Timers, Counters, Histograms) answer *how much*
//! but not *when* — yet the paper's central artefacts are time-resolved:
//! the fault timeline of Fig. 8, the oversubscribed cost decomposition of
//! Fig. 9, the compute-rate curves of Fig. 10. This module snapshots the
//! driver's cumulative signals on a fixed **simulated-time** grid so a
//! run's internal dynamics (fault storms, eviction onset, thrash windows)
//! can be plotted and diffed.
//!
//! Two properties are load-bearing:
//!
//! * **Determinism.** Samples fire on the virtual clock (the first pass
//!   whose end time reaches the next grid point), and every sampled value
//!   is simulated state. Host thread counts — the rayon sweep pool and
//!   the intra-batch `service_workers` — cannot influence a single bit of
//!   the stream (`tests/timeseries_golden.rs` enforces this), which is
//!   what makes sampled runs diffable across machines and CI shards.
//! * **Bounded, allocation-free steady state.** The sample buffer is
//!   preallocated at its capacity. When it fills, it is *compacted in
//!   place* — every other sample is dropped and the effective interval
//!   doubles — so an arbitrarily long run keeps full start-to-end
//!   coverage at a coarser grain instead of truncating its tail, without
//!   ever reallocating (`uvm-driver/tests/alloc_free.rs` enforces this).

use crate::Histogram;
use serde::{Deserialize, Serialize};
use sim_engine::{SimDuration, SimTime};

/// Default sampling interval: 500 µs of simulated time.
pub const DEFAULT_SAMPLE_INTERVAL_NS: u64 = 500_000;
/// Default sample-buffer capacity.
pub const DEFAULT_SAMPLE_CAPACITY: usize = 4096;

/// Driver-load-time configuration of the timeseries sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeseriesConfig {
    /// Record samples at all (off = stock driver, zero overhead).
    pub enabled: bool,
    /// Base sampling interval in simulated nanoseconds.
    pub interval_ns: u64,
    /// Sample-buffer capacity; at capacity the buffer compacts in place
    /// and the effective interval doubles.
    pub capacity: usize,
}

impl Default for TimeseriesConfig {
    fn default() -> Self {
        TimeseriesConfig {
            enabled: false,
            interval_ns: DEFAULT_SAMPLE_INTERVAL_NS,
            capacity: DEFAULT_SAMPLE_CAPACITY,
        }
    }
}

/// One snapshot of the driver's cumulative signals at a simulated instant.
///
/// Every field is an integer (ratios are carried in basis points), so the
/// struct is `Eq` and sample streams can be compared bit-for-bit in the
/// determinism goldens. Fields marked *gauge* describe the instant; all
/// others are cumulative since driver load and never decrease.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    /// Simulated time of the snapshot, nanoseconds since launch.
    pub t_ns: u64,
    /// Fault entries fetched from the hardware buffer.
    pub faults_fetched: u64,
    /// Fetched entries discarded as duplicates.
    pub duplicate_faults: u64,
    /// Distinct pages migrated because they faulted.
    pub pages_faulted_in: u64,
    /// Pages migrated because the prefetcher asked.
    pub pages_prefetched: u64,
    /// Bytes moved host→device over the interconnect.
    pub migrated_bytes_h2d: u64,
    /// Bytes moved device→host (eviction write-back, CPU faults).
    pub migrated_bytes_d2h: u64,
    /// VABlock evictions performed.
    pub evictions: u64,
    /// Pages released by evictions (dirty write-backs + clean drops).
    pub pages_evicted: u64,
    /// Blocks pinned by the thrashing mitigation.
    pub thrash_pins: u64,
    /// Faults on previously-evicted blocks (evict-before-reuse thrash).
    pub refaults: u64,
    /// Replay notifications issued.
    pub replays: u64,
    /// Fault batches processed.
    pub batches: u64,
    /// *Gauge*: pages currently backed by GPU physical memory.
    pub resident_pages: u64,
    /// *Gauge*: VABlocks currently tracked by the eviction LRU.
    pub lru_blocks: u64,
    /// *Gauge*: p50 of per-pass driver critical-path time, ns.
    pub batch_ns_p50: u64,
    /// *Gauge*: p95 of per-pass driver critical-path time, ns.
    pub batch_ns_p95: u64,
    /// *Gauge*: p99 of per-pass driver critical-path time, ns.
    pub batch_ns_p99: u64,
    /// *Gauge*: prefetched ÷ total H2D pages, in basis points (0–10000).
    pub prefetch_coverage_bp: u64,
    /// Provenance: faults on never-evicted pages (`ColdFirstTouch`).
    pub attr_cold_faults: u64,
    /// Provenance: refaults of pages touched before their last eviction.
    pub attr_refault_used_faults: u64,
    /// Provenance: refaults of pages evicted before any use.
    pub attr_refault_unused_faults: u64,
    /// Provenance: fault entries absorbed by an untouched prefetched page.
    pub attr_prefetch_hit_faults: u64,
    /// Provenance: remaining discarded fault entries (`ReplayDuplicate`).
    pub attr_replay_dup_faults: u64,
    /// Provenance: pages evicted without ever being touched
    /// (`PrefetchEvicted` — the prefetch–eviction antagonism).
    pub attr_prefetch_evicted_pages: u64,
    /// Provenance: pages evicted after being touched.
    pub attr_evicted_used_pages: u64,
}

impl Sample {
    /// Prefetch coverage in basis points from cumulative page counts.
    pub fn coverage_bp(prefetched: u64, migrated_h2d: u64) -> u64 {
        if migrated_h2d == 0 {
            0
        } else {
            prefetched * 10_000 / migrated_h2d
        }
    }

    /// Record per-pass latency percentiles from the pass histogram.
    pub fn set_batch_latency(&mut self, pass_ns: &Histogram) {
        self.batch_ns_p50 = pass_ns.p50();
        self.batch_ns_p95 = pass_ns.p95();
        self.batch_ns_p99 = pass_ns.p99();
    }
}

/// One column of the sample CSV schema: name, monotonicity (cumulative
/// counters never decrease between rows; gauges may), and extractor. The
/// registry is the single source of truth for the CSV header, row
/// rendering, and [`validate_csv`].
pub struct SampleColumn {
    /// Column name (also the CSV header token).
    pub name: &'static str,
    /// Whether the column is cumulative (non-decreasing row to row).
    pub monotonic: bool,
    /// Field extractor.
    pub get: fn(&Sample) -> u64,
}

/// The CSV schema, in column order.
pub const SAMPLE_COLUMNS: &[SampleColumn] = &[
    SampleColumn { name: "t_ns", monotonic: true, get: |s| s.t_ns },
    SampleColumn { name: "faults_fetched", monotonic: true, get: |s| s.faults_fetched },
    SampleColumn { name: "duplicate_faults", monotonic: true, get: |s| s.duplicate_faults },
    SampleColumn { name: "pages_faulted_in", monotonic: true, get: |s| s.pages_faulted_in },
    SampleColumn { name: "pages_prefetched", monotonic: true, get: |s| s.pages_prefetched },
    SampleColumn { name: "migrated_bytes_h2d", monotonic: true, get: |s| s.migrated_bytes_h2d },
    SampleColumn { name: "migrated_bytes_d2h", monotonic: true, get: |s| s.migrated_bytes_d2h },
    SampleColumn { name: "evictions", monotonic: true, get: |s| s.evictions },
    SampleColumn { name: "pages_evicted", monotonic: true, get: |s| s.pages_evicted },
    SampleColumn { name: "thrash_pins", monotonic: true, get: |s| s.thrash_pins },
    SampleColumn { name: "refaults", monotonic: true, get: |s| s.refaults },
    SampleColumn { name: "replays", monotonic: true, get: |s| s.replays },
    SampleColumn { name: "batches", monotonic: true, get: |s| s.batches },
    SampleColumn { name: "resident_pages", monotonic: false, get: |s| s.resident_pages },
    SampleColumn { name: "lru_blocks", monotonic: false, get: |s| s.lru_blocks },
    SampleColumn { name: "batch_ns_p50", monotonic: false, get: |s| s.batch_ns_p50 },
    SampleColumn { name: "batch_ns_p95", monotonic: false, get: |s| s.batch_ns_p95 },
    SampleColumn { name: "batch_ns_p99", monotonic: false, get: |s| s.batch_ns_p99 },
    SampleColumn { name: "prefetch_coverage_bp", monotonic: false, get: |s| s.prefetch_coverage_bp },
    SampleColumn { name: "attr_cold_faults", monotonic: true, get: |s| s.attr_cold_faults },
    SampleColumn {
        name: "attr_refault_used_faults",
        monotonic: true,
        get: |s| s.attr_refault_used_faults,
    },
    SampleColumn {
        name: "attr_refault_unused_faults",
        monotonic: true,
        get: |s| s.attr_refault_unused_faults,
    },
    SampleColumn {
        name: "attr_prefetch_hit_faults",
        monotonic: true,
        get: |s| s.attr_prefetch_hit_faults,
    },
    SampleColumn {
        name: "attr_replay_dup_faults",
        monotonic: true,
        get: |s| s.attr_replay_dup_faults,
    },
    SampleColumn {
        name: "attr_prefetch_evicted_pages",
        monotonic: true,
        get: |s| s.attr_prefetch_evicted_pages,
    },
    SampleColumn {
        name: "attr_evicted_used_pages",
        monotonic: true,
        get: |s| s.attr_evicted_used_pages,
    },
];

/// A finished sample stream, as carried in a `SimReport`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeseries {
    /// Configured base interval (ns of simulated time).
    pub base_interval_ns: u64,
    /// Effective interval at end of run (doubles per compaction).
    pub interval_ns: u64,
    /// In-place compactions performed (each halves the sample count).
    pub compactions: u64,
    /// The samples, in simulated-time order.
    pub samples: Vec<Sample>,
}

impl Timeseries {
    /// The CSV header line for [`to_csv`](Timeseries::to_csv).
    pub fn csv_header() -> String {
        SAMPLE_COLUMNS
            .iter()
            .map(|c| c.name)
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Render the stream as CSV (header + one row per sample).
    pub fn to_csv(&self) -> String {
        let mut out = Self::csv_header();
        out.push('\n');
        for s in &self.samples {
            let mut first = true;
            for col in SAMPLE_COLUMNS {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&(col.get)(s).to_string());
            }
            out.push('\n');
        }
        out
    }

    /// The last (forced-final) sample, whose cumulative fields equal the
    /// run's end-of-run counters.
    pub fn last(&self) -> Option<&Sample> {
        self.samples.last()
    }
}

/// Statistics from a successful [`validate_csv`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsvStats {
    /// Data rows (excluding the header).
    pub rows: usize,
}

/// Validate a sample-CSV blob against the schema: exact header, all-u64
/// cells, strictly increasing `t_ns`, and non-decreasing cumulative
/// columns. Powering `repro check-metrics` and the format unit tests.
pub fn validate_csv(text: &str) -> Result<CsvStats, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty CSV")?;
    let expected = Timeseries::csv_header();
    if header != expected {
        return Err(format!(
            "header mismatch: got `{header}`, expected `{expected}`"
        ));
    }
    let mut prev: Option<Vec<u64>> = None;
    let mut rows = 0usize;
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != SAMPLE_COLUMNS.len() {
            return Err(format!(
                "row {}: {} cells, expected {}",
                lineno + 2,
                cells.len(),
                SAMPLE_COLUMNS.len()
            ));
        }
        let mut vals = Vec::with_capacity(cells.len());
        for (cell, col) in cells.iter().zip(SAMPLE_COLUMNS) {
            let v: u64 = cell.parse().map_err(|_| {
                format!("row {}: column {} = `{cell}` is not a u64", lineno + 2, col.name)
            })?;
            vals.push(v);
        }
        if let Some(p) = &prev {
            if vals[0] <= p[0] {
                return Err(format!(
                    "row {}: t_ns {} not strictly increasing (prev {})",
                    lineno + 2,
                    vals[0],
                    p[0]
                ));
            }
            for (i, col) in SAMPLE_COLUMNS.iter().enumerate() {
                if col.monotonic && vals[i] < p[i] {
                    return Err(format!(
                        "row {}: counter column {} decreased ({} -> {})",
                        lineno + 2,
                        col.name,
                        p[i],
                        vals[i]
                    ));
                }
            }
        }
        prev = Some(vals);
        rows += 1;
    }
    Ok(CsvStats { rows })
}

/// The sampler the driver owns: a preallocated buffer filled on a
/// simulated-time grid, compacted in place when full.
#[derive(Debug, Clone)]
pub struct TimeseriesSampler {
    on: bool,
    base_interval: SimDuration,
    interval: SimDuration,
    capacity: usize,
    next_due: SimTime,
    compactions: u64,
    samples: Vec<Sample>,
}

impl TimeseriesSampler {
    /// A sampler per `cfg` (a disabled no-op when `cfg.enabled` is off).
    pub fn new(cfg: &TimeseriesConfig) -> Self {
        if !cfg.enabled {
            return Self::disabled();
        }
        assert!(cfg.interval_ns > 0, "sample interval must be nonzero");
        let capacity = cfg.capacity.max(2);
        let interval = SimDuration::from_nanos(cfg.interval_ns);
        TimeseriesSampler {
            on: true,
            base_interval: interval,
            interval,
            capacity,
            next_due: SimTime::ZERO + interval,
            compactions: 0,
            samples: Vec::with_capacity(capacity),
        }
    }

    /// The no-op sampler (allocates nothing).
    pub fn disabled() -> Self {
        TimeseriesSampler {
            on: false,
            base_interval: SimDuration::ZERO,
            interval: SimDuration::ZERO,
            capacity: 0,
            next_due: SimTime::ZERO,
            compactions: 0,
            samples: Vec::new(),
        }
    }

    /// True when sampling is armed.
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// True when the grid calls for a sample at simulated time `now`.
    /// Callers gate snapshot construction on this so a disabled (or
    /// not-yet-due) sampler costs one branch per pass.
    #[inline]
    pub fn is_due(&self, now: SimTime) -> bool {
        self.on && now >= self.next_due
    }

    /// Record `sample` if the grid is due at `now`, advancing the grid.
    pub fn record(&mut self, now: SimTime, sample: Sample) {
        if !self.is_due(now) {
            return;
        }
        self.push(sample);
        // Advance past `now`: passes longer than the interval yield one
        // sample, not a burst of stale duplicates.
        while self.next_due <= now {
            self.next_due = self.next_due + self.interval;
        }
    }

    /// Force a final snapshot (end of run), regardless of the grid. If
    /// the last sample already sits at the same instant it is replaced,
    /// so the stream's tail always equals the end-of-run totals.
    pub fn force(&mut self, sample: Sample) {
        if !self.on {
            return;
        }
        if let Some(last) = self.samples.last_mut() {
            if last.t_ns >= sample.t_ns {
                *last = sample;
                return;
            }
        }
        self.push(sample);
    }

    fn push(&mut self, sample: Sample) {
        if self.samples.len() == self.capacity {
            self.compact();
        }
        self.samples.push(sample);
    }

    /// Drop every other sample in place (keeping the odd indices, which
    /// land on the doubled grid) and double the effective interval.
    fn compact(&mut self) {
        let n = self.samples.len();
        let mut w = 0;
        let mut r = 1;
        while r < n {
            self.samples[w] = self.samples[r];
            w += 1;
            r += 2;
        }
        self.samples.truncate(w);
        self.interval = self.interval * 2;
        self.compactions += 1;
    }

    /// Samples recorded so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// In-place compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Move the finished stream out (the sampler is left disabled-empty).
    pub fn take(&mut self) -> Timeseries {
        Timeseries {
            base_interval_ns: self.base_interval.as_nanos(),
            interval_ns: self.interval.as_nanos(),
            compactions: self.compactions,
            samples: std::mem::take(&mut self.samples),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(interval_ns: u64, capacity: usize) -> TimeseriesConfig {
        TimeseriesConfig {
            enabled: true,
            interval_ns,
            capacity,
        }
    }

    fn at(t_ns: u64, faults: u64) -> Sample {
        Sample {
            t_ns,
            faults_fetched: faults,
            ..Sample::default()
        }
    }

    #[test]
    fn disabled_sampler_is_inert() {
        let mut s = TimeseriesSampler::new(&TimeseriesConfig::default());
        assert!(!s.is_enabled());
        assert!(!s.is_due(SimTime::ZERO + SimDuration::from_secs(1)));
        s.record(SimTime::ZERO + SimDuration::from_secs(1), at(1, 1));
        s.force(at(2, 2));
        assert!(s.samples().is_empty());
        assert_eq!(s.take().samples.len(), 0);
    }

    #[test]
    fn samples_fire_on_the_grid() {
        let mut s = TimeseriesSampler::new(&cfg(100, 1024));
        // Passes end at 40, 80, 120, ... — the grid point at 100 fires on
        // the first pass ending at/after it.
        for t in (40..=400).step_by(40) {
            let now = SimTime::ZERO + SimDuration::from_nanos(t);
            if s.is_due(now) {
                s.record(now, at(t, t));
            }
        }
        let t: Vec<u64> = s.samples().iter().map(|x| x.t_ns).collect();
        assert_eq!(t, vec![120, 200, 320, 400]);
    }

    #[test]
    fn long_pass_yields_one_sample_not_a_burst() {
        let mut s = TimeseriesSampler::new(&cfg(10, 1024));
        let now = SimTime::ZERO + SimDuration::from_nanos(1000);
        s.record(now, at(1000, 1));
        assert_eq!(s.samples().len(), 1);
        assert!(!s.is_due(now), "grid advanced past the long pass");
        assert!(s.is_due(now + SimDuration::from_nanos(10)));
    }

    #[test]
    fn compaction_halves_and_doubles() {
        let mut s = TimeseriesSampler::new(&cfg(10, 8));
        for i in 1..=8u64 {
            s.record(SimTime::ZERO + SimDuration::from_nanos(i * 10), at(i * 10, i));
        }
        assert_eq!(s.samples().len(), 8);
        assert_eq!(s.compactions(), 0);
        // The 9th sample triggers compaction: odd indices survive.
        s.record(SimTime::ZERO + SimDuration::from_nanos(90), at(90, 9));
        assert_eq!(s.compactions(), 1);
        let t: Vec<u64> = s.samples().iter().map(|x| x.t_ns).collect();
        assert_eq!(t, vec![20, 40, 60, 80, 90]);
        let ts = s.take();
        assert_eq!(ts.base_interval_ns, 10);
        assert_eq!(ts.interval_ns, 20);
        assert_eq!(ts.compactions, 1);
    }

    #[test]
    fn compaction_never_reallocates() {
        let mut s = TimeseriesSampler::new(&cfg(1, 16));
        let cap0 = s.samples.capacity();
        for i in 1..=1000u64 {
            s.record(SimTime::ZERO + SimDuration::from_nanos(i), at(i, i));
        }
        assert!(s.compactions() > 0);
        assert!(s.samples().len() <= 16);
        assert_eq!(s.samples.capacity(), cap0, "buffer never regrew");
    }

    #[test]
    fn force_replaces_or_appends_tail() {
        let mut s = TimeseriesSampler::new(&cfg(10, 8));
        s.record(SimTime::ZERO + SimDuration::from_nanos(10), at(10, 1));
        s.force(at(15, 2));
        assert_eq!(s.samples().len(), 2);
        // Forcing at the same instant replaces instead of duplicating.
        s.force(at(15, 3));
        assert_eq!(s.samples().len(), 2);
        assert_eq!(s.samples()[1].faults_fetched, 3);
    }

    #[test]
    fn csv_round_trip_validates() {
        let ts = Timeseries {
            base_interval_ns: 10,
            interval_ns: 10,
            compactions: 0,
            samples: vec![at(10, 1), at(20, 5)],
        };
        let csv = ts.to_csv();
        assert!(csv.starts_with("t_ns,faults_fetched,"));
        let stats = validate_csv(&csv).expect("valid CSV");
        assert_eq!(stats.rows, 2);
    }

    #[test]
    fn validate_csv_rejects_bad_streams() {
        let header = Timeseries::csv_header();
        let row = |t: u64, f: u64| {
            let mut cells = vec![t.to_string(), f.to_string()];
            cells.extend(std::iter::repeat("0".to_string()).take(SAMPLE_COLUMNS.len() - 2));
            cells.join(",")
        };
        // Wrong header.
        assert!(validate_csv("a,b\n1,2\n").is_err());
        // Non-monotonic time.
        let bad_t = format!("{header}\n{}\n{}\n", row(20, 1), row(10, 2));
        assert!(validate_csv(&bad_t).unwrap_err().contains("t_ns"));
        // Decreasing counter.
        let bad_c = format!("{header}\n{}\n{}\n", row(10, 5), row(20, 4));
        assert!(validate_csv(&bad_c).unwrap_err().contains("faults_fetched"));
        // Non-numeric cell.
        let bad_cell = format!("{header}\n{}\n", row(10, 1).replace("10", "x"));
        assert!(validate_csv(&bad_cell).is_err());
    }

    #[test]
    fn coverage_basis_points() {
        assert_eq!(Sample::coverage_bp(0, 0), 0);
        assert_eq!(Sample::coverage_bp(50, 100), 5000);
        assert_eq!(Sample::coverage_bp(100, 100), 10_000);
    }

    #[test]
    fn columns_cover_every_sample_field() {
        // 26 public fields in Sample; keep the registry in lockstep.
        let s = Sample {
            t_ns: 1,
            faults_fetched: 2,
            duplicate_faults: 3,
            pages_faulted_in: 4,
            pages_prefetched: 5,
            migrated_bytes_h2d: 6,
            migrated_bytes_d2h: 7,
            evictions: 8,
            pages_evicted: 9,
            thrash_pins: 10,
            refaults: 11,
            replays: 12,
            batches: 13,
            resident_pages: 14,
            lru_blocks: 15,
            batch_ns_p50: 16,
            batch_ns_p95: 17,
            batch_ns_p99: 18,
            prefetch_coverage_bp: 19,
            attr_cold_faults: 20,
            attr_refault_used_faults: 21,
            attr_refault_unused_faults: 22,
            attr_prefetch_hit_faults: 23,
            attr_replay_dup_faults: 24,
            attr_prefetch_evicted_pages: 25,
            attr_evicted_used_pages: 26,
        };
        let vals: Vec<u64> = SAMPLE_COLUMNS.iter().map(|c| (c.get)(&s)).collect();
        let want: Vec<u64> = (1..=26).collect();
        assert_eq!(vals, want, "every field extracted exactly once, in order");
    }
}
