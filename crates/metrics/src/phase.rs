//! Host wall-time accounting for the driver's two-phase batch service:
//! the serial front half (fetch/sort, replay policy, ordered commit with
//! allocation and eviction) versus the parallel planning half (per-VABlock
//! service windows fanned out over the worker pool).
//!
//! These are *host* wall-clock measurements — deliberately kept out of
//! [`SimReport`](../uvm_sim/struct.SimReport.html)-style serialized
//! results so simulated output stays bit-identical across worker counts
//! and hosts. Drivers accumulate a [`ServicePhaseWall`] locally and flush
//! it into the process-global totals on drop; the `repro` harness drains
//! the totals per experiment to report Amdahl overhead in
//! `BENCH_hotpaths.json`.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wall-time split of the driver's batch-service pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServicePhaseWall {
    /// Wall nanoseconds in the serial front half (everything in a pass
    /// except the planning phase).
    pub serial_front_ns: u64,
    /// Wall nanoseconds the planning phase occupied (its critical path:
    /// dispatch to join, or the serial loop when run inline).
    pub parallel_service_ns: u64,
    /// Nanoseconds of planning work summed over every participant
    /// (main thread + workers). `busy / (wall × workers)` is the
    /// effective worker utilisation.
    pub service_busy_ns: u64,
    /// VABlock service windows planned.
    pub planned_groups: u64,
    /// Passes whose planning phase ran on the worker pool.
    pub parallel_batches: u64,
    /// Pooled plans recomputed serially at commit because an eviction
    /// earlier in the same batch invalidated the batch-start snapshot.
    /// A host-side implementation artifact: the fused serial path plans
    /// against current state and never replans, so this must not live in
    /// the simulated `Counters`.
    pub plan_replans: u64,
    /// Service workers configured (1 = serial).
    pub workers: u64,
}

impl ServicePhaseWall {
    /// Merge another accumulator into this one (`workers` takes the max).
    pub fn merge(&mut self, o: &ServicePhaseWall) {
        self.serial_front_ns += o.serial_front_ns;
        self.parallel_service_ns += o.parallel_service_ns;
        self.service_busy_ns += o.service_busy_ns;
        self.planned_groups += o.planned_groups;
        self.parallel_batches += o.parallel_batches;
        self.plan_replans += o.plan_replans;
        self.workers = self.workers.max(o.workers);
    }

    /// Effective worker utilisation of the planning phase: busy time over
    /// `workers` times the phase's wall time. 1.0 = perfect scaling, low
    /// values = workers idling on dispatch/join overhead or imbalance.
    pub fn utilisation(&self) -> f64 {
        let denom = self.parallel_service_ns.saturating_mul(self.workers.max(1));
        if denom == 0 {
            0.0
        } else {
            self.service_busy_ns as f64 / denom as f64
        }
    }

    /// Fraction of measured service wall time spent in the serial front —
    /// the Amdahl bound on intra-point scaling.
    pub fn serial_fraction(&self) -> f64 {
        let total = self.serial_front_ns + self.parallel_service_ns;
        if total == 0 {
            0.0
        } else {
            self.serial_front_ns as f64 / total as f64
        }
    }
}

static SERIAL_FRONT_NS: AtomicU64 = AtomicU64::new(0);
static PARALLEL_SERVICE_NS: AtomicU64 = AtomicU64::new(0);
static SERVICE_BUSY_NS: AtomicU64 = AtomicU64::new(0);
static PLANNED_GROUPS: AtomicU64 = AtomicU64::new(0);
static PARALLEL_BATCHES: AtomicU64 = AtomicU64::new(0);
static PLAN_REPLANS: AtomicU64 = AtomicU64::new(0);
static WORKERS_MAX: AtomicU64 = AtomicU64::new(0);

/// Add a driver's accumulated phase walls to the process-global totals
/// (called when a driver is dropped; thread-safe).
pub fn record(w: &ServicePhaseWall) {
    SERIAL_FRONT_NS.fetch_add(w.serial_front_ns, Ordering::Relaxed);
    PARALLEL_SERVICE_NS.fetch_add(w.parallel_service_ns, Ordering::Relaxed);
    SERVICE_BUSY_NS.fetch_add(w.service_busy_ns, Ordering::Relaxed);
    PLANNED_GROUPS.fetch_add(w.planned_groups, Ordering::Relaxed);
    PARALLEL_BATCHES.fetch_add(w.parallel_batches, Ordering::Relaxed);
    PLAN_REPLANS.fetch_add(w.plan_replans, Ordering::Relaxed);
    WORKERS_MAX.fetch_max(w.workers, Ordering::Relaxed);
}

/// Drain the process-global totals, resetting them to zero. The `repro`
/// harness calls this after each experiment.
pub fn take() -> ServicePhaseWall {
    ServicePhaseWall {
        serial_front_ns: SERIAL_FRONT_NS.swap(0, Ordering::Relaxed),
        parallel_service_ns: PARALLEL_SERVICE_NS.swap(0, Ordering::Relaxed),
        service_busy_ns: SERVICE_BUSY_NS.swap(0, Ordering::Relaxed),
        planned_groups: PLANNED_GROUPS.swap(0, Ordering::Relaxed),
        parallel_batches: PARALLEL_BATCHES.swap(0, Ordering::Relaxed),
        plan_replans: PLAN_REPLANS.swap(0, Ordering::Relaxed),
        workers: WORKERS_MAX.swap(0, Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = ServicePhaseWall {
            serial_front_ns: 10,
            parallel_service_ns: 20,
            service_busy_ns: 30,
            planned_groups: 4,
            parallel_batches: 1,
            plan_replans: 2,
            workers: 2,
        };
        let b = ServicePhaseWall {
            serial_front_ns: 1,
            parallel_service_ns: 2,
            service_busy_ns: 3,
            planned_groups: 5,
            parallel_batches: 0,
            plan_replans: 1,
            workers: 4,
        };
        a.merge(&b);
        assert_eq!(a.serial_front_ns, 11);
        assert_eq!(a.parallel_service_ns, 22);
        assert_eq!(a.service_busy_ns, 33);
        assert_eq!(a.planned_groups, 9);
        assert_eq!(a.parallel_batches, 1);
        assert_eq!(a.plan_replans, 3);
        assert_eq!(a.workers, 4);
    }

    #[test]
    fn utilisation_and_serial_fraction() {
        let w = ServicePhaseWall {
            serial_front_ns: 75,
            parallel_service_ns: 25,
            service_busy_ns: 50,
            planned_groups: 10,
            parallel_batches: 2,
            plan_replans: 0,
            workers: 4,
        };
        assert!((w.utilisation() - 0.5).abs() < 1e-12);
        assert!((w.serial_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(ServicePhaseWall::default().utilisation(), 0.0);
        assert_eq!(ServicePhaseWall::default().serial_fraction(), 0.0);
    }

    // `record`/`take` touch process-global state shared with other tests
    // in this binary, so only the invariant that recording then draining
    // returns at least what was recorded is asserted.
    #[test]
    fn record_take_roundtrip() {
        let w = ServicePhaseWall {
            serial_front_ns: 7,
            parallel_service_ns: 8,
            service_busy_ns: 9,
            planned_groups: 10,
            parallel_batches: 11,
            plan_replans: 1,
            workers: 3,
        };
        record(&w);
        let got = take();
        assert!(got.serial_front_ns >= 7);
        assert!(got.parallel_service_ns >= 8);
        assert!(got.workers >= 3);
        // Drained: a fresh take sees zeros unless another test interleaved.
    }
}
