//! Optional per-event trace capture for the access-pattern figures.
//!
//! Figure 7 plots each driver-processed fault as (occurrence order, page
//! index); Figure 8 additionally plots evictions on the same timeline.
//! The recorder stores one compact record per event and is disabled by
//! default so large sweeps pay nothing.

use serde::{Deserialize, Serialize};
use sim_engine::SimTime;

/// What kind of event a trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A fault processed by the driver.
    Fault,
    /// A page prefetched by the driver.
    Prefetch,
    /// A VABlock eviction (page = first page of the evicted block).
    Eviction,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Relative processing order (0-based occurrence index).
    pub order: u64,
    /// Global page index the event concerns.
    pub page: u64,
    /// Virtual time of the event.
    pub time: SimTime,
    /// Event kind.
    pub kind: EventKind,
}

/// Default capacity of an [`TraceRecorder::enabled`] recorder: 4 Mi
/// events (~128 MiB). Large enough for every quick/default-scale figure;
/// a full-scale (12 GB) run overflows it gracefully — later events drop
/// and [`TraceRecorder::dropped`] counts them.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 22;

/// Recorder for driver events. Construct with [`TraceRecorder::enabled`]
/// to capture, [`TraceRecorder::disabled`] (or `default()`) to discard.
///
/// The buffer is bounded: once `capacity` events are captured, further
/// events are counted in [`TraceRecorder::dropped`] and discarded, so
/// enabling tracing on a full-scale run cannot grow without limit. The
/// fault occurrence counter keeps advancing past capacity, so the `order`
/// of captured events always reflects the true global fault order.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
    capture: bool,
    next_order: u64,
    capacity: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// A recorder that captures up to [`DEFAULT_TRACE_CAPACITY`] events.
    pub fn enabled() -> Self {
        TraceRecorder::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A recorder that captures up to `capacity` events, then counts
    /// drops.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRecorder {
            events: Vec::new(),
            capture: true,
            next_order: 0,
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// A recorder that discards events (zero overhead beyond the branch).
    pub fn disabled() -> Self {
        TraceRecorder::default()
    }

    /// True if capturing.
    pub fn is_enabled(&self) -> bool {
        self.capture
    }

    /// Record an event (no-op when disabled). Fault events advance the
    /// occurrence counter; prefetch/eviction events share the current one
    /// so they align with the fault timeline.
    pub fn record(&mut self, kind: EventKind, page: u64, time: SimTime) {
        if !self.capture {
            return;
        }
        let order = self.next_order;
        if matches!(kind, EventKind::Fault) {
            self.next_order += 1;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent {
            order,
            page,
            time,
            kind,
        });
    }

    /// Events dropped because the buffer was at capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// All captured events in capture order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render events as CSV (`order,page,time_ns,kind`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("order,page,time_ns,kind\n");
        for e in &self.events {
            let kind = match e.kind {
                EventKind::Fault => "fault",
                EventKind::Prefetch => "prefetch",
                EventKind::Eviction => "eviction",
            };
            out.push_str(&format!(
                "{},{},{},{}\n",
                e.order,
                e.page,
                e.time.as_nanos(),
                kind
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_discards() {
        let mut r = TraceRecorder::disabled();
        r.record(EventKind::Fault, 1, SimTime::ZERO);
        assert!(r.is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn fault_order_increments_only_on_faults() {
        let mut r = TraceRecorder::enabled();
        r.record(EventKind::Fault, 10, SimTime::ZERO);
        r.record(EventKind::Prefetch, 11, SimTime::ZERO);
        r.record(EventKind::Fault, 12, SimTime::ZERO);
        r.record(EventKind::Eviction, 0, SimTime::ZERO);
        let orders: Vec<u64> = r.events().iter().map(|e| e.order).collect();
        assert_eq!(orders, vec![0, 1, 1, 2]);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn capacity_bounds_capture_but_not_order() {
        let mut r = TraceRecorder::with_capacity(2);
        for page in 0..5u64 {
            r.record(EventKind::Fault, page, SimTime::ZERO);
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        // The occurrence counter kept advancing past capacity.
        r.events(); // captured orders are 0 and 1
        let mut r2 = TraceRecorder::with_capacity(2);
        for page in 0..3u64 {
            r2.record(EventKind::Fault, page, SimTime::ZERO);
        }
        r2.record(EventKind::Eviction, 0, SimTime::ZERO);
        assert_eq!(r2.dropped(), 2);
        // A captured event after drops would carry order 3 — dropped here,
        // but next_order is 3, proving global order is preserved.
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut r = TraceRecorder::enabled();
        r.record(EventKind::Fault, 5, SimTime::from_nanos(42));
        let csv = r.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("order,page,time_ns,kind"));
        assert_eq!(lines.next(), Some("0,5,42,fault"));
        assert_eq!(lines.next(), None);
    }
}
