//! Chrome-trace / Perfetto JSON export of span traces, plus a validator
//! for the trace-event-format invariants.
//!
//! The export uses the JSON *object* flavour of the [trace event
//! format]: `{"traceEvents": [...], "displayTimeUnit": "ms", "uvmSim":
//! {...}}`. Each simulated run becomes one *process* (`pid`) with a
//! `process_name` metadata record; the driver timeline is `tid` 1 and
//! per-page fault/prefetch/eviction instants (when the fault trace was
//! captured) land on `tid` 2. Container spans are `B`/`E` pairs, leaf
//! phases are complete `X` events, markers are instants (`i`).
//!
//! `ts`/`dur` are in microseconds (the format's unit); every timed event
//! additionally carries exact integer nanoseconds in `args.ns` (and
//! `args.dns` for durations) so [`validate`] can reconcile span time
//! against the run's [`Timers`] totals bit-exactly: for every process,
//! `sum(leaf X durations by category) + dropped remainder == totals`
//! recorded in the file's `uvmSim.points` section, and within every
//! `pass` span the leaf durations sum to the pass's `B`→`E` extent.
//!
//! Load exported files in [Perfetto UI](https://ui.perfetto.dev) or
//! `chrome://tracing` (see README).
//!
//! [trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::span::{SpanPhase, SpanTrace};
use crate::timers::{Category, Timers};
use crate::trace::{EventKind, TraceEvent};
use serde::Value;
use sim_engine::SimDuration;

/// One run's contribution to a combined Chrome trace.
#[derive(Debug, Clone)]
pub struct ChromePoint {
    /// Human-readable run label (becomes the process name).
    pub label: String,
    /// The run's span capture.
    pub spans: SpanTrace,
    /// Per-fault/prefetch/eviction instants (empty unless captured).
    pub faults: Vec<TraceEvent>,
    /// Fault-trace events dropped at the fault recorder's capacity.
    pub fault_drops: u64,
    /// The run's per-category timer totals (ground truth for the
    /// reconciliation invariant).
    pub timers: Timers,
}

/// Thread id of the driver span timeline within each process.
pub const TID_DRIVER: u64 = 1;
/// Thread id of the per-page fault/prefetch/eviction instants.
pub const TID_PAGES: u64 = 2;

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn push_meta(events: &mut Vec<Value>, pid: u64, tid: u64, name: &str, value: &str) {
    events.push(map(vec![
        ("name", Value::Str(name.into())),
        ("ph", Value::Str("M".into())),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
        (
            "args",
            map(vec![("name", Value::Str(value.into()))]),
        ),
    ]));
}

/// Render `points` as a Chrome-trace JSON document (compact, one event
/// per `traceEvents` element). Deterministic: identical inputs produce
/// byte-identical output (wall-clock stamps are carried under
/// `args.wall_ns` and vary run to run, but the sim-time timeline and
/// structure do not).
pub fn render(points: &[ChromePoint]) -> String {
    let mut events: Vec<Value> = Vec::new();
    let mut meta_points: Vec<Value> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let pid = i as u64 + 1;
        push_meta(&mut events, pid, TID_DRIVER, "process_name", &p.label);
        push_meta(&mut events, pid, TID_DRIVER, "thread_name", "uvm-driver");
        if !p.faults.is_empty() {
            push_meta(&mut events, pid, TID_PAGES, "thread_name", "page-events");
        }

        // Span events are recorded in emission order; leaves are recorded
        // when they *end*, so re-sort stably by sim timestamp (stable
        // keeps B-before-X-before-E at equal ts from emission order…
        // almost: a leaf starting exactly at its parent's B shares its
        // ts but was emitted later, which is the order viewers expect).
        let mut order: Vec<usize> = (0..p.spans.events.len()).collect();
        order.sort_by_key(|&k| p.spans.events[k].ts);
        for &k in &order {
            let e = &p.spans.events[k];
            let ph = match e.phase {
                SpanPhase::Begin => "B",
                SpanPhase::End => "E",
                SpanPhase::Leaf => "X",
                SpanPhase::Instant => "i",
            };
            let mut args = vec![
                ("ns", Value::U64(e.ts.as_nanos())),
                ("wall_ns", Value::U64(e.wall_ns)),
                ("a", Value::U64(e.a)),
                ("b", Value::U64(e.b)),
            ];
            let mut ev = vec![
                ("name", Value::Str(e.kind.label().into())),
                ("cat", Value::Str(e.cat.label().into())),
                ("ph", Value::Str(ph.into())),
                ("ts", Value::F64(e.ts.as_micros_f64())),
                ("pid", Value::U64(pid)),
                ("tid", Value::U64(TID_DRIVER)),
            ];
            if e.phase == SpanPhase::Leaf {
                ev.push(("dur", Value::F64(e.dur.as_micros_f64())));
                args.push(("dns", Value::U64(e.dur.as_nanos())));
            }
            if e.phase == SpanPhase::Instant {
                ev.push(("s", Value::Str("t".into())));
            }
            ev.push(("args", map(args)));
            events.push(map(ev));
        }

        for f in &p.faults {
            let name = match f.kind {
                EventKind::Fault => "fault",
                EventKind::Prefetch => "prefetch",
                EventKind::Eviction => "eviction",
            };
            events.push(map(vec![
                ("name", Value::Str(name.into())),
                ("cat", Value::Str("page".into())),
                ("ph", Value::Str("i".into())),
                ("ts", Value::F64(f.time.as_micros_f64())),
                ("pid", Value::U64(pid)),
                ("tid", Value::U64(TID_PAGES)),
                ("s", Value::Str("t".into())),
                (
                    "args",
                    map(vec![
                        ("ns", Value::U64(f.time.as_nanos())),
                        ("page", Value::U64(f.page)),
                        ("order", Value::U64(f.order)),
                    ]),
                ),
            ]));
        }

        let timer_ns = |t: &Timers| {
            Value::Map(
                Category::ALL
                    .iter()
                    .map(|&c| (c.label().to_string(), Value::U64(t.get(c).as_nanos())))
                    .collect(),
            )
        };
        meta_points.push(map(vec![
            ("pid", Value::U64(pid)),
            ("label", Value::Str(p.label.clone())),
            ("timers_ns", timer_ns(&p.timers)),
            ("spans_captured", Value::U64(p.spans.events.len() as u64)),
            ("spans_dropped", Value::U64(p.spans.dropped)),
            ("dropped_ns", timer_ns(&p.spans.dropped_time)),
            ("fault_events", Value::U64(p.faults.len() as u64)),
            ("fault_events_dropped", Value::U64(p.fault_drops)),
        ]));
    }
    let doc = map(vec![
        ("traceEvents", Value::Seq(events)),
        ("displayTimeUnit", Value::Str("ms".into())),
        ("uvmSim", map(vec![("points", Value::Seq(meta_points))])),
    ]);
    serde_json::to_string(&doc).expect("serialize chrome trace")
}

/// Summary statistics [`validate`] returns for a well-formed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Processes (simulated runs) in the file.
    pub processes: u64,
    /// Total events in `traceEvents` (including metadata records).
    pub events: u64,
    /// Complete (`X`) leaf spans.
    pub leaf_spans: u64,
    /// `B`/`E` container span pairs.
    pub container_spans: u64,
    /// Instant events.
    pub instants: u64,
    /// Events dropped at recorder capacity, summed over processes.
    pub dropped: u64,
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

fn get<'a>(obj: &'a Value, key: &str) -> Option<&'a Value> {
    match obj {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// Validate a Chrome-trace JSON document against the trace-event-format
/// invariants plus this crate's reconciliation guarantees:
///
/// 1. the document parses and has a `traceEvents` array;
/// 2. every event has a string `name`, a known `ph`, and integer
///    `pid`/`tid`; non-metadata events have a numeric `ts` (and `X` has a
///    non-negative `dur`);
/// 3. per `(pid, tid)` track, `ts` (exact `args.ns`) is monotonically
///    non-decreasing in file order;
/// 4. per track, `B`/`E` events balance with stack discipline (every `B`
///    has a matching `E`, names matching);
/// 5. within every complete `pass` container, leaf `X` durations sum
///    exactly to the pass's `B`→`E` extent (the per-batch breakdown is
///    complete);
/// 6. per process, leaf `X` durations by category plus the recorded
///    dropped remainder equal the `uvmSim.points` timer totals.
///
/// Returns summary stats, or a description of the first violation.
pub fn validate(json: &str) -> Result<TraceStats, String> {
    let doc: Value = serde_json::from_str(json).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = match get(&doc, "traceEvents") {
        Some(Value::Seq(events)) => events,
        _ => return Err("missing traceEvents array".into()),
    };

    let mut stats = TraceStats {
        events: events.len() as u64,
        ..TraceStats::default()
    };
    // Per-(pid,tid) last-seen ns timestamp, and per-track B/E name stack.
    let mut last_ts: Vec<((u64, u64), u64)> = Vec::new();
    let mut stacks: Vec<((u64, u64), Vec<(String, u64)>)> = Vec::new();
    // Per-pid leaf ns by category label, and per-pass accounting:
    // (pid, pass_start_ns, leaf_ns_inside) while a pass is open.
    let mut leaf_ns: Vec<(u64, Vec<(String, u64)>)> = Vec::new();
    let mut open_pass: Vec<(u64, u64, u64)> = Vec::new();
    let mut pids: Vec<u64> = Vec::new();
    // Processes whose recorder dropped events at capacity: their leaves
    // can no longer tile every pass exactly (only the per-category totals
    // stay reconciled via dropped_ns), so the pass-extent check relaxes
    // to `<=` for them.
    let mut lossy_pids: Vec<u64> = Vec::new();
    if let Some(Value::Seq(points)) = get(&doc, "uvmSim").and_then(|u| get(u, "points")) {
        for p in points {
            let dropped = get(p, "spans_dropped").and_then(as_u64).unwrap_or(0);
            if dropped > 0 {
                if let Some(pid) = get(p, "pid").and_then(as_u64) {
                    lossy_pids.push(pid);
                }
            }
        }
    }

    for (i, ev) in events.iter().enumerate() {
        let err = |msg: String| format!("event {i}: {msg}");
        let name = match get(ev, "name") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err(err("missing string `name`".into())),
        };
        let ph = match get(ev, "ph") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err(err("missing string `ph`".into())),
        };
        let pid = get(ev, "pid")
            .and_then(as_u64)
            .ok_or_else(|| err("missing integer `pid`".into()))?;
        let tid = get(ev, "tid")
            .and_then(as_u64)
            .ok_or_else(|| err("missing integer `tid`".into()))?;
        if pid == 0 {
            return Err(err("pid must be nonzero".into()));
        }
        if !pids.contains(&pid) {
            pids.push(pid);
        }
        match ph.as_str() {
            "M" => continue,
            "B" | "E" | "X" | "i" => {}
            other => return Err(err(format!("unknown ph `{other}`"))),
        }
        get(ev, "ts")
            .and_then(as_f64)
            .ok_or_else(|| err("missing numeric `ts`".into()))?;
        let ns = get(ev, "args")
            .and_then(|a| get(a, "ns"))
            .and_then(as_u64)
            .ok_or_else(|| err("missing exact args.ns timestamp".into()))?;

        let track = (pid, tid);
        match last_ts.iter_mut().find(|(k, _)| *k == track) {
            Some((_, last)) => {
                if ns < *last {
                    return Err(err(format!(
                        "ts not monotonic on track {track:?}: {ns} after {last}"
                    )));
                }
                *last = ns;
            }
            None => last_ts.push((track, ns)),
        }

        let stack = match stacks.iter_mut().find(|(k, _)| *k == track) {
            Some((_, s)) => s,
            None => {
                stacks.push((track, Vec::new()));
                &mut stacks.last_mut().unwrap().1
            }
        };
        match ph.as_str() {
            "B" => {
                stack.push((name.clone(), ns));
                if name == "pass" {
                    open_pass.push((pid, ns, 0));
                }
            }
            "E" => {
                let (open_name, _) = stack
                    .pop()
                    .ok_or_else(|| err(format!("`E` for `{name}` with no open `B`")))?;
                if open_name != name {
                    return Err(err(format!(
                        "`E` for `{name}` closes open `B` for `{open_name}`"
                    )));
                }
                stats.container_spans += 1;
                if name == "pass" {
                    let (ppid, start, leaves) = open_pass
                        .pop()
                        .ok_or_else(|| err("`E` for pass with no open pass".into()))?;
                    debug_assert_eq!(ppid, pid);
                    let extent = ns - start;
                    let exact = !lossy_pids.contains(&pid);
                    if (exact && leaves != extent) || leaves > extent {
                        return Err(err(format!(
                            "pass at {start}ns: leaf spans sum to {leaves}ns, \
                             pass extent is {extent}ns"
                        )));
                    }
                }
            }
            "X" => {
                stats.leaf_spans += 1;
                let dur = get(ev, "dur")
                    .and_then(as_f64)
                    .ok_or_else(|| err("`X` missing `dur`".into()))?;
                if dur < 0.0 {
                    return Err(err("negative `dur`".into()));
                }
                let dns = get(ev, "args")
                    .and_then(|a| get(a, "dns"))
                    .and_then(as_u64)
                    .ok_or_else(|| err("`X` missing exact args.dns duration".into()))?;
                let cat = match get(ev, "cat") {
                    Some(Value::Str(s)) => s.clone(),
                    _ => return Err(err("`X` missing `cat`".into())),
                };
                if let Some((_, pass_start, leaves)) =
                    open_pass.iter_mut().rev().find(|(p, _, _)| *p == pid)
                {
                    if ns >= *pass_start {
                        *leaves += dns;
                    }
                }
                let per_cat = match leaf_ns.iter_mut().find(|(k, _)| *k == pid) {
                    Some((_, m)) => m,
                    None => {
                        leaf_ns.push((pid, Vec::new()));
                        &mut leaf_ns.last_mut().unwrap().1
                    }
                };
                match per_cat.iter_mut().find(|(k, _)| *k == cat) {
                    Some((_, total)) => *total += dns,
                    None => per_cat.push((cat, dns)),
                }
            }
            "i" => stats.instants += 1,
            _ => unreachable!(),
        }
    }

    for (track, stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!("track {track:?}: `B` for `{name}` never closed"));
        }
    }
    stats.processes = pids.len() as u64;

    // Reconciliation against the uvmSim totals, when present.
    if let Some(points) = get(&doc, "uvmSim").and_then(|u| get(u, "points")) {
        let Value::Seq(points) = points else {
            return Err("uvmSim.points is not an array".into());
        };
        for p in points {
            let pid = get(p, "pid")
                .and_then(as_u64)
                .ok_or("uvmSim point missing pid")?;
            stats.dropped += get(p, "spans_dropped").and_then(as_u64).unwrap_or(0);
            let empty = Vec::new();
            let captured = leaf_ns
                .iter()
                .find(|(k, _)| *k == pid)
                .map_or(&empty, |(_, m)| m);
            for cat in Category::ALL {
                let label = cat.label();
                let want = get(p, "timers_ns")
                    .and_then(|t| get(t, label))
                    .and_then(as_u64)
                    .ok_or_else(|| format!("pid {pid}: missing timers_ns.{label}"))?;
                let dropped = get(p, "dropped_ns")
                    .and_then(|t| get(t, label))
                    .and_then(as_u64)
                    .unwrap_or(0);
                let got = captured
                    .iter()
                    .find(|(k, _)| k == label)
                    .map_or(0, |(_, v)| *v)
                    + dropped;
                if got != want {
                    return Err(format!(
                        "pid {pid}: category `{label}` spans sum to {got}ns \
                         (incl. {dropped}ns dropped) but timers report {want}ns"
                    ));
                }
            }
        }
    }
    Ok(stats)
}

/// Render the flamegraph-style text summary of one run's spans, with the
/// dropped-event count the bounded recorder reports.
pub fn flame_text(trace: &SpanTrace) -> String {
    let rows = crate::span::flame_summary(&trace.events);
    let total: SimDuration = rows.iter().map(|r| r.total).sum();
    let mut out = String::new();
    for r in &rows {
        let pct = if total.as_nanos() == 0 {
            0.0
        } else {
            100.0 * r.total.as_nanos() as f64 / total.as_nanos() as f64
        };
        out.push_str(&format!(
            "  {:<20} {:>10}x {:>14} {:>5.1}%\n",
            r.label,
            r.count,
            r.total.to_string(),
            pct
        ));
    }
    if trace.dropped > 0 {
        out.push_str(&format!(
            "  ({} events dropped at capacity; dropped leaf time remains \
             accounted per category)\n",
            trace.dropped
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanCat, SpanKind, SpanRecorder};
    use sim_engine::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    /// A tiny two-pass capture whose leaves reconcile with its timers.
    fn sample_point() -> ChromePoint {
        let mut r = SpanRecorder::bounded(64);
        let mut timers = Timers::default();
        let mut charge = |r: &mut SpanRecorder, kind, cat, ts: u64, ns: u64| {
            let d = SimDuration::from_nanos(ns);
            timers.charge(cat, d);
            r.leaf(kind, cat, t(ts), d);
        };
        r.begin(SpanKind::Pass, SpanCat::Batch, t(0), 0, 4);
        charge(&mut r, SpanKind::FetchSort, Category::Preprocess, 0, 10);
        r.begin(SpanKind::VablockService, SpanCat::Vablock, t(10), 3, 0);
        charge(&mut r, SpanKind::PmaAlloc, Category::ServicePma, 10, 5);
        charge(&mut r, SpanKind::MigrateH2d, Category::ServiceMigrate, 15, 20);
        charge(&mut r, SpanKind::MapPages, Category::ServiceMap, 35, 5);
        r.end(SpanKind::VablockService, SpanCat::Vablock, t(40), 3, 0);
        charge(&mut r, SpanKind::ReplayIssue, Category::ReplayPolicy, 40, 2);
        r.instant(SpanKind::Replay, t(42), 1, 0);
        r.end(SpanKind::Pass, SpanCat::Batch, t(42), 0, 4);
        ChromePoint {
            label: "test: regular r=0.5".into(),
            spans: r.to_trace(),
            faults: vec![TraceEvent {
                order: 0,
                page: 123,
                time: t(5),
                kind: EventKind::Fault,
            }],
            fault_drops: 0,
            timers,
        }
    }

    #[test]
    fn render_validates_round_trip() {
        let json = render(&[sample_point()]);
        let stats = validate(&json).expect("valid trace");
        assert_eq!(stats.processes, 1);
        assert_eq!(stats.leaf_spans, 5);
        assert_eq!(stats.container_spans, 2);
        assert!(stats.instants >= 2); // replay marker + fault instant
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn render_is_deterministic_modulo_wall_time() {
        let a = render(&[sample_point()]);
        let b = render(&[sample_point()]);
        let strip = |s: &str| {
            // wall_ns values differ between captures; compare the rest.
            let mut out = String::new();
            for part in s.split("\"wall_ns\":") {
                out.push_str(part.split_once(',').map_or(part, |(_, rest)| rest));
            }
            out
        };
        assert_eq!(strip(&a), strip(&b));
    }

    #[test]
    fn validate_rejects_unbalanced_begin() {
        let json = r#"{"traceEvents":[
            {"name":"pass","cat":"batch","ph":"B","ts":0.0,"pid":1,"tid":1,"args":{"ns":0}}
        ]}"#;
        let err = validate(json).unwrap_err();
        assert!(err.contains("never closed"), "{err}");
    }

    #[test]
    fn validate_rejects_nonmonotonic_ts() {
        let json = r#"{"traceEvents":[
            {"name":"a","cat":"marker","ph":"i","ts":5.0,"pid":1,"tid":1,"args":{"ns":5000}},
            {"name":"b","cat":"marker","ph":"i","ts":1.0,"pid":1,"tid":1,"args":{"ns":1000}}
        ]}"#;
        let err = validate(json).unwrap_err();
        assert!(err.contains("monotonic"), "{err}");
    }

    #[test]
    fn validate_rejects_bad_pass_sum() {
        let json = r#"{"traceEvents":[
            {"name":"pass","cat":"batch","ph":"B","ts":0.0,"pid":1,"tid":1,"args":{"ns":0}},
            {"name":"fetch_sort","cat":"preprocess","ph":"X","ts":0.0,"dur":0.005,"pid":1,"tid":1,"args":{"ns":0,"dns":5}},
            {"name":"pass","cat":"batch","ph":"E","ts":0.1,"pid":1,"tid":1,"args":{"ns":100}}
        ]}"#;
        let err = validate(json).unwrap_err();
        assert!(err.contains("pass"), "{err}");
    }

    #[test]
    fn validate_catches_timer_mismatch() {
        let mut p = sample_point();
        p.timers.charge(Category::Eviction, SimDuration::from_nanos(999));
        let json = render(&[p]);
        let err = validate(&json).unwrap_err();
        assert!(err.contains("eviction"), "{err}");
    }

    #[test]
    fn dropped_leaf_time_still_reconciles() {
        // Capacity 3: the pass B + first leaf fit, later leaves drop, E
        // overshoots — the validator must still reconcile via dropped_ns.
        let mut r = SpanRecorder::bounded(3);
        let mut timers = Timers::default();
        r.begin(SpanKind::Pass, SpanCat::Batch, t(0), 0, 0);
        for i in 0..4u64 {
            let d = SimDuration::from_nanos(10);
            timers.charge(Category::ServiceMigrate, d);
            r.leaf(SpanKind::MigrateH2d, Category::ServiceMigrate, t(i * 10), d);
        }
        r.end(SpanKind::Pass, SpanCat::Batch, t(40), 0, 0);
        let point = ChromePoint {
            label: "dropped".into(),
            spans: r.to_trace(),
            faults: vec![],
            fault_drops: 0,
            timers,
        };
        // The captured pass no longer sums (leaves were dropped), so the
        // per-pass invariant is checked only when nothing dropped inside;
        // here we check the per-category reconciliation path: remove the
        // pass container to isolate it.
        let mut spans = point.spans.clone();
        spans.events.retain(|e| e.phase == SpanPhase::Leaf);
        let point = ChromePoint { spans, ..point };
        let stats = validate(&render(&[point])).expect("reconciles with drops");
        assert!(stats.dropped >= 2);
    }

    #[test]
    fn flame_text_mentions_drops() {
        let mut r = SpanRecorder::bounded(1);
        r.leaf(SpanKind::MapPages, Category::ServiceMap, t(0), SimDuration::from_nanos(5));
        r.leaf(SpanKind::MapPages, Category::ServiceMap, t(5), SimDuration::from_nanos(5));
        let text = flame_text(&r.to_trace());
        assert!(text.contains("map_pages"));
        assert!(text.contains("dropped"));
    }
}
