//! Property-based tests for the GPU-side substrate: page masks checked
//! against a naive bit-vector model, fault-buffer FIFO/capacity laws, and
//! engine completion invariants.

use gpu_model::{
    AccessType, BlockTrace, FaultBuffer, FaultBufferConfig, FaultEntry, GlobalPage, GpuConfig,
    GpuEngine, PageMask, Residency, WorkloadTrace,
};
use proptest::prelude::*;
use sim_engine::{SimDuration, SimRng, SimTime};

// ---------- PageMask vs a naive [bool; 512] model ----------

fn naive_from(indices: &[usize]) -> [bool; 512] {
    let mut a = [false; 512];
    for &i in indices {
        a[i] = true;
    }
    a
}

fn mask_from(indices: &[usize]) -> PageMask {
    let mut m = PageMask::EMPTY;
    for &i in indices {
        m.set(i);
    }
    m
}

proptest! {
    #[test]
    fn mask_count_matches_model(idx in proptest::collection::vec(0usize..512, 0..256)) {
        let m = mask_from(&idx);
        let model = naive_from(&idx);
        prop_assert_eq!(m.count(), model.iter().filter(|&&b| b).count());
        for (i, &want) in model.iter().enumerate() {
            prop_assert_eq!(m.get(i), want);
        }
    }

    #[test]
    fn mask_iter_set_matches_model(idx in proptest::collection::vec(0usize..512, 0..256)) {
        let m = mask_from(&idx);
        let model = naive_from(&idx);
        let got: Vec<usize> = m.iter_set().collect();
        let want: Vec<usize> = (0..512).filter(|&i| model[i]).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn mask_count_range_matches_model(
        idx in proptest::collection::vec(0usize..512, 0..256),
        level in 0usize..=9,
    ) {
        let m = mask_from(&idx);
        let model = naive_from(&idx);
        let len = 1usize << level;
        for start in (0..512).step_by(len) {
            let want = model[start..start + len].iter().filter(|&&b| b).count();
            prop_assert_eq!(m.count_range(start, len), want);
        }
    }

    #[test]
    fn mask_set_ops_match_model(
        a in proptest::collection::vec(0usize..512, 0..128),
        b in proptest::collection::vec(0usize..512, 0..128),
    ) {
        let (ma, mb) = (mask_from(&a), mask_from(&b));
        let (na, nb) = (naive_from(&a), naive_from(&b));
        for i in 0..512 {
            prop_assert_eq!(ma.union(&mb).get(i), na[i] || nb[i]);
            prop_assert_eq!(ma.intersect(&mb).get(i), na[i] && nb[i]);
            prop_assert_eq!(ma.difference(&mb).get(i), na[i] && !nb[i]);
        }
    }

    #[test]
    fn mask_set_range_fills_exactly(level in 0usize..=9, slot_seed in any::<u64>()) {
        let len = 1usize << level;
        let slot = (slot_seed as usize) % (512 / len);
        let mut m = PageMask::EMPTY;
        m.set_range(slot * len, len);
        prop_assert_eq!(m.count(), len);
        for i in 0..512 {
            prop_assert_eq!(m.get(i), (slot * len..(slot + 1) * len).contains(&i));
        }
    }
}

// ---------- FaultBuffer laws ----------

proptest! {
    #[test]
    fn buffer_is_fifo_and_bounded(
        pages in proptest::collection::vec(0u64..10_000, 1..200),
        capacity in 1usize..64,
    ) {
        let mut buf = FaultBuffer::new(FaultBufferConfig {
            capacity,
            ready_delay: SimDuration::ZERO,
        });
        let mut accepted = Vec::new();
        for &p in &pages {
            let e = FaultEntry {
                page: GlobalPage(p),
                access: AccessType::Read,
                timestamp: SimTime::ZERO,
                utlb: 0,
            };
            if buf.push(e) {
                accepted.push(p);
            }
        }
        prop_assert!(buf.len() <= capacity);
        prop_assert_eq!(buf.dropped() + buf.written(), pages.len() as u64);
        let (got, _) = buf.fetch(usize::MAX, SimTime::ZERO);
        let got: Vec<u64> = got.iter().map(|e| e.page.0).collect();
        prop_assert_eq!(got, accepted, "FIFO order of accepted entries");
    }

    #[test]
    fn buffer_flush_then_empty(
        n in 0usize..100,
        capacity in 1usize..128,
    ) {
        let mut buf = FaultBuffer::new(FaultBufferConfig {
            capacity,
            ready_delay: SimDuration::ZERO,
        });
        for i in 0..n {
            buf.push(FaultEntry {
                page: GlobalPage(i as u64),
                access: AccessType::Write,
                timestamp: SimTime::ZERO,
                utlb: 0,
            });
        }
        let discarded = buf.flush();
        prop_assert_eq!(discarded, n.min(capacity));
        prop_assert!(buf.is_empty());
        prop_assert_eq!(buf.flushed(), n.min(capacity) as u64);
    }
}

// ---------- Engine completion invariants ----------

struct AllResident;
impl Residency for AllResident {
    fn is_resident(&self, _page: GlobalPage) -> bool {
        true
    }
}

struct NothingThenAll {
    ready: std::cell::Cell<bool>,
}
impl Residency for NothingThenAll {
    fn is_resident(&self, _page: GlobalPage) -> bool {
        self.ready.get()
    }
}

fn arb_trace() -> impl Strategy<Value = WorkloadTrace> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(0u64..2048, 1..8), 1..6),
        1..20,
    )
    .prop_map(|blocks| {
        let bts: Vec<BlockTrace> = blocks
            .into_iter()
            .map(|steps| {
                let mut bt = BlockTrace::new(SimDuration::from_nanos(10));
                for step in steps {
                    bt.push_step(step.into_iter().map(GlobalPage), false);
                }
                bt
            })
            .collect();
        WorkloadTrace {
            name: "prop".into(),
            blocks: bts,
            footprint_pages: 2048,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fully_resident_trace_completes_without_faults(trace in arb_trace()) {
        let total_steps = trace.total_steps();
        let mut eng = GpuEngine::launch(GpuConfig::default(), trace, SimRng::from_seed(1));
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        eng.run(&AllResident, &mut buf, SimTime::ZERO);
        prop_assert!(eng.is_done());
        prop_assert_eq!(eng.counters().steps_completed, total_steps);
        prop_assert_eq!(eng.counters().faults_raised, 0);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn stalled_trace_completes_after_residency_arrives(trace in arb_trace()) {
        let total_steps = trace.total_steps();
        let oracle = NothingThenAll {
            ready: std::cell::Cell::new(false),
        };
        let mut eng = GpuEngine::launch(GpuConfig::default(), trace, SimRng::from_seed(2));
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        eng.run(&oracle, &mut buf, SimTime::ZERO);
        prop_assert!(!eng.is_done(), "must stall with nothing resident");
        prop_assert!(eng.counters().faults_raised > 0 || buf.dropped() == 0);
        // Residency arrives; one replay resumes everything.
        oracle.ready.set(true);
        eng.replay();
        eng.run(&oracle, &mut buf, SimTime::ZERO);
        prop_assert!(eng.is_done());
        prop_assert_eq!(eng.counters().steps_completed, total_steps);
    }

    #[test]
    fn engine_is_deterministic(trace in arb_trace(), seed in any::<u64>()) {
        let run = |t: WorkloadTrace| {
            let mut eng = GpuEngine::launch(GpuConfig::default(), t, SimRng::from_seed(seed));
            let mut buf = FaultBuffer::new(FaultBufferConfig::default());
            eng.run(&NothingThenAll { ready: std::cell::Cell::new(false) }, &mut buf, SimTime::ZERO);
            let (entries, _) = buf.fetch(usize::MAX, SimTime::ZERO);
            entries.iter().map(|e| e.page.0).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(trace.clone()), run(trace));
    }
}
