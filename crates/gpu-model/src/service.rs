//! Batch-service handoff types.
//!
//! The UVM driver services one fault batch in two halves: a planning half
//! that computes each VABlock's service window (page-mask math, prefetch
//! resolution, per-page cost computation) from a read-only snapshot of
//! block state, and a serial commit half that applies the plans in sorted
//! VABlock order (allocation, eviction, state commit, timer charges). The
//! planning half is pure, so it can fan out over a worker pool; this
//! module defines the plain-data record the two halves exchange.

use crate::mask::PageMask;
use sim_engine::SimDuration;

/// One VABlock's planned service window within a batch.
///
/// Computed against a snapshot of the block's state (identified by
/// `eviction_epoch`); the committer re-plans serially if an eviction
/// perturbed the block between planning and commit. All fields are
/// inline — a plan never touches the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServicePlan {
    /// New (valid, non-resident) faulted pages of the block.
    pub faulted: PageMask,
    /// Pages the prefetcher adds on top of `faulted`.
    pub prefetch: PageMask,
    /// `faulted ∪ prefetch` — every page to migrate.
    pub to_migrate: PageMask,
    /// Bit *i* set = allocation unit *i* of the block needs fresh
    /// physical backing (has pages to migrate and none backed yet).
    pub units_to_back: PageMask,
    /// `to_migrate.count()`, cached for the commit half.
    pub pages: u64,
    /// Zeroing cost of one freshly backed allocation unit.
    pub zero_cost: SimDuration,
    /// Host→device migration cost of the `pages` pages.
    pub migrate_cost: SimDuration,
    /// Mapping + membar + LRU-update cost of the `pages` pages.
    pub map_cost: SimDuration,
    /// The block's `eviction_count` when the plan was computed. A
    /// mismatch at commit time means an earlier group's eviction cleared
    /// this block's residency — the plan is stale and must be recomputed.
    pub eviction_epoch: u32,
}

impl ServicePlan {
    /// True when the batch holds no serviceable fault for the block
    /// (every faulted page was invalid or already resident).
    pub fn is_noop(&self) -> bool {
        self.faulted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop() {
        let p = ServicePlan::default();
        assert!(p.is_noop());
        assert_eq!(p.pages, 0);
        assert!(p.units_to_back.is_empty());
    }

    #[test]
    fn plan_with_faults_is_not_noop() {
        let mut p = ServicePlan::default();
        p.faulted.set(3);
        assert!(!p.is_noop());
    }
}
