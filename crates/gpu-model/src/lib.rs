//! # gpu-model
//!
//! GPU-side substrate for the UVM simulator: the pieces of the paper's
//! Figure 2 architecture that live on the device.
//!
//! * [`addr`] — global page numbering, VABlock indexing, access types.
//! * [`mask`] — 512-bit per-VABlock page masks (one bit per 4 KB page in a
//!   2 MB VABlock), the representation both the GPU page tables and the
//!   driver's prefetch tree compute over.
//! * [`fault`] — the replayable-fault machinery: fault entries, the
//!   circular hardware fault buffer with ready-bit semantics, overflow
//!   (entry drop) behaviour.
//! * [`access_counters`] — Volta-style memory access counters with
//!   threshold notifications (the paper's §VI-B3 hardware hook).
//! * [`engine`] — a loosely-timed execution model of the GPU: thread
//!   blocks with page-access traces, an SM-occupancy-limited block
//!   scheduler, per-µTLB fault deduplication, stall/replay semantics.
//! * [`dma`] — transfer accounting for the copy engines plus the explicit
//!   `cudaMemcpy`-style baseline used by Figure 1.
//! * [`service`] — batch-service handoff records exchanged between the
//!   driver's parallel planning half and its serial ordered commit half.
//!
//! The crate deliberately knows nothing about the UVM driver: residency is
//! abstracted behind the [`engine::Residency`] trait which the driver's
//! address-space bookkeeping implements.

#![warn(missing_docs)]

pub mod access_counters;
pub mod addr;
pub mod dma;
pub mod engine;
pub mod fault;
pub mod mask;
pub mod service;

pub use access_counters::{AccessCounterConfig, AccessCounters, AccessNotification};
pub use addr::{AccessType, GlobalPage, VaBlockIdx};
pub use engine::{BlockTrace, EngineStatus, GpuConfig, GpuEngine, Residency, WorkloadTrace};
pub use fault::{FaultBuffer, FaultBufferConfig, FaultEntry};
pub use mask::PageMask;
pub use service::ServicePlan;
