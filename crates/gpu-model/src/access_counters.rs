//! Volta-style memory access counters (paper §VI-B3).
//!
//! Since Volta, NVIDIA GPUs can count accesses to remote or local memory
//! at configurable granularity and raise a *notification* into a buffer
//! once a region's count crosses a threshold — information the stock UVM
//! driver does not use, but which the paper identifies as an opening for
//! smarter eviction (and which Ganguly et al. simulate). This module
//! models that hardware: per-region counters, a notify threshold, and a
//! bounded notification buffer with drop-on-overflow semantics.

use serde::{Deserialize, Serialize};
use sim_engine::units::PAGES_PER_VABLOCK;
use std::collections::HashMap;

/// Access-counter hardware configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessCounterConfig {
    /// Enable the counters (off by default, like the stock driver).
    pub enabled: bool,
    /// Counting granularity in pages (Volta supports 64 KB–16 MB; the
    /// default matches the VABlock so notifications align with the
    /// driver's eviction unit).
    pub granularity_pages: u64,
    /// Accesses to a region before a notification fires (and the
    /// region's counter resets).
    pub threshold: u32,
    /// Notification buffer capacity; overflow drops notifications (and
    /// counts them).
    pub buffer_capacity: usize,
}

impl Default for AccessCounterConfig {
    fn default() -> Self {
        AccessCounterConfig {
            enabled: false,
            granularity_pages: PAGES_PER_VABLOCK as u64,
            threshold: 256,
            buffer_capacity: 256,
        }
    }
}

/// One access-counter notification: a region got hot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessNotification {
    /// Region index (page index ÷ granularity).
    pub region: u64,
    /// Counter value at notification time (= threshold).
    pub count: u32,
}

impl AccessNotification {
    /// First page of the notifying region under `granularity_pages`.
    pub fn first_page(&self, granularity_pages: u64) -> u64 {
        self.region * granularity_pages
    }
}

/// The counting unit: per-region counters plus the notification buffer.
#[derive(Debug, Clone)]
pub struct AccessCounters {
    cfg: AccessCounterConfig,
    counts: HashMap<u64, u32>,
    pending: Vec<AccessNotification>,
    dropped: u64,
    notified: u64,
}

impl AccessCounters {
    /// Build the unit (counts nothing when disabled).
    pub fn new(cfg: AccessCounterConfig) -> Self {
        assert!(cfg.granularity_pages > 0, "granularity must be nonzero");
        assert!(cfg.threshold > 0, "threshold must be nonzero");
        AccessCounters {
            cfg,
            counts: HashMap::new(),
            pending: Vec::new(),
            dropped: 0,
            notified: 0,
        }
    }

    /// True if counting is enabled.
    pub fn is_enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Record one access to `page`. Fires a notification when the
    /// region's count reaches the threshold.
    #[inline]
    pub fn record(&mut self, page: u64) {
        if !self.cfg.enabled {
            return;
        }
        let region = page / self.cfg.granularity_pages;
        let c = self.counts.entry(region).or_insert(0);
        *c += 1;
        if *c >= self.cfg.threshold {
            *c = 0;
            if self.pending.len() < self.cfg.buffer_capacity {
                self.pending.push(AccessNotification {
                    region,
                    count: self.cfg.threshold,
                });
                self.notified += 1;
            } else {
                self.dropped += 1;
            }
        }
    }

    /// Drain pending notifications (the driver's read of the buffer),
    /// in region order for determinism.
    pub fn drain(&mut self) -> Vec<AccessNotification> {
        let mut out = std::mem::take(&mut self.pending);
        out.sort_by_key(|n| n.region);
        out
    }

    /// Notifications dropped to a full buffer.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total notifications ever raised.
    pub fn notified(&self) -> u64 {
        self.notified
    }

    /// The configuration.
    pub fn config(&self) -> &AccessCounterConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled(threshold: u32, capacity: usize) -> AccessCounters {
        AccessCounters::new(AccessCounterConfig {
            enabled: true,
            granularity_pages: 512,
            threshold,
            buffer_capacity: capacity,
        })
    }

    #[test]
    fn disabled_records_nothing() {
        let mut ac = AccessCounters::new(AccessCounterConfig::default());
        for _ in 0..10_000 {
            ac.record(1);
        }
        assert!(ac.drain().is_empty());
        assert_eq!(ac.notified(), 0);
        assert!(!ac.is_enabled());
    }

    #[test]
    fn threshold_fires_and_resets() {
        let mut ac = enabled(4, 16);
        for _ in 0..3 {
            ac.record(100);
        }
        assert!(ac.drain().is_empty(), "below threshold");
        ac.record(100);
        let n = ac.drain();
        assert_eq!(
            n,
            vec![AccessNotification {
                region: 0,
                count: 4
            }]
        );
        // Counter reset: three more accesses stay quiet.
        for _ in 0..3 {
            ac.record(100);
        }
        assert!(ac.drain().is_empty());
    }

    #[test]
    fn regions_partition_by_granularity() {
        let mut ac = enabled(1, 16);
        ac.record(511); // region 0
        ac.record(512); // region 1
        ac.record(1024); // region 2
        let regions: Vec<u64> = ac.drain().iter().map(|n| n.region).collect();
        assert_eq!(regions, vec![0, 1, 2]);
        assert_eq!(
            AccessNotification {
                region: 2,
                count: 1
            }
            .first_page(512),
            1024
        );
    }

    #[test]
    fn buffer_overflow_drops() {
        let mut ac = enabled(1, 2);
        for p in [0u64, 512, 1024, 1536] {
            ac.record(p);
        }
        assert_eq!(ac.drain().len(), 2);
        assert_eq!(ac.dropped(), 2);
        assert_eq!(ac.notified(), 2);
    }

    #[test]
    fn drain_clears_and_orders() {
        let mut ac = enabled(1, 16);
        ac.record(5 * 512);
        ac.record(512);
        let n = ac.drain();
        assert_eq!(n.iter().map(|x| x.region).collect::<Vec<_>>(), vec![1, 5]);
        assert!(ac.drain().is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold must be nonzero")]
    fn zero_threshold_rejected() {
        let _ = AccessCounters::new(AccessCounterConfig {
            threshold: 0,
            ..AccessCounterConfig::default()
        });
    }
}
