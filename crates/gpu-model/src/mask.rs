//! 512-bit page masks: one bit per 4 KB page of a 2 MB VABlock.
//!
//! Both the GPU page tables and the UVM driver's per-VABlock bookkeeping
//! (residency, dirtiness, faulted-in-batch, prefetch candidates) are bit
//! masks over the 512 pages of a VABlock. The density-prefetch tree is
//! computed from popcounts over aligned sub-ranges of these masks.

use serde::{Deserialize, Serialize};
use sim_engine::units::PAGES_PER_VABLOCK;

const WORDS: usize = PAGES_PER_VABLOCK / 64; // 8

/// A fixed 512-bit mask, one bit per page in a VABlock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageMask {
    words: [u64; WORDS],
}

impl Default for PageMask {
    fn default() -> Self {
        PageMask::EMPTY
    }
}

impl PageMask {
    /// The empty mask.
    pub const EMPTY: PageMask = PageMask { words: [0; WORDS] };

    /// The full mask (all 512 pages set).
    pub const FULL: PageMask = PageMask {
        words: [u64::MAX; WORDS],
    };

    /// Set the bit for page `idx` (0..512). Returns true if it was newly set.
    #[inline]
    pub fn set(&mut self, idx: usize) -> bool {
        debug_assert!(idx < PAGES_PER_VABLOCK);
        let w = idx / 64;
        let b = 1u64 << (idx % 64);
        let was = self.words[w] & b != 0;
        self.words[w] |= b;
        !was
    }

    /// Clear the bit for page `idx`. Returns true if it was set.
    #[inline]
    pub fn clear(&mut self, idx: usize) -> bool {
        debug_assert!(idx < PAGES_PER_VABLOCK);
        let w = idx / 64;
        let b = 1u64 << (idx % 64);
        let was = self.words[w] & b != 0;
        self.words[w] &= !b;
        was
    }

    /// Test the bit for page `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        debug_assert!(idx < PAGES_PER_VABLOCK);
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bits are set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if all 512 bits are set.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.words.iter().all(|&w| w == u64::MAX)
    }

    /// Number of set bits in the aligned range `[start, start + len)`.
    ///
    /// `start` must be a multiple of `len` and `len` a power of two — the
    /// shape of density-tree subtrees.
    pub fn count_range(&self, start: usize, len: usize) -> usize {
        debug_assert!(len.is_power_of_two());
        debug_assert_eq!(start % len, 0);
        debug_assert!(start + len <= PAGES_PER_VABLOCK);
        if len >= 64 {
            let w0 = start / 64;
            let nw = len / 64;
            self.words[w0..w0 + nw]
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum()
        } else {
            let w = self.words[start / 64];
            let shift = start % 64;
            let field = (w >> shift) & ((1u64 << len) - 1);
            field.count_ones() as usize
        }
    }

    /// Set every bit in the aligned range `[start, start + len)`.
    pub fn set_range(&mut self, start: usize, len: usize) {
        debug_assert!(len.is_power_of_two());
        debug_assert_eq!(start % len, 0);
        debug_assert!(start + len <= PAGES_PER_VABLOCK);
        if len >= 64 {
            let w0 = start / 64;
            for w in &mut self.words[w0..w0 + len / 64] {
                *w = u64::MAX;
            }
        } else {
            let shift = start % 64;
            self.words[start / 64] |= ((1u64 << len) - 1) << shift;
        }
    }

    /// Bitwise OR.
    #[inline]
    pub fn union(&self, other: &PageMask) -> PageMask {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
        out
    }

    /// Bitwise AND.
    #[inline]
    pub fn intersect(&self, other: &PageMask) -> PageMask {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
        out
    }

    /// Bits set in `self` but not in `other`.
    #[inline]
    pub fn difference(&self, other: &PageMask) -> PageMask {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
        out
    }

    /// In-place OR.
    #[inline]
    pub fn or_with(&mut self, other: &PageMask) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Set every bit in the arbitrary (unaligned) span
    /// `[start, start + len)`, word at a time.
    ///
    /// Unlike [`set_range`](Self::set_range) this accepts any span, so the
    /// sequential prefetcher can mark a run of pages without a per-bit
    /// loop.
    pub fn set_span(&mut self, start: usize, len: usize) {
        debug_assert!(start + len <= PAGES_PER_VABLOCK);
        if len == 0 {
            return;
        }
        let end = start + len; // exclusive
        let (w0, w1) = (start / 64, (end - 1) / 64);
        // Bits of the first word at and above `start % 64`.
        let first = u64::MAX << (start % 64);
        // Bits of the last word strictly below `end`, i.e. up to and
        // including bit (end - 1) % 64.
        let last = u64::MAX >> (63 - (end - 1) % 64);
        if w0 == w1 {
            self.words[w0] |= first & last;
        } else {
            self.words[w0] |= first;
            for w in &mut self.words[w0 + 1..w1] {
                *w = u64::MAX;
            }
            self.words[w1] |= last;
        }
    }

    /// Visit every nonzero 64-bit word as `(word_index, bits)` — page
    /// `word_index * 64 + b` is set for each set bit `b` of `bits`. The
    /// word-at-a-time complement of [`iter_set`](Self::iter_set) for
    /// callers that can process 64 pages per step.
    #[inline]
    pub fn for_each_set_word(&self, mut f: impl FnMut(usize, u64)) {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                f(wi, w);
            }
        }
    }

    /// The mask's backing words, least-significant page first (8 × 64
    /// bits). For bulk copies into word-granularity indexes.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of set bits in the arbitrary (unaligned) span
    /// `[start, start + len)`.
    ///
    /// The word-parallel counting complement of
    /// [`set_span`](Self::set_span): partial first/last words are masked,
    /// everything in between is a straight popcount — no per-bit loop and
    /// no alignment requirement (unlike [`count_range`](Self::count_range)).
    #[inline]
    pub fn count_span(&self, start: usize, len: usize) -> usize {
        debug_assert!(start + len <= PAGES_PER_VABLOCK);
        if len == 0 {
            return 0;
        }
        let end = start + len; // exclusive
        let (w0, w1) = (start / 64, (end - 1) / 64);
        let first = u64::MAX << (start % 64);
        let last = u64::MAX >> (63 - (end - 1) % 64);
        if w0 == w1 {
            (self.words[w0] & first & last).count_ones() as usize
        } else {
            let mut n = (self.words[w0] & first).count_ones() as usize;
            for w in &self.words[w0 + 1..w1] {
                n += w.count_ones() as usize;
            }
            n + (self.words[w1] & last).count_ones() as usize
        }
    }

    /// Index of the lowest set bit, or `None` if the mask is empty.
    #[inline]
    pub fn first_set(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Index of the lowest set bit at or above `from`, or `None`.
    ///
    /// `trailing_zeros`-based: the word holding `from` is masked below
    /// `from`, then whole zero words are skipped — so a sparse scan costs
    /// one popcount-class instruction per 64 pages instead of 64 `get`s.
    #[inline]
    pub fn next_set(&self, from: usize) -> Option<usize> {
        if from >= PAGES_PER_VABLOCK {
            return None;
        }
        let w0 = from / 64;
        let masked = self.words[w0] & (u64::MAX << (from % 64));
        if masked != 0 {
            return Some(w0 * 64 + masked.trailing_zeros() as usize);
        }
        for (wi, &w) in self.words.iter().enumerate().skip(w0 + 1) {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// In-place AND-NOT: clear every bit of `self` that is set in
    /// `other` (absorption). `a.andnot_with(&b)` leaves `a == a \ b`
    /// without materialising a temporary mask.
    #[inline]
    pub fn andnot_with(&mut self, other: &PageMask) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// `self ∩ other` popcount without materialising the intersection.
    #[inline]
    pub fn intersect_count(&self, other: &PageMask) -> usize {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `self \ other` popcount without materialising the difference.
    #[inline]
    pub fn difference_count(&self, other: &PageMask) -> usize {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Iterate over indices of set bits, ascending.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut m = PageMask::EMPTY;
        assert!(m.is_empty());
        assert!(m.set(0));
        assert!(!m.set(0), "second set reports already-set");
        assert!(m.set(511));
        assert!(m.get(0) && m.get(511) && !m.get(1));
        assert_eq!(m.count(), 2);
        assert!(m.clear(0));
        assert!(!m.clear(0));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn full_mask() {
        assert_eq!(PageMask::FULL.count(), 512);
        assert!(PageMask::FULL.is_full());
        assert!(!PageMask::EMPTY.is_full());
    }

    #[test]
    fn count_range_small_and_large() {
        let mut m = PageMask::EMPTY;
        for i in 0..10 {
            m.set(i * 3); // 0,3,6,...,27
        }
        assert_eq!(m.count_range(0, 16), 6); // 0,3,6,9,12,15
        assert_eq!(m.count_range(16, 16), 4); // 18,21,24,27
        assert_eq!(m.count_range(0, 64), 10);
        assert_eq!(m.count_range(0, 512), 10);
        assert_eq!(m.count_range(64, 64), 0);
    }

    #[test]
    fn set_range_subword_and_multiword() {
        let mut m = PageMask::EMPTY;
        m.set_range(16, 16);
        assert_eq!(m.count(), 16);
        assert!(m.get(16) && m.get(31) && !m.get(15) && !m.get(32));
        let mut m2 = PageMask::EMPTY;
        m2.set_range(128, 128);
        assert_eq!(m2.count(), 128);
        assert!(m2.get(128) && m2.get(255) && !m2.get(127) && !m2.get(256));
    }

    #[test]
    fn set_ops() {
        let mut a = PageMask::EMPTY;
        let mut b = PageMask::EMPTY;
        a.set_range(0, 32);
        b.set_range(16, 16);
        b.set(100);
        assert_eq!(a.union(&b).count(), 33);
        assert_eq!(a.intersect(&b).count(), 16);
        assert_eq!(a.difference(&b).count(), 16);
        let mut c = a;
        c.or_with(&b);
        assert_eq!(c, a.union(&b));
    }

    #[test]
    fn set_span_matches_naive_per_bit_loop() {
        // Every (start, len) shape that matters: empty, within one word,
        // word-crossing, word-aligned, full-mask, and ending on bit 511.
        let cases = [
            (0, 0),
            (7, 0),
            (0, 1),
            (3, 5),
            (0, 64),
            (60, 8),
            (63, 2),
            (1, 511),
            (100, 300),
            (448, 64),
            (511, 1),
            (0, 512),
        ];
        for &(start, len) in &cases {
            let mut fast = PageMask::EMPTY;
            fast.set_span(start, len);
            let mut naive = PageMask::EMPTY;
            for i in start..start + len {
                naive.set(i);
            }
            assert_eq!(fast, naive, "set_span({start}, {len})");
        }
        // Spans OR into existing bits rather than overwriting.
        let mut m = PageMask::EMPTY;
        m.set(0);
        m.set_span(100, 10);
        assert!(m.get(0) && m.get(100) && m.get(109) && !m.get(110));
    }

    #[test]
    fn for_each_set_word_covers_all_set_bits() {
        let mut m = PageMask::EMPTY;
        let idxs = [0usize, 5, 63, 64, 200, 511];
        for &i in &idxs {
            m.set(i);
        }
        let mut seen = Vec::new();
        m.for_each_set_word(|wi, bits| {
            let mut b = bits;
            while b != 0 {
                seen.push(wi * 64 + b.trailing_zeros() as usize);
                b &= b - 1;
            }
        });
        assert_eq!(seen, idxs);
        // Zero words are skipped entirely.
        let mut calls = 0;
        PageMask::EMPTY.for_each_set_word(|_, _| calls += 1);
        assert_eq!(calls, 0);
    }

    #[test]
    fn iter_set_ascending() {
        let mut m = PageMask::EMPTY;
        let idxs = [0usize, 5, 63, 64, 200, 511];
        for &i in &idxs {
            m.set(i);
        }
        let collected: Vec<usize> = m.iter_set().collect();
        assert_eq!(collected, idxs);
    }

    #[test]
    fn count_span_matches_naive_per_bit_loop() {
        let mut m = PageMask::EMPTY;
        for i in (0..512).step_by(3) {
            m.set(i);
        }
        m.set(511);
        let cases = [
            (0, 0),
            (7, 0),
            (0, 1),
            (3, 5),
            (0, 64),
            (60, 8),
            (63, 2),
            (1, 511),
            (100, 300),
            (448, 64),
            (511, 1),
            (0, 512),
        ];
        for &(start, len) in &cases {
            let naive = (start..start + len).filter(|&i| m.get(i)).count();
            assert_eq!(m.count_span(start, len), naive, "count_span({start}, {len})");
        }
    }

    #[test]
    fn first_and_next_set_walk_the_mask() {
        assert_eq!(PageMask::EMPTY.first_set(), None);
        assert_eq!(PageMask::EMPTY.next_set(0), None);
        let mut m = PageMask::EMPTY;
        let idxs = [3usize, 63, 64, 130, 511];
        for &i in &idxs {
            m.set(i);
        }
        assert_eq!(m.first_set(), Some(3));
        // Walking with next_set(prev + 1) recovers iter_set exactly.
        let mut walked = Vec::new();
        let mut cur = m.first_set();
        while let Some(i) = cur {
            walked.push(i);
            cur = m.next_set(i + 1);
        }
        assert_eq!(walked, idxs);
        // next_set(from) with from already set returns from itself.
        assert_eq!(m.next_set(64), Some(64));
        assert_eq!(m.next_set(65), Some(130));
        assert_eq!(m.next_set(512), None);
    }

    #[test]
    fn andnot_and_fused_counts_match_materialised_ops() {
        let mut a = PageMask::EMPTY;
        let mut b = PageMask::EMPTY;
        a.set_range(0, 64);
        a.set(300);
        b.set_range(32, 32);
        b.set(301);
        assert_eq!(a.intersect_count(&b), a.intersect(&b).count());
        assert_eq!(a.difference_count(&b), a.difference(&b).count());
        let mut c = a;
        c.andnot_with(&b);
        assert_eq!(c, a.difference(&b));
    }

    mod kernel_equivalence {
        //! Proptest equivalence of the word-parallel kernels against a
        //! naive bit-at-a-time reference (span counts, iteration order,
        //! absorption) — the ISSUE-6 safety net for the mask rewrite.
        use super::*;
        use proptest::prelude::*;

        fn arb_mask() -> impl Strategy<Value = PageMask> {
            proptest::collection::vec(any::<u64>(), WORDS).prop_map(|v| {
                let mut m = PageMask::EMPTY;
                for (wi, w) in v.into_iter().enumerate() {
                    let mut bits = w;
                    while bits != 0 {
                        m.set(wi * 64 + bits.trailing_zeros() as usize);
                        bits &= bits - 1;
                    }
                }
                m
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn count_span_equals_bit_loop(m in arb_mask(), start in 0usize..512, len in 0usize..=512) {
                let len = len.min(512 - start);
                let naive = (start..start + len).filter(|&i| m.get(i)).count();
                prop_assert_eq!(m.count_span(start, len), naive);
            }

            #[test]
            fn next_set_walk_equals_iter_set(m in arb_mask()) {
                let via_iter: Vec<usize> = m.iter_set().collect();
                let mut walked = Vec::new();
                let mut cur = m.first_set();
                while let Some(i) = cur {
                    walked.push(i);
                    cur = m.next_set(i + 1);
                }
                prop_assert_eq!(walked, via_iter);
            }

            #[test]
            fn next_set_is_lowest_at_or_above(m in arb_mask(), from in 0usize..=512) {
                let naive = (from..512).find(|&i| m.get(i));
                prop_assert_eq!(m.next_set(from), naive);
            }

            #[test]
            fn andnot_equals_difference(a in arb_mask(), b in arb_mask()) {
                let mut fused = a;
                fused.andnot_with(&b);
                prop_assert_eq!(fused, a.difference(&b));
                // Absorption: (a \ b) ∩ b = ∅ and (a \ b) ∪ (a ∩ b) = a.
                prop_assert!(fused.intersect(&b).is_empty());
                prop_assert_eq!(fused.union(&a.intersect(&b)), a);
            }

            #[test]
            fn fused_counts_equal_materialised(a in arb_mask(), b in arb_mask()) {
                prop_assert_eq!(a.intersect_count(&b), a.intersect(&b).count());
                prop_assert_eq!(a.difference_count(&b), a.difference(&b).count());
                prop_assert_eq!(
                    a.intersect_count(&b) + a.difference_count(&b),
                    a.count()
                );
            }
        }
    }
}
