//! Loosely-timed GPU execution model.
//!
//! A workload is a grid of thread blocks; each block carries a
//! page-granularity access trace organised into *steps* (the set of pages
//! the block's warps touch concurrently). The engine keeps up to
//! `max_blocks_resident` blocks active (SM occupancy), issues steps
//! round-robin across active blocks (modelling the interleaved,
//! nondeterministic fault order the paper observes in Fig. 7), raises
//! far-faults for non-resident pages into the [`FaultBuffer`] with per-µTLB
//! deduplication, and stalls blocks until the driver issues a *replay*.
//!
//! Replay semantics follow the hardware (paper §III-E): a replay resumes
//! **all** stalled warps; accesses whose pages are now resident proceed,
//! the rest fault again — generating duplicate faults if their old entries
//! are still in the buffer (which is exactly why the default policy
//! flushes).

use crate::access_counters::{AccessCounterConfig, AccessCounters, AccessNotification};
use crate::addr::{AccessType, GlobalPage};
use crate::fault::{FaultBuffer, FaultEntry};
use serde::{Deserialize, Serialize};
use sim_engine::{SimDuration, SimRng, SimTime};
use std::sync::Arc;

/// Read-only residency oracle: "is this page currently mapped on the GPU?"
///
/// Implemented by the UVM driver's address-space bookkeeping; the GPU
/// engine is oblivious to how residency is managed.
pub trait Residency {
    /// True if `page` is resident (mapped) in GPU memory.
    fn is_resident(&self, page: GlobalPage) -> bool;

    /// The 64-page residency word covering `page`: bit `p % 64` holds
    /// the residency of page `(page & !63) + p % 64`. The retry scan
    /// caches this word across consecutive accesses, so streaming
    /// workloads pay one load per 64 pages instead of one per page;
    /// oracles without a dense index inherit this per-bit assembly.
    fn resident_word(&self, page: GlobalPage) -> u64 {
        let base = page.0 & !63;
        let mut w = 0u64;
        for b in 0..64 {
            if self.is_resident(GlobalPage(base + b)) {
                w |= 1 << b;
            }
        }
        w
    }
}

/// GPU hardware configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Number of SMs (Titan V: 80).
    pub num_sms: usize,
    /// Maximum thread blocks concurrently resident across all SMs.
    pub max_blocks_resident: usize,
    /// Number of µTLBs (fault-dedup domains). Faults for the same page
    /// from the same µTLB coalesce into one buffer entry; from different
    /// µTLBs they duplicate.
    pub num_utlbs: usize,
    /// Maximum outstanding (unserviced) faults a single µTLB tracks;
    /// beyond this the µTLB stalls accesses without recording new faults.
    pub max_outstanding_per_utlb: usize,
    /// Volta-style access counters (paper §VI-B3): when enabled the
    /// hardware counts non-faulting accesses per region and raises
    /// notifications an access-counter-aware eviction policy can use.
    pub access_counters: AccessCounterConfig,
    /// Omniscient per-page use tracking (simulator-level analysis, not a
    /// hardware feature): records every page the kernel actually reads or
    /// writes, enabling prefetch-waste accounting (pages prefetched but
    /// never used — paper §VI-A).
    pub track_page_use: bool,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            num_sms: 80,
            max_blocks_resident: 1280,
            num_utlbs: 80,
            max_outstanding_per_utlb: 16,
            access_counters: AccessCounterConfig::default(),
            track_page_use: false,
        }
    }
}

/// Access trace of one thread block.
///
/// `pages`/`writes` are flat arrays over all accesses; `step_ends[i]` is
/// the exclusive end index of step `i`. All pages of a step are issued
/// concurrently; the block can only advance past a step when every page of
/// the step is resident.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BlockTrace {
    pages: Vec<GlobalPage>,
    writes: Vec<bool>,
    step_ends: Vec<u32>,
    /// GPU wall-time contribution of one completed step assuming ideal
    /// whole-GPU utilisation (workload generators compute this as
    /// step FLOPs ÷ aggregate GPU FLOP rate, or bytes ÷ device memory
    /// bandwidth for bandwidth-bound kernels). Drives the compute-rate
    /// figures.
    pub step_cost: SimDuration,
}

impl BlockTrace {
    /// Create an empty trace with the given per-step compute cost.
    pub fn new(step_cost: SimDuration) -> Self {
        BlockTrace {
            pages: Vec::new(),
            writes: Vec::new(),
            step_ends: Vec::new(),
            step_cost,
        }
    }

    /// Append a step touching `pages` (true in `write` marks dirtying
    /// accesses; one flag applied to all pages of the step).
    pub fn push_step(&mut self, pages: impl IntoIterator<Item = GlobalPage>, write: bool) {
        let before = self.pages.len();
        self.pages.extend(pages);
        self.writes
            .extend(std::iter::repeat_n(write, self.pages.len() - before));
        assert!(
            self.pages.len() > before,
            "a step must touch at least one page"
        );
        assert!(self.pages.len() <= u32::MAX as usize, "trace too long");
        self.step_ends.push(self.pages.len() as u32);
    }

    /// Append a step with per-page write flags.
    pub fn push_step_mixed(&mut self, accesses: impl IntoIterator<Item = (GlobalPage, bool)>) {
        let before = self.pages.len();
        for (p, w) in accesses {
            self.pages.push(p);
            self.writes.push(w);
        }
        assert!(
            self.pages.len() > before,
            "a step must touch at least one page"
        );
        self.step_ends.push(self.pages.len() as u32);
    }

    /// Number of steps.
    pub fn num_steps(&self) -> usize {
        self.step_ends.len()
    }

    /// Total page accesses in the trace.
    pub fn num_accesses(&self) -> usize {
        self.pages.len()
    }

    /// The accesses of step `i` as `(page, is_write)` pairs.
    pub fn step(&self, i: usize) -> impl Iterator<Item = (GlobalPage, bool)> + '_ {
        let start = if i == 0 {
            0
        } else {
            self.step_ends[i - 1] as usize
        };
        let end = self.step_ends[i] as usize;
        self.pages[start..end]
            .iter()
            .copied()
            .zip(self.writes[start..end].iter().copied())
    }
}

/// A full grid: the blocks of one kernel launch, plus metadata.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkloadTrace {
    /// Human-readable workload name (e.g. "sgemm").
    pub name: String,
    /// Per-block traces, in block-ID order.
    pub blocks: Vec<BlockTrace>,
    /// Total distinct pages the workload touches (its memory footprint).
    pub footprint_pages: u64,
}

impl WorkloadTrace {
    /// Total accesses across all blocks.
    pub fn total_accesses(&self) -> u64 {
        self.blocks.iter().map(|b| b.num_accesses() as u64).sum()
    }

    /// Total steps across all blocks.
    pub fn total_steps(&self) -> u64 {
        self.blocks.iter().map(|b| b.num_steps() as u64).sum()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockStatus {
    /// Waiting for an SM slot.
    Pending,
    /// On an SM, able to issue.
    Runnable,
    /// On an SM, waiting for a replay.
    Stalled,
    /// Finished its trace.
    Done,
}

/// Result of letting the GPU run until it can make no further progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineStatus {
    /// Every block has completed its trace.
    Done,
    /// All resident blocks are stalled on faults; the driver must act.
    Stalled,
}

/// Counters the engine accumulates (device-side view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineCounters {
    /// Page accesses that hit resident pages.
    pub resident_accesses: u64,
    /// Faults written into the buffer.
    pub faults_raised: u64,
    /// Faults coalesced away by per-µTLB dedup.
    pub faults_coalesced: u64,
    /// Faults suppressed by µTLB outstanding-limit flow control.
    pub faults_throttled: u64,
    /// Faults lost to a full fault buffer.
    pub faults_dropped: u64,
    /// Replays received.
    pub replays: u64,
    /// Completed block steps.
    pub steps_completed: u64,
}

/// The GPU execution engine.
#[derive(Debug)]
pub struct GpuEngine {
    cfg: GpuConfig,
    /// Shared so repeated launches of one kernel (and sweep harnesses that
    /// run the same trace under several configs) skip the deep copy.
    trace: Arc<WorkloadTrace>,
    status: Vec<BlockStatus>,
    cursor: Vec<u32>,
    /// Remaining missing accesses of each stalled block's current step —
    /// retries after a replay only re-check what was missing, not the
    /// whole step. Non-empty exactly while the block is stalled mid-step;
    /// the vectors trade places with `miss_scratch` so their capacity is
    /// reused across the whole launch (no steady-state allocation).
    /// Entries are page numbers with the write flag packed into the top
    /// bit ([`WRITE_BIT`]) — the retry scan is bandwidth-bound, and all
    /// live pending lists together must stay L2-resident.
    pending: Vec<Vec<u64>>,
    active: Vec<u32>,
    next_pending: u32,
    /// Outstanding faulted pages per µTLB (dedup + flow-control domain).
    /// Sorted, at most `max_outstanding_per_utlb` entries — small enough
    /// that binary-search + ordered insert beats hashing.
    outstanding: Vec<Vec<GlobalPage>>,
    /// 64-bit fingerprint of each µTLB's outstanding set (bit
    /// `page % 64`): a clear bit proves the page is not outstanding,
    /// short-circuiting the membership probe on the dominant
    /// full-set/throttled retry path.
    outstanding_filter: Vec<u64>,
    counters: EngineCounters,
    compute_work: SimDuration,
    access_counters: AccessCounters,
    /// One bit per page: set when the kernel actually used the page
    /// (only populated when `track_page_use` is enabled).
    accessed: Vec<u64>,
    rng: SimRng,
    /// Reusable buffer for the current step's missing accesses (same
    /// packed encoding as `pending`).
    miss_scratch: Vec<u64>,
}

/// Top bit of a packed pending entry: set when the access is a write.
/// Page numbers occupy the low 63 bits (a 4 KB-page address space of
/// 2^63 pages is unreachable by construction).
const WRITE_BIT: u64 = 1 << 63;

/// Raise a far-fault for `page` through one µTLB: coalesce against the
/// outstanding set, throttle when the set is full, else write a buffer
/// entry. `filter` is the set's 64-bit fingerprint (bit `page % 64`): a
/// clear bit proves the page is not outstanding, so the dominant
/// full-set/throttled retry path exits on one AND instead of a probe.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn raise_fault(
    set: &mut Vec<GlobalPage>,
    filter: &mut u64,
    counters: &mut EngineCounters,
    buffer: &mut FaultBuffer,
    max_out: usize,
    page: GlobalPage,
    write: bool,
    utlb: u32,
    now: SimTime,
) {
    let bit = 1u64 << (page.0 % 64);
    let pos = if *filter & bit == 0 {
        if set.len() >= max_out {
            counters.faults_throttled += 1;
            return;
        }
        set.binary_search(&page).unwrap_err()
    } else {
        match set.binary_search(&page) {
            Ok(_) => {
                counters.faults_coalesced += 1;
                return;
            }
            Err(pos) => {
                if set.len() >= max_out {
                    counters.faults_throttled += 1;
                    return;
                }
                pos
            }
        }
    };
    let entry = FaultEntry {
        page,
        access: if write {
            AccessType::Write
        } else {
            AccessType::Read
        },
        timestamp: now,
        utlb,
    };
    if buffer.push(entry) {
        set.insert(pos, page);
        *filter |= bit;
        counters.faults_raised += 1;
    } else {
        counters.faults_dropped += 1;
    }
}

impl GpuEngine {
    /// Launch `trace` on a GPU with configuration `cfg`. Accepts an owned
    /// trace or an `Arc` (repeated launches share one without copying).
    pub fn launch(cfg: GpuConfig, trace: impl Into<Arc<WorkloadTrace>>, rng: SimRng) -> Self {
        let trace = trace.into();
        assert!(cfg.num_sms > 0 && cfg.max_blocks_resident > 0 && cfg.num_utlbs > 0);
        let n = trace.blocks.len();
        let accessed = if cfg.track_page_use {
            let max_page = trace
                .blocks
                .iter()
                .flat_map(|b| (0..b.num_steps()).flat_map(|s| b.step(s).map(|(p, _)| p.0)))
                .max()
                .unwrap_or(0);
            vec![0u64; (max_page as usize + 64) / 64]
        } else {
            Vec::new()
        };
        let access_counters = AccessCounters::new(cfg.access_counters.clone());
        let mut eng = GpuEngine {
            outstanding: (0..cfg.num_utlbs)
                .map(|_| Vec::with_capacity(cfg.max_outstanding_per_utlb))
                .collect(),
            outstanding_filter: vec![0; cfg.num_utlbs],
            cfg,
            status: vec![BlockStatus::Pending; n],
            cursor: vec![0; n],
            pending: vec![Vec::new(); n],
            active: Vec::new(),
            next_pending: 0,
            trace,
            counters: EngineCounters::default(),
            compute_work: SimDuration::ZERO,
            access_counters,
            accessed,
            rng,
            miss_scratch: Vec::new(),
        };
        eng.refill_active();
        eng
    }

    fn refill_active(&mut self) {
        // The block scheduler prefers lower-numbered blocks (paper §IV-B)
        // but fills slots as they free, so late blocks interleave with
        // stragglers.
        while self.active.len() < self.cfg.max_blocks_resident
            && (self.next_pending as usize) < self.status.len()
        {
            let b = self.next_pending;
            self.next_pending += 1;
            if self.trace.blocks[b as usize].num_steps() == 0 {
                self.status[b as usize] = BlockStatus::Done;
                continue;
            }
            self.status[b as usize] = BlockStatus::Runnable;
            self.active.push(b);
        }
    }

    #[inline]
    fn utlb_of(&self, block: u32) -> usize {
        (block as usize) % self.cfg.num_utlbs
    }

    /// Attempt the current step of `block`; returns true if it advanced.
    fn attempt_step<R: Residency>(
        &mut self,
        block: u32,
        residency: &R,
        buffer: &mut FaultBuffer,
        now: SimTime,
    ) -> bool {
        let utlb = self.utlb_of(block) as u32;
        let idx = block as usize;
        let track = self.access_counters.is_enabled();
        let use_tracking = !self.accessed.is_empty();

        // Take the block's pending list (non-empty exactly when this is a
        // post-replay retry) and the shared miss buffer; both come back at
        // the end, so their capacity is reused across steps and blocks.
        let mut pending = std::mem::take(&mut self.pending[idx]);
        let mut misses = std::mem::take(&mut self.miss_scratch);
        misses.clear();

        {
            // Split borrows so one pass over the accesses can check
            // residency and raise faults together: all of a block's misses
            // go through the same µTLB, so interleaving the fault-raising
            // with the scan leaves buffer/counter order unchanged.
            let max_out = self.cfg.max_outstanding_per_utlb;
            let set = &mut self.outstanding[utlb as usize];
            let filter = &mut self.outstanding_filter[utlb as usize];
            let counters = &mut self.counters;
            let access_counters = &mut self.access_counters;
            let accessed = &mut self.accessed;

            // Residency is immutable for the whole engine run, so one
            // dense-index word can answer 64 consecutive pages. Streaming
            // workloads walk pages in ascending runs; caching the current
            // word turns their scans word-parallel (one load per 64
            // pages) while costing random scans a single compare.
            let mut cur_word_of: u64 = u64::MAX;
            let mut cur_word: u64 = 0;
            macro_rules! resident_cached {
                ($page:expr) => {{
                    let w = $page.0 / 64;
                    if w != cur_word_of {
                        cur_word_of = w;
                        cur_word = residency.resident_word($page);
                    }
                    cur_word & (1u64 << ($page.0 % 64)) != 0
                }};
            }

            if pending.is_empty() {
                // Fresh attempt: walk the trace step.
                let step = self.cursor[idx] as usize;
                for (page, write) in self.trace.blocks[idx].step(step) {
                    if resident_cached!(page) {
                        counters.resident_accesses += 1;
                        if track {
                            access_counters.record(page.0);
                        }
                        if use_tracking {
                            accessed[page.0 as usize / 64] |= 1 << (page.0 % 64);
                        }
                    } else {
                        misses.push(page.0 | (write as u64) * WRITE_BIT);
                        raise_fault(set, filter, counters, buffer, max_out, page, write, utlb, now);
                    }
                }
            } else {
                // Retry: only re-check what was missing last time. The miss
                // list is copied out lazily: in the thrash steady state no
                // pending page became resident, and then `pending` already
                // IS the miss list — the retry writes nothing at all.
                let mut had_hit = false;
                for i in 0..pending.len() {
                    let packed = pending[i];
                    let page = GlobalPage(packed & !WRITE_BIT);
                    let write = packed & WRITE_BIT != 0;
                    if resident_cached!(page) {
                        counters.resident_accesses += 1;
                        if track {
                            access_counters.record(page.0);
                        }
                        if use_tracking {
                            accessed[page.0 as usize / 64] |= 1 << (page.0 % 64);
                        }
                        if !had_hit {
                            had_hit = true;
                            misses.extend_from_slice(&pending[..i]);
                        }
                    } else {
                        if had_hit {
                            misses.push(packed);
                        }
                        raise_fault(set, filter, counters, buffer, max_out, page, write, utlb, now);
                    }
                }
                if !had_hit {
                    // Nothing became resident: keep `pending` as-is.
                    debug_assert!(!pending.is_empty());
                    self.pending[idx] = pending;
                    self.miss_scratch = misses;
                    self.status[idx] = BlockStatus::Stalled;
                    return false;
                }
                pending.clear();
            }
        }

        if misses.is_empty() {
            self.pending[idx] = pending;
            self.miss_scratch = misses;
            self.counters.steps_completed += 1;
            self.compute_work += self.trace.blocks[idx].step_cost;
            self.cursor[idx] += 1;
            if self.cursor[idx] as usize == self.trace.blocks[idx].num_steps() {
                self.status[idx] = BlockStatus::Done;
            }
            return true;
        }

        // The miss list becomes the block's pending list; the emptied old
        // pending vector becomes the next step's scratch. No copies.
        self.pending[idx] = misses;
        self.miss_scratch = pending;
        self.status[idx] = BlockStatus::Stalled;
        false
    }

    /// Run until every resident block is stalled or the grid completes.
    ///
    /// Visits active blocks starting from a random rotation (modelling the
    /// GPU scheduler's nondeterminism, seeded) and lets each runnable
    /// block issue steps until it stalls on a fault or finishes; freed SM
    /// slots are refilled and newly activated blocks get their turn. `now`
    /// is the virtual time stamped onto raised faults.
    pub fn run<R: Residency>(
        &mut self,
        residency: &R,
        buffer: &mut FaultBuffer,
        now: SimTime,
    ) -> EngineStatus {
        let mut any_done = true;
        loop {
            // Done blocks only appear via attempt_step, so the sweep can be
            // skipped on iterations where no block finished.
            if any_done {
                self.active
                    .retain(|&b| !matches!(self.status[b as usize], BlockStatus::Done));
            }
            let before_refill = self.active.len();
            self.refill_active();
            let refilled = self.active.len() > before_refill;
            if self.active.is_empty() {
                return EngineStatus::Done;
            }

            let mut progressed = false;
            any_done = false;
            let n = self.active.len();
            let rot = if n > 1 { self.rng.index(n) } else { 0 };
            for i in 0..n {
                let b = self.active[(i + rot) % n];
                // Run this block to its next stall (or completion).
                while matches!(self.status[b as usize], BlockStatus::Runnable) {
                    if self.attempt_step(b, residency, buffer, now) {
                        progressed = true;
                    }
                }
                if matches!(self.status[b as usize], BlockStatus::Done) {
                    any_done = true;
                }
            }
            if !progressed && !refilled {
                // Every active block was visited and left Stalled (a Done
                // block would have progressed; no refill means no fresh
                // Runnable block) — the driver must act.
                debug_assert!(self
                    .active
                    .iter()
                    .all(|&b| matches!(self.status[b as usize], BlockStatus::Stalled)));
                return EngineStatus::Stalled;
            }
        }
    }

    /// Deliver a replay: all stalled warps resume and will retry their
    /// accesses on the next [`run`](Self::run). Outstanding µTLB fault
    /// tracking is cleared — retried misses raise fresh faults.
    pub fn replay(&mut self) {
        self.counters.replays += 1;
        for set in &mut self.outstanding {
            set.clear(); // capacity retained
        }
        self.outstanding_filter.fill(0);
        for s in &mut self.status {
            if matches!(s, BlockStatus::Stalled) {
                *s = BlockStatus::Runnable;
            }
        }
    }

    /// True once every block has completed.
    pub fn is_done(&self) -> bool {
        self.status.iter().all(|s| matches!(s, BlockStatus::Done))
    }

    /// Accumulated GPU compute time (sum of completed step costs; step
    /// costs are already normalised to ideal whole-GPU utilisation).
    pub fn compute_time(&self) -> SimDuration {
        self.compute_work
    }

    /// Device-side counters.
    pub fn counters(&self) -> &EngineCounters {
        &self.counters
    }

    /// The engine's configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The launched workload trace.
    pub fn trace(&self) -> &WorkloadTrace {
        &self.trace
    }

    /// True if the kernel actually used `page` (requires
    /// `track_page_use`; always false otherwise).
    pub fn page_was_used(&self, page: GlobalPage) -> bool {
        let w = page.0 as usize / 64;
        w < self.accessed.len() && self.accessed[w] & (1 << (page.0 % 64)) != 0
    }

    /// Drain pending access-counter notifications (empty unless the
    /// counters are enabled). Models the driver reading the
    /// notification buffer.
    pub fn drain_access_notifications(&mut self) -> Vec<AccessNotification> {
        self.access_counters.drain()
    }

    /// The access-counter unit (for drop/notify statistics).
    pub fn access_counters(&self) -> &AccessCounters {
        &self.access_counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultBufferConfig;

    /// Residency stub: pages below a threshold are resident.
    struct Below(u64);
    impl Residency for Below {
        fn is_resident(&self, page: GlobalPage) -> bool {
            page.0 < self.0
        }
    }

    fn single_page_trace(pages: &[u64]) -> WorkloadTrace {
        let mut bt = BlockTrace::new(SimDuration::from_nanos(100));
        for &p in pages {
            bt.push_step([GlobalPage(p)], false);
        }
        WorkloadTrace {
            name: "test".into(),
            blocks: vec![bt],
            footprint_pages: pages.len() as u64,
        }
    }

    fn engine(trace: WorkloadTrace) -> (GpuEngine, FaultBuffer) {
        (
            GpuEngine::launch(GpuConfig::default(), trace, SimRng::from_seed(1)),
            FaultBuffer::new(FaultBufferConfig::default()),
        )
    }

    #[test]
    fn all_resident_runs_to_completion() {
        let (mut eng, mut buf) = engine(single_page_trace(&[0, 1, 2, 3]));
        let st = eng.run(&Below(100), &mut buf, SimTime::ZERO);
        assert_eq!(st, EngineStatus::Done);
        assert!(eng.is_done());
        assert_eq!(eng.counters().resident_accesses, 4);
        assert_eq!(eng.counters().faults_raised, 0);
        assert_eq!(eng.counters().steps_completed, 4);
        assert_eq!(eng.compute_time(), SimDuration::from_nanos(400));
    }

    #[test]
    fn miss_raises_fault_and_stalls() {
        let (mut eng, mut buf) = engine(single_page_trace(&[0, 50]));
        let st = eng.run(&Below(10), &mut buf, SimTime::ZERO);
        assert_eq!(st, EngineStatus::Stalled);
        assert_eq!(buf.len(), 1);
        assert_eq!(eng.counters().faults_raised, 1);
        // Replay without fixing residency: refaults (duplicate).
        eng.replay();
        let st = eng.run(&Below(10), &mut buf, SimTime::ZERO);
        assert_eq!(st, EngineStatus::Stalled);
        assert_eq!(buf.len(), 2, "refault after replay duplicates the entry");
        // Now make it resident: completes.
        eng.replay();
        let st = eng.run(&Below(100), &mut buf, SimTime::ZERO);
        assert_eq!(st, EngineStatus::Done);
        assert_eq!(eng.counters().replays, 2);
    }

    #[test]
    fn utlb_dedup_coalesces_same_page() {
        // Two steps in one block both missing the same page: second access
        // does not write a second entry while the first is outstanding.
        let mut bt = BlockTrace::new(SimDuration::ZERO);
        bt.push_step([GlobalPage(50), GlobalPage(50)], false);
        let trace = WorkloadTrace {
            name: "t".into(),
            blocks: vec![bt],
            footprint_pages: 1,
        };
        let (mut eng, mut buf) = engine(trace);
        eng.run(&Below(10), &mut buf, SimTime::ZERO);
        assert_eq!(buf.len(), 1);
        assert_eq!(eng.counters().faults_coalesced, 1);
    }

    #[test]
    fn different_utlbs_duplicate_same_page() {
        // Two blocks (different µTLBs since num_utlbs > 1) fault the same
        // page: two entries appear — the cross-SM duplication the paper
        // describes.
        let mut b0 = BlockTrace::new(SimDuration::ZERO);
        b0.push_step([GlobalPage(50)], false);
        let mut b1 = BlockTrace::new(SimDuration::ZERO);
        b1.push_step([GlobalPage(50)], false);
        let trace = WorkloadTrace {
            name: "t".into(),
            blocks: vec![b0, b1],
            footprint_pages: 1,
        };
        let (mut eng, mut buf) = engine(trace);
        eng.run(&Below(10), &mut buf, SimTime::ZERO);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn occupancy_limits_active_blocks() {
        let cfg = GpuConfig {
            max_blocks_resident: 2,
            ..GpuConfig::default()
        };
        // 4 blocks each stalling on a distinct non-resident page: only the
        // first 2 get SM slots, so only 2 faults are raised.
        let blocks: Vec<BlockTrace> = (0..4)
            .map(|i| {
                let mut bt = BlockTrace::new(SimDuration::ZERO);
                bt.push_step([GlobalPage(100 + i)], false);
                bt
            })
            .collect();
        let trace = WorkloadTrace {
            name: "t".into(),
            blocks,
            footprint_pages: 4,
        };
        let mut eng = GpuEngine::launch(cfg, trace, SimRng::from_seed(1));
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        eng.run(&Below(10), &mut buf, SimTime::ZERO);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn throttle_limits_outstanding_per_utlb() {
        let cfg = GpuConfig {
            num_utlbs: 1,
            max_outstanding_per_utlb: 4,
            max_blocks_resident: 8,
            ..GpuConfig::default()
        };
        // One block whose single step misses 10 pages through one µTLB.
        let mut bt = BlockTrace::new(SimDuration::ZERO);
        bt.push_step((100..110).map(GlobalPage), false);
        let trace = WorkloadTrace {
            name: "t".into(),
            blocks: vec![bt],
            footprint_pages: 10,
        };
        let mut eng = GpuEngine::launch(cfg, trace, SimRng::from_seed(1));
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        eng.run(&Below(10), &mut buf, SimTime::ZERO);
        assert_eq!(buf.len(), 4);
        assert_eq!(eng.counters().faults_throttled, 6);
    }

    #[test]
    fn step_gates_on_all_pages() {
        // A step touching pages 5 (resident) and 50 (not): block stalls,
        // then completes once 50 is resident; page 5 is not re-counted.
        let mut bt = BlockTrace::new(SimDuration::ZERO);
        bt.push_step([GlobalPage(5), GlobalPage(50)], false);
        let trace = WorkloadTrace {
            name: "t".into(),
            blocks: vec![bt],
            footprint_pages: 2,
        };
        let (mut eng, mut buf) = engine(trace);
        assert_eq!(
            eng.run(&Below(10), &mut buf, SimTime::ZERO),
            EngineStatus::Stalled
        );
        eng.replay();
        assert_eq!(
            eng.run(&Below(100), &mut buf, SimTime::ZERO),
            EngineStatus::Done
        );
    }

    #[test]
    fn trace_step_iteration() {
        let mut bt = BlockTrace::new(SimDuration::ZERO);
        bt.push_step([GlobalPage(1), GlobalPage(2)], true);
        bt.push_step([GlobalPage(3)], false);
        assert_eq!(bt.num_steps(), 2);
        assert_eq!(bt.num_accesses(), 3);
        let s0: Vec<_> = bt.step(0).collect();
        assert_eq!(s0, vec![(GlobalPage(1), true), (GlobalPage(2), true)]);
        let s1: Vec<_> = bt.step(1).collect();
        assert_eq!(s1, vec![(GlobalPage(3), false)]);
    }

    #[test]
    fn empty_grid_is_done_immediately() {
        let trace = WorkloadTrace {
            name: "empty".into(),
            blocks: vec![],
            footprint_pages: 0,
        };
        let mut eng = GpuEngine::launch(GpuConfig::default(), trace, SimRng::from_seed(1));
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        assert_eq!(
            eng.run(&Below(0), &mut buf, SimTime::ZERO),
            EngineStatus::Done
        );
        assert!(eng.is_done());
    }

    #[test]
    fn zero_step_blocks_complete_without_running() {
        let trace = WorkloadTrace {
            name: "noop".into(),
            blocks: vec![BlockTrace::new(SimDuration::ZERO)],
            footprint_pages: 0,
        };
        let mut eng = GpuEngine::launch(GpuConfig::default(), trace, SimRng::from_seed(1));
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        assert_eq!(
            eng.run(&Below(0), &mut buf, SimTime::ZERO),
            EngineStatus::Done
        );
    }

    #[test]
    fn access_counters_notify_on_hot_regions() {
        let cfg = GpuConfig {
            access_counters: crate::access_counters::AccessCounterConfig {
                enabled: true,
                threshold: 4,
                ..Default::default()
            },
            ..GpuConfig::default()
        };
        // One block re-reading the same resident page 8 times.
        let mut bt = BlockTrace::new(SimDuration::ZERO);
        for _ in 0..8 {
            bt.push_step([GlobalPage(3)], false);
        }
        let trace = WorkloadTrace {
            name: "hot".into(),
            blocks: vec![bt],
            footprint_pages: 1,
        };
        let mut eng = GpuEngine::launch(cfg, trace, SimRng::from_seed(1));
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        eng.run(&Below(100), &mut buf, SimTime::ZERO);
        let notifs = eng.drain_access_notifications();
        assert_eq!(notifs.len(), 2, "8 accesses at threshold 4");
        assert!(notifs.iter().all(|n| n.region == 0));
    }

    #[test]
    fn page_use_tracking_records_only_used_pages() {
        let cfg = GpuConfig {
            track_page_use: true,
            ..GpuConfig::default()
        };
        let mut bt = BlockTrace::new(SimDuration::ZERO);
        bt.push_step([GlobalPage(7)], false);
        let trace = WorkloadTrace {
            name: "one".into(),
            blocks: vec![bt],
            footprint_pages: 1,
        };
        let mut eng = GpuEngine::launch(cfg, trace, SimRng::from_seed(1));
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        eng.run(&Below(100), &mut buf, SimTime::ZERO);
        assert!(eng.page_was_used(GlobalPage(7)));
        assert!(!eng.page_was_used(GlobalPage(6)));
        assert!(
            !eng.page_was_used(GlobalPage(10_000)),
            "out of range is false"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let blocks: Vec<BlockTrace> = (0..20)
                .map(|i| {
                    let mut bt = BlockTrace::new(SimDuration::ZERO);
                    for s in 0..5 {
                        bt.push_step([GlobalPage(100 + i * 5 + s)], false);
                    }
                    bt
                })
                .collect();
            WorkloadTrace {
                name: "t".into(),
                blocks,
                footprint_pages: 100,
            }
        };
        let run = |seed| {
            let mut eng = GpuEngine::launch(GpuConfig::default(), mk(), SimRng::from_seed(seed));
            let mut buf = FaultBuffer::new(FaultBufferConfig::default());
            eng.run(&Below(0), &mut buf, SimTime::ZERO);
            let (entries, _) = buf.fetch(usize::MAX, SimTime::ZERO + SimDuration::from_secs(1));
            entries.iter().map(|e| e.page.0).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same fault order");
    }
}
