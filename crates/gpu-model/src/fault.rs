//! Replayable-fault machinery: fault entries and the circular hardware
//! fault buffer.
//!
//! On a page-table-walk miss the GPU MMU writes a fault entry into a
//! circular buffer in device memory and pushes a pointer onto a queue the
//! host can read (paper Fig. 2). The buffer has finite capacity: when it is
//! full further faults are not recorded — the faulting warp simply remains
//! stalled and will re-raise its fault after the next replay. Entries
//! become "ready" a little after the pointer is visible, so the driver may
//! have to poll (paper §III-C).

use crate::addr::{AccessType, GlobalPage};
use serde::{Deserialize, Serialize};
use sim_engine::{SimDuration, SimTime};
use std::collections::VecDeque;

/// One fault record as the driver sees it.
///
/// Note what is *not* here: the faulting SM, warp, and thread. The paper
/// (§IV-A) stresses that the driver only learns the faulting address and
/// coarse origin (the µTLB/GPC), which is why prefetching cannot use
/// per-core history. We carry the µTLB id because the hardware dedups
/// repeated faults per µTLB, not globally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEntry {
    /// Faulting page.
    pub page: GlobalPage,
    /// Read or write access.
    pub access: AccessType,
    /// Virtual time at which the MMU wrote the entry.
    pub timestamp: SimTime,
    /// Originating µTLB (coarse origin info only — see above).
    pub utlb: u32,
}

/// Configuration of the hardware fault buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultBufferConfig {
    /// Maximum entries the circular buffer holds before dropping faults.
    pub capacity: usize,
    /// Delay between an entry's pointer becoming visible and its payload
    /// being ready to read (models the asynchronicity that forces polling).
    pub ready_delay: SimDuration,
}

impl Default for FaultBufferConfig {
    fn default() -> Self {
        FaultBufferConfig {
            capacity: 4096,
            ready_delay: SimDuration::from_micros(2),
        }
    }
}

/// The circular device-side fault buffer.
#[derive(Debug, Clone)]
pub struct FaultBuffer {
    entries: VecDeque<FaultEntry>,
    cfg: FaultBufferConfig,
    /// Faults that could not be recorded because the buffer was full.
    dropped: u64,
    /// Total entries ever written.
    written: u64,
    /// Total entries ever fetched by the driver.
    fetched: u64,
    /// Total entries discarded by buffer flushes.
    flushed: u64,
}

impl FaultBuffer {
    /// Create an empty buffer.
    pub fn new(cfg: FaultBufferConfig) -> Self {
        assert!(cfg.capacity > 0, "fault buffer capacity must be nonzero");
        FaultBuffer {
            entries: VecDeque::with_capacity(cfg.capacity),
            cfg,
            dropped: 0,
            written: 0,
            fetched: 0,
            flushed: 0,
        }
    }

    /// Hardware write of a fault entry. Returns `false` (and counts a
    /// drop) if the buffer is full; the warp stays stalled and will
    /// re-raise after the next replay.
    pub fn push(&mut self, entry: FaultEntry) -> bool {
        if self.entries.len() >= self.cfg.capacity {
            self.dropped += 1;
            return false;
        }
        self.entries.push_back(entry);
        self.written += 1;
        true
    }

    /// Driver-side fetch of up to `max` entries at virtual time `now`.
    ///
    /// Mirrors the driver's pre-processing loop: entries are read in order
    /// until the queue is empty or the batch is full. An entry whose
    /// payload is not yet ready costs one polling iteration (the driver
    /// spins on the ready bit). Returns the fetched entries and the number
    /// of polls incurred.
    pub fn fetch(&mut self, max: usize, now: SimTime) -> (Vec<FaultEntry>, u64) {
        let mut out = Vec::with_capacity(max.min(self.entries.len()));
        let polls = self.fetch_into(&mut out, max, now);
        (out, polls)
    }

    /// Like [`fetch`](Self::fetch), but appends into a caller-provided
    /// buffer so a driver can reuse one allocation across batches.
    /// Returns the number of polls incurred.
    pub fn fetch_into(&mut self, out: &mut Vec<FaultEntry>, max: usize, now: SimTime) -> u64 {
        let mut polls = 0;
        let mut taken = 0;
        while taken < max {
            let Some(head) = self.entries.front() else {
                break;
            };
            if head.timestamp + self.cfg.ready_delay > now {
                polls += 1;
            }
            out.push(self.entries.pop_front().expect("head checked above"));
            taken += 1;
        }
        self.fetched += taken as u64;
        polls
    }

    /// Flush: discard every entry currently in the buffer (the BatchFlush
    /// and Once replay policies do this before replaying so that resumed
    /// warps re-faulting do not duplicate entries already present).
    /// Returns how many entries were discarded.
    pub fn flush(&mut self) -> usize {
        let n = self.entries.len();
        self.flushed += n as u64;
        self.entries.clear();
        n
    }

    /// Entries currently waiting.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are waiting.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total faults the hardware failed to record (buffer full).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total entries ever written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Total entries ever fetched by the driver.
    pub fn fetched(&self) -> u64 {
        self.fetched
    }

    /// Total entries discarded by flushes.
    pub fn flushed(&self) -> u64 {
        self.flushed
    }

    /// Buffer capacity.
    pub fn capacity(&self) -> usize {
        self.cfg.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(page: u64, t_us: u64) -> FaultEntry {
        FaultEntry {
            page: GlobalPage(page),
            access: AccessType::Read,
            timestamp: SimTime::ZERO + SimDuration::from_micros(t_us),
            utlb: 0,
        }
    }

    fn buf(cap: usize) -> FaultBuffer {
        FaultBuffer::new(FaultBufferConfig {
            capacity: cap,
            ready_delay: SimDuration::from_micros(2),
        })
    }

    #[test]
    fn push_and_fetch_fifo() {
        let mut b = buf(16);
        for i in 0..5 {
            assert!(b.push(entry(i, 0)));
        }
        let now = SimTime::ZERO + SimDuration::from_micros(100);
        let (got, polls) = b.fetch(3, now);
        assert_eq!(got.iter().map(|e| e.page.0).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(polls, 0, "old entries are ready");
        assert_eq!(b.len(), 2);
        assert_eq!(b.fetched(), 3);
    }

    #[test]
    fn overflow_drops() {
        let mut b = buf(2);
        assert!(b.push(entry(0, 0)));
        assert!(b.push(entry(1, 0)));
        assert!(!b.push(entry(2, 0)));
        assert_eq!(b.dropped(), 1);
        assert_eq!(b.written(), 2);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn unready_entries_cost_polls() {
        let mut b = buf(16);
        // Written at t=10us, ready at 12us; fetch at 11us => 1 poll each.
        b.push(entry(0, 10));
        b.push(entry(1, 10));
        let (got, polls) = b.fetch(8, SimTime::ZERO + SimDuration::from_micros(11));
        assert_eq!(got.len(), 2);
        assert_eq!(polls, 2);
    }

    #[test]
    fn flush_discards_and_counts() {
        let mut b = buf(16);
        for i in 0..7 {
            b.push(entry(i, 0));
        }
        assert_eq!(b.flush(), 7);
        assert!(b.is_empty());
        assert_eq!(b.flushed(), 7);
        assert_eq!(b.flush(), 0);
    }

    #[test]
    fn fetch_respects_batch_limit() {
        let mut b = buf(512);
        for i in 0..300 {
            b.push(entry(i, 0));
        }
        let now = SimTime::ZERO + SimDuration::from_micros(100);
        let (got, _) = b.fetch(256, now);
        assert_eq!(got.len(), 256);
        assert_eq!(b.len(), 44);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        let _ = buf(0);
    }
}
