//! Copy-engine transfer accounting and the explicit-transfer baseline.
//!
//! Every byte that crosses the host–device interconnect is logged here, in
//! both directions. The totals drive the paper's data-movement analyses
//! (e.g. §V-A3: a random-access workload moving 504 GB for a 32 GB
//! footprint) and the explicit `cudaMemcpy` baseline of Figure 1.

use serde::{Deserialize, Serialize};
use sim_engine::{CostModel, SimDuration};

/// Running totals of interconnect traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferLog {
    /// Bytes moved host→device.
    pub h2d_bytes: u64,
    /// Bytes moved device→host.
    pub d2h_bytes: u64,
    /// Number of host→device DMA operations.
    pub h2d_ops: u64,
    /// Number of device→host DMA operations.
    pub d2h_ops: u64,
}

impl TransferLog {
    /// Record one host→device transfer.
    pub fn record_h2d(&mut self, bytes: u64) {
        self.h2d_bytes += bytes;
        self.h2d_ops += 1;
    }

    /// Record one device→host transfer.
    pub fn record_d2h(&mut self, bytes: u64) {
        self.d2h_bytes += bytes;
        self.d2h_ops += 1;
    }

    /// Total bytes moved in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }

    /// Merge another log into this one.
    pub fn merge(&mut self, other: &TransferLog) {
        self.h2d_bytes += other.h2d_bytes;
        self.d2h_bytes += other.d2h_bytes;
        self.h2d_ops += other.h2d_ops;
        self.d2h_ops += other.d2h_ops;
    }
}

/// The explicit-management baseline: one bulk `cudaMemcpy`-style transfer
/// of the whole working set, as a programmer doing manual memory
/// management would issue (Figure 1's "direct transfer" series).
pub fn explicit_transfer(cost: &CostModel, bytes: u64, log: &mut TransferLog) -> SimDuration {
    log.record_h2d(bytes);
    cost.explicit_transfer(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::units::GIB;

    #[test]
    fn log_accumulates() {
        let mut log = TransferLog::default();
        log.record_h2d(100);
        log.record_h2d(200);
        log.record_d2h(50);
        assert_eq!(log.h2d_bytes, 300);
        assert_eq!(log.h2d_ops, 2);
        assert_eq!(log.d2h_bytes, 50);
        assert_eq!(log.d2h_ops, 1);
        assert_eq!(log.total_bytes(), 350);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = TransferLog::default();
        a.record_h2d(10);
        let mut b = TransferLog::default();
        b.record_d2h(20);
        b.record_h2d(5);
        a.merge(&b);
        assert_eq!(a.h2d_bytes, 15);
        assert_eq!(a.d2h_bytes, 20);
        assert_eq!(a.h2d_ops, 2);
        assert_eq!(a.d2h_ops, 1);
    }

    #[test]
    fn explicit_transfer_is_bandwidth_bound() {
        let cost = CostModel::default();
        let mut log = TransferLog::default();
        let t = explicit_transfer(&cost, 12 * GIB, &mut log);
        // 12 GiB at 12 GB/s ≈ 1.07 s, plus tiny setup.
        assert!((1.0..1.2).contains(&t.as_secs_f64()), "t = {t}");
        assert_eq!(log.h2d_bytes, 12 * GIB);
    }
}
