//! Page-granularity addressing for the unified managed address space.
//!
//! The simulator models one managed virtual address space per run. The
//! space is a contiguous sequence of 4 KB pages numbered by [`GlobalPage`];
//! individual `cudaMallocManaged` allocations ("VA ranges" in driver
//! parlance) are carved out of it by the driver crate. Pages group into
//! 2 MB VABlocks indexed by [`VaBlockIdx`].

use serde::{Deserialize, Serialize};
use sim_engine::units::PAGES_PER_VABLOCK;
use std::fmt;

/// Index of a 4 KB page within the managed address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GlobalPage(pub u64);

/// Index of a 2 MB VABlock within the managed address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VaBlockIdx(pub u64);

/// Whether a memory access reads or writes the page. Writes mark pages
/// dirty, which matters for eviction write-back cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessType {
    /// Read access.
    Read,
    /// Write access (dirties the page).
    Write,
}

impl GlobalPage {
    /// VABlock containing this page.
    #[inline]
    pub fn vablock(self) -> VaBlockIdx {
        VaBlockIdx(self.0 / PAGES_PER_VABLOCK as u64)
    }

    /// Index of this page within its VABlock (0..512).
    #[inline]
    pub fn offset_in_vablock(self) -> usize {
        (self.0 % PAGES_PER_VABLOCK as u64) as usize
    }

    /// Raw page number.
    #[inline]
    pub fn index(self) -> u64 {
        self.0
    }
}

impl VaBlockIdx {
    /// First page of this VABlock.
    #[inline]
    pub fn first_page(self) -> GlobalPage {
        GlobalPage(self.0 * PAGES_PER_VABLOCK as u64)
    }

    /// Page at `offset` (0..512) within this VABlock.
    #[inline]
    pub fn page_at(self, offset: usize) -> GlobalPage {
        debug_assert!(offset < PAGES_PER_VABLOCK);
        GlobalPage(self.0 * PAGES_PER_VABLOCK as u64 + offset as u64)
    }

    /// Raw VABlock number.
    #[inline]
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for GlobalPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

impl fmt::Display for VaBlockIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vablock#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_to_vablock_mapping() {
        assert_eq!(GlobalPage(0).vablock(), VaBlockIdx(0));
        assert_eq!(GlobalPage(511).vablock(), VaBlockIdx(0));
        assert_eq!(GlobalPage(512).vablock(), VaBlockIdx(1));
        assert_eq!(GlobalPage(512 * 7 + 13).vablock(), VaBlockIdx(7));
        assert_eq!(GlobalPage(512 * 7 + 13).offset_in_vablock(), 13);
    }

    #[test]
    fn vablock_page_roundtrip() {
        let vb = VaBlockIdx(42);
        for off in [0usize, 1, 255, 511] {
            let p = vb.page_at(off);
            assert_eq!(p.vablock(), vb);
            assert_eq!(p.offset_in_vablock(), off);
        }
        assert_eq!(vb.first_page(), vb.page_at(0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(GlobalPage(3).to_string(), "page#3");
        assert_eq!(VaBlockIdx(3).to_string(), "vablock#3");
    }
}
