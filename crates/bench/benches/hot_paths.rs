//! Micro-benches of the fault-pipeline hot paths, isolated from the
//! experiment harness: batch pre-processing (sort-then-group into a
//! reusable arena), the engine's post-replay retry scan, word-at-a-time
//! `PageMask` operations, and one end-to-end oversubscribed point at
//! `Scale::QUICK`.
//!
//! These are the loops the `repro` wall time is made of; `cargo bench
//! -p bench hot_paths` gives a stable regression guard around each one
//! without re-running whole experiments.

use bench::experiments::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_model::{
    AccessType, BlockTrace, FaultBuffer, FaultBufferConfig, FaultEntry, GlobalPage, GpuConfig,
    GpuEngine, PageMask, WorkloadTrace,
};
use sim_engine::{SimDuration, SimRng, SimTime};
use std::hint::black_box;
use uvm_sim::{BatchArena, ManagedSpace, WorkloadKind};

/// 256 faults spread over a handful of VABlocks, timestamps in order —
/// the shape `process_pass` sees every batch in the thrash steady state.
fn batch_entries() -> Vec<FaultEntry> {
    (0..256u64)
        .map(|i| FaultEntry {
            // Stride pages so the sort actually reorders runs.
            page: GlobalPage((i * 37) % 2048),
            access: if i % 4 == 0 {
                AccessType::Write
            } else {
                AccessType::Read
            },
            timestamp: SimTime::ZERO + SimDuration::from_nanos(i),
            utlb: (i % 80) as u32,
        })
        .collect()
}

fn bench_batch_preprocess(c: &mut Criterion) {
    let entries = batch_entries();
    let mut space = ManagedSpace::new();
    space.alloc(2048 * 4096, "bench");
    let mut buffer = FaultBuffer::new(FaultBufferConfig::default());
    let mut arena = BatchArena::default();
    c.benchmark_group("hot_paths")
        .bench_function("batch_preprocess_256", |b| {
            b.iter(|| {
                for e in &entries {
                    buffer.push(*e);
                }
                uvm_driver::batch::gather_into(
                    &mut buffer,
                    256,
                    SimTime::ZERO + SimDuration::from_micros(1),
                    &mut space,
                    &mut arena,
                );
                black_box(arena.batch.groups.len())
            })
        });
}

/// A grid of stalled blocks retrying scattered non-resident pages — the
/// replay-retry scan that dominates oversubscribed runs.
fn bench_replay_retry(c: &mut Criterion) {
    let mut space = ManagedSpace::new();
    space.alloc(1 << 30, "bench"); // 256 Ki pages, none resident
    let mut rng = SimRng::from_seed(7);
    let blocks: Vec<BlockTrace> = (0..256)
        .map(|_| {
            let mut bt = BlockTrace::new(SimDuration::from_nanos(10));
            bt.push_step((0..32).map(|_| GlobalPage(rng.index(1 << 18) as u64)), false);
            bt
        })
        .collect();
    let trace = WorkloadTrace {
        name: "retry".into(),
        blocks,
        footprint_pages: 1 << 18,
    };
    let mut engine = GpuEngine::launch(GpuConfig::default(), trace, SimRng::from_seed(1));
    let mut buffer = FaultBuffer::new(FaultBufferConfig::default());
    engine.run(&space, &mut buffer, SimTime::ZERO); // initial stall
    c.benchmark_group("hot_paths")
        .bench_function("replay_retry_256_blocks", |b| {
            b.iter(|| {
                buffer.flush();
                engine.replay();
                black_box(engine.run(&space, &mut buffer, SimTime::ZERO))
            })
        });
}

fn bench_mask_word_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_paths");
    group.bench_function("mask_set_span", |b| {
        b.iter(|| {
            let mut m = PageMask::default();
            for start in (0..448).step_by(64) {
                m.set_span(black_box(start + 3), black_box(61));
            }
            black_box(m.count())
        })
    });
    group.bench_function("mask_for_each_set_word", |b| {
        let mut m = PageMask::default();
        m.set_span(17, 400);
        b.iter(|| {
            let mut total = 0u32;
            m.for_each_set_word(|_, bits| total += bits.count_ones());
            black_box(total)
        })
    });
}

/// End-to-end oversubscribed random point at 1/128 scale: every layer of
/// the pipeline (engine, buffer, batching, prefetch, eviction) in one
/// number.
fn bench_quick_point(c: &mut Criterion) {
    let scale = Scale::QUICK;
    let cfg = scale.config();
    let w = scale.workload(WorkloadKind::Random, 1.3);
    let prepared = uvm_sim::prepare(&cfg, &w);
    c.benchmark_group("hot_paths")
        .sample_size(10)
        .bench_function("quick_random_oversub_1_3", |b| {
            b.iter(|| black_box(uvm_sim::run_prepared(&cfg, &prepared)))
        });
}

criterion_group!(
    hot_paths,
    bench_batch_preprocess,
    bench_replay_retry,
    bench_mask_word_ops,
    bench_quick_point,
);
criterion_main!(hot_paths);
