//! Micro-benches of the fault-pipeline hot paths, isolated from the
//! experiment harness: batch pre-processing (sort-then-group into a
//! reusable arena), the engine's post-replay retry scan, word-at-a-time
//! `PageMask` operations, the word-parallel mask kernels behind the SoA
//! driver (`count_span` / `next_set` / `andnot_with`), the batched LRU
//! eviction scan, and one end-to-end oversubscribed point at
//! `Scale::QUICK`.
//!
//! These are the loops the `repro` wall time is made of; `cargo bench
//! -p bench hot_paths` gives a stable regression guard around each one
//! without re-running whole experiments.

use bench::experiments::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_model::{
    AccessType, BlockTrace, FaultBuffer, FaultBufferConfig, FaultEntry, GlobalPage, GpuConfig,
    GpuEngine, PageMask, WorkloadTrace,
};
use sim_engine::units::VABLOCK_SIZE;
use sim_engine::{CostModel, SimDuration, SimRng, SimTime};
use std::hint::black_box;
use uvm_driver::{DriverConfig, PrefetchPolicy, UvmDriver, VaRange};
use uvm_sim::{BatchArena, ManagedSpace, WorkloadKind};

/// 256 faults spread over a handful of VABlocks, timestamps in order —
/// the shape `process_pass` sees every batch in the thrash steady state.
fn batch_entries() -> Vec<FaultEntry> {
    (0..256u64)
        .map(|i| FaultEntry {
            // Stride pages so the sort actually reorders runs.
            page: GlobalPage((i * 37) % 2048),
            access: if i % 4 == 0 {
                AccessType::Write
            } else {
                AccessType::Read
            },
            timestamp: SimTime::ZERO + SimDuration::from_nanos(i),
            utlb: (i % 80) as u32,
        })
        .collect()
}

fn bench_batch_preprocess(c: &mut Criterion) {
    let entries = batch_entries();
    let mut space = ManagedSpace::new();
    space.alloc(2048 * 4096, "bench");
    let mut buffer = FaultBuffer::new(FaultBufferConfig::default());
    let mut arena = BatchArena::default();
    c.benchmark_group("hot_paths")
        .bench_function("batch_preprocess_256", |b| {
            b.iter(|| {
                for e in &entries {
                    buffer.push(*e);
                }
                uvm_driver::batch::gather_into(
                    &mut buffer,
                    256,
                    SimTime::ZERO + SimDuration::from_micros(1),
                    &mut space,
                    &mut arena,
                );
                black_box(arena.batch.groups.len())
            })
        });
}

/// A grid of stalled blocks retrying scattered non-resident pages — the
/// replay-retry scan that dominates oversubscribed runs.
fn bench_replay_retry(c: &mut Criterion) {
    let mut space = ManagedSpace::new();
    space.alloc(1 << 30, "bench"); // 256 Ki pages, none resident
    let mut rng = SimRng::from_seed(7);
    let blocks: Vec<BlockTrace> = (0..256)
        .map(|_| {
            let mut bt = BlockTrace::new(SimDuration::from_nanos(10));
            bt.push_step((0..32).map(|_| GlobalPage(rng.index(1 << 18) as u64)), false);
            bt
        })
        .collect();
    let trace = WorkloadTrace {
        name: "retry".into(),
        blocks,
        footprint_pages: 1 << 18,
    };
    let mut engine = GpuEngine::launch(GpuConfig::default(), trace, SimRng::from_seed(1));
    let mut buffer = FaultBuffer::new(FaultBufferConfig::default());
    engine.run(&space, &mut buffer, SimTime::ZERO); // initial stall
    c.benchmark_group("hot_paths")
        .bench_function("replay_retry_256_blocks", |b| {
            b.iter(|| {
                buffer.flush();
                engine.replay();
                black_box(engine.run(&space, &mut buffer, SimTime::ZERO))
            })
        });
}

fn bench_mask_word_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_paths");
    group.bench_function("mask_set_span", |b| {
        b.iter(|| {
            let mut m = PageMask::default();
            for start in (0..448).step_by(64) {
                m.set_span(black_box(start + 3), black_box(61));
            }
            black_box(m.count())
        })
    });
    group.bench_function("mask_for_each_set_word", |b| {
        let mut m = PageMask::default();
        m.set_span(17, 400);
        b.iter(|| {
            let mut total = 0u32;
            m.for_each_set_word(|_, bits| total += bits.count_ones());
            black_box(total)
        })
    });
}

/// The word-parallel mask kernels the SoA driver hot paths lean on:
/// popcount span counts, trailing_zeros set-bit walks, and the
/// AND-NOT / intersection combinators used by eviction bookkeeping.
fn bench_mask_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_paths");
    // A realistic half-populated residency mask with ragged word edges.
    let mut m = PageMask::default();
    for start in (0..512).step_by(32) {
        m.set_span(start + 5, 17);
    }
    let mut other = PageMask::default();
    other.set_span(100, 300);
    group.bench_function("mask_count_span", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for start in (0..448).step_by(64) {
                total += m.count_span(black_box(start + 3), black_box(61));
            }
            black_box(total)
        })
    });
    group.bench_function("mask_next_set_walk", |b| {
        b.iter(|| {
            let mut n = 0usize;
            let mut at = m.first_set();
            while let Some(p) = at {
                n += 1;
                at = m.next_set(p + 1);
            }
            black_box(n)
        })
    });
    group.bench_function("mask_andnot_intersect", |b| {
        b.iter(|| {
            let mut scratch = m;
            scratch.andnot_with(black_box(&other));
            black_box(scratch.intersect_count(&m) + m.difference_count(&other))
        })
    });
}

/// The batched LRU eviction scan in steady-state thrash: two 8-block
/// regions ping-pong through an 8-block GPU, so every `prefetch_range`
/// runs one `evict_batch` that selects and migrates out 8 victims.
fn bench_eviction_scan(c: &mut Criterion) {
    let cfg = DriverConfig {
        prefetch: PrefetchPolicy::Disabled,
        gpu_memory_bytes: 8 * VABLOCK_SIZE,
        ..DriverConfig::default()
    };
    let mut space = ManagedSpace::new();
    let range = space.alloc(64 * VABLOCK_SIZE, "bench");
    let pages_per_block = (VABLOCK_SIZE / 4096) as u64;
    let region = |blocks: std::ops::Range<u64>| VaRange {
        name: "sub".into(),
        start_page: range.start_page + blocks.start * pages_per_block,
        num_pages: (blocks.end - blocks.start) * pages_per_block,
    };
    let (a, b_region) = (region(0..8), region(8..16));
    let mut d = UvmDriver::new(cfg, CostModel::default(), space, SimRng::from_seed(7));
    let mut t = SimTime::ZERO + SimDuration::from_millis(1);
    // Prime the GPU full so every later prefetch must evict.
    t += d.prefetch_range(&a, t);
    c.benchmark_group("hot_paths")
        .bench_function("eviction_scan_8_blocks", |b| {
            b.iter(|| {
                t += d.prefetch_range(black_box(&b_region), t);
                t += d.prefetch_range(black_box(&a), t);
                black_box(d.counters().evictions)
            })
        });
}

/// End-to-end oversubscribed random point at 1/128 scale: every layer of
/// the pipeline (engine, buffer, batching, prefetch, eviction) in one
/// number.
fn bench_quick_point(c: &mut Criterion) {
    let scale = Scale::QUICK;
    let cfg = scale.config();
    let w = scale.workload(WorkloadKind::Random, 1.3);
    let prepared = uvm_sim::prepare(&cfg, &w);
    c.benchmark_group("hot_paths")
        .sample_size(10)
        .bench_function("quick_random_oversub_1_3", |b| {
            b.iter(|| black_box(uvm_sim::run_prepared(&cfg, &prepared)))
        });
}

criterion_group!(
    hot_paths,
    bench_batch_preprocess,
    bench_replay_retry,
    bench_mask_word_ops,
    bench_mask_kernels,
    bench_eviction_scan,
    bench_quick_point,
);
criterion_main!(hot_paths);
