//! Criterion benches, one group per table and figure of the paper.
//!
//! Each bench measures the wall time of regenerating that experiment at
//! `Scale::QUICK` (12 GB / 128 of simulated GPU memory). The point is a
//! stable, regression-guarded harness around exactly the code the `repro`
//! binary runs at full scale; EXPERIMENTS.md records the full-scale
//! numbers themselves.

use bench::experiments::{figures, tables, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const SCALE: Scale = Scale::QUICK;

fn bench_fig1(c: &mut Criterion) {
    c.benchmark_group("fig1_latency_gap")
        .sample_size(10)
        .bench_function("regen", |b| b.iter(|| black_box(figures::fig1(SCALE))));
}

fn bench_fig3(c: &mut Criterion) {
    c.benchmark_group("fig3_fault_scaling")
        .sample_size(10)
        .bench_function("regen", |b| b.iter(|| black_box(figures::fig3(SCALE))));
}

fn bench_fig4(c: &mut Criterion) {
    c.benchmark_group("fig4_service_breakdown")
        .sample_size(10)
        .bench_function("regen", |b| b.iter(|| black_box(figures::fig4(SCALE))));
}

fn bench_fig5(c: &mut Criterion) {
    c.benchmark_group("fig5_batch_policy")
        .sample_size(10)
        .bench_function("regen", |b| b.iter(|| black_box(figures::fig5(SCALE))));
}

fn bench_fig6(c: &mut Criterion) {
    c.benchmark_group("fig6_density_tree")
        .bench_function("regen", |b| b.iter(|| black_box(figures::fig6(SCALE))));
}

fn bench_fig7(c: &mut Criterion) {
    c.benchmark_group("fig7_access_patterns")
        .sample_size(10)
        .bench_function("regen", |b| b.iter(|| black_box(figures::fig7(SCALE))));
}

fn bench_fig8(c: &mut Criterion) {
    c.benchmark_group("fig8_sgemm_eviction_timeline")
        .sample_size(10)
        .bench_function("regen", |b| b.iter(|| black_box(figures::fig8(SCALE))));
}

fn bench_fig9(c: &mut Criterion) {
    c.benchmark_group("fig9_oversub_breakdown")
        .sample_size(10)
        .bench_function("regen", |b| b.iter(|| black_box(figures::fig9(SCALE))));
}

fn bench_fig10(c: &mut Criterion) {
    c.benchmark_group("fig10_compute_rate")
        .sample_size(10)
        .bench_function("regen", |b| b.iter(|| black_box(figures::fig10(SCALE))));
}

fn bench_table1(c: &mut Criterion) {
    c.benchmark_group("table1_fault_reduction")
        .sample_size(10)
        .bench_function("regen", |b| b.iter(|| black_box(tables::table1(SCALE))));
}

fn bench_table2(c: &mut Criterion) {
    c.benchmark_group("table2_sgemm_scaling")
        .sample_size(10)
        .bench_function("regen", |b| b.iter(|| black_box(tables::table2(SCALE))));
}

criterion_group!(
    paper,
    bench_fig1,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_table1,
    bench_table2,
);
criterion_main!(paper);
