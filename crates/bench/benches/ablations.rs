//! Criterion benches for the ablation studies of DESIGN.md's design
//! choices (the paper's §VI "paths forward"), plus microbenchmarks of the
//! driver's hot data structures so algorithmic regressions in the
//! prefetch tree, page masks, or LRU show up immediately.

use bench::experiments::{ablations, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_model::{PageMask, VaBlockIdx};
use std::hint::black_box;
use uvm_driver::prefetch::{compute_prefetch, DensityTree, ResolvedPrefetch};
use uvm_driver::LruList;

const SCALE: Scale = Scale::QUICK;

fn bench_ablation_replay(c: &mut Criterion) {
    c.benchmark_group("ablation_replay_policies")
        .sample_size(10)
        .bench_function("regen", |b| {
            b.iter(|| black_box(ablations::ablation_replay(SCALE)))
        });
}

fn bench_ablation_threshold(c: &mut Criterion) {
    c.benchmark_group("ablation_density_threshold")
        .sample_size(10)
        .bench_function("regen", |b| {
            b.iter(|| black_box(ablations::ablation_threshold(SCALE)))
        });
}

fn bench_ablation_granularity(c: &mut Criterion) {
    c.benchmark_group("ablation_alloc_granularity")
        .sample_size(10)
        .bench_function("regen", |b| {
            b.iter(|| black_box(ablations::ablation_granularity(SCALE)))
        });
}

fn bench_ablation_eviction(c: &mut Criterion) {
    c.benchmark_group("ablation_eviction_aging")
        .sample_size(10)
        .bench_function("regen", |b| {
            b.iter(|| black_box(ablations::ablation_eviction(SCALE)))
        });
}

fn bench_ablation_batch_size(c: &mut Criterion) {
    c.benchmark_group("ablation_batch_size")
        .sample_size(10)
        .bench_function("regen", |b| {
            b.iter(|| black_box(ablations::ablation_batch_size(SCALE)))
        });
}

// ---- Hot data-structure microbenchmarks ----

fn bench_density_tree(c: &mut Criterion) {
    let mut mask = PageMask::EMPTY;
    for i in (0..512).step_by(3) {
        mask.set(i);
    }
    let mut g = c.benchmark_group("micro_density_tree");
    g.bench_function("from_mask", |b| {
        b.iter(|| black_box(DensityTree::from_mask(black_box(&mask))))
    });
    let tree = DensityTree::from_mask(&mask);
    g.bench_function("region_for", |b| {
        b.iter(|| {
            for leaf in (0..512).step_by(7) {
                black_box(tree.region_for(black_box(leaf), 51));
            }
        })
    });
    // Incremental maintenance vs full rebuild: the driver now keeps one
    // persistent tree per VABlock and applies each commit's migrated
    // pages as leaf-to-root path updates. A typical commit migrates a
    // handful of pages, so `add_mask` on a sparse delta should beat
    // rebuilding all 1023 nodes from the 512-page residency mask.
    let mut delta = PageMask::EMPTY;
    for i in (1..512).step_by(97) {
        delta.set(i);
    }
    let delta = delta.difference(&mask);
    let updated = mask.union(&delta);
    g.bench_function("rebuild_after_commit", |b| {
        b.iter(|| black_box(DensityTree::from_mask(black_box(&updated))))
    });
    g.bench_function("incremental_add_after_commit", |b| {
        // The clone stands in for setup (the driver mutates in place);
        // it is included in the measurement, so if incremental still
        // wins here it wins by more in the driver.
        b.iter(|| {
            let mut t = black_box(&tree).clone();
            t.add_mask(black_box(&delta));
            black_box(t)
        })
    });
    g.bench_function("compute_prefetch_per_vablock", |b| {
        let mut faulted = PageMask::EMPTY;
        for i in (0..512).step_by(37) {
            faulted.set(i);
        }
        let resident = mask.difference(&faulted);
        b.iter(|| {
            black_box(compute_prefetch(
                ResolvedPrefetch::Density {
                    threshold: 51,
                    big_pages: true,
                },
                black_box(&resident),
                black_box(&faulted),
                &PageMask::FULL,
            ))
        })
    });
    g.finish();
}

fn bench_page_mask(c: &mut Criterion) {
    let mut a = PageMask::EMPTY;
    let mut bm = PageMask::EMPTY;
    for i in (0..512).step_by(2) {
        a.set(i);
    }
    for i in (0..512).step_by(5) {
        bm.set(i);
    }
    let mut g = c.benchmark_group("micro_page_mask");
    g.bench_function("count", |b| b.iter(|| black_box(black_box(&a).count())));
    g.bench_function("union_difference", |b| {
        b.iter(|| black_box(black_box(&a).union(&bm).difference(&bm)))
    });
    g.bench_function("iter_set", |b| {
        b.iter(|| black_box(black_box(&a).iter_set().sum::<usize>()))
    });
    g.finish();
}

fn bench_lru(c: &mut Criterion) {
    c.benchmark_group("micro_lru")
        .bench_function("touch_churn", |b| {
            let mut lru = LruList::new(4096);
            for i in 0..4096 {
                lru.touch(VaBlockIdx(i));
            }
            let mut i = 0u64;
            b.iter(|| {
                i = (i * 2654435761 + 1) % 4096;
                lru.touch(VaBlockIdx(black_box(i)));
                if i.is_multiple_of(7) {
                    if let Some(v) = lru.pop_lru() {
                        lru.touch(v);
                    }
                }
            })
        });
}

criterion_group!(
    ablations_and_micro,
    bench_ablation_replay,
    bench_ablation_threshold,
    bench_ablation_granularity,
    bench_ablation_eviction,
    bench_ablation_batch_size,
    bench_density_tree,
    bench_page_mask,
    bench_lru,
);
criterion_main!(ablations_and_micro);
