//! Shared experiment plumbing: the scale knob, config presets, parallel
//! sweep execution, and the artifact type every experiment returns.

pub mod ablations;
pub mod extras;
pub mod figures;
pub mod obs;
pub mod tables;

use metrics::report::Table;
use sim_engine::units::GIB;
use std::sync::atomic::{AtomicU64, Ordering};
use uvm_sim::{SimConfig, SimReport, Workload, WorkloadKind};

/// Geometric scale of the simulated platform relative to the paper's
/// Titan V (12 GB). Footprints are specified as subscription *ratios*, so
/// crossover positions are scale-invariant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// GPU memory = 12 GB × `fraction`.
    pub fraction: f64,
}

impl Scale {
    /// Default experiment scale: 12 GB / 16 = 768 MiB of GPU memory.
    pub const DEFAULT: Scale = Scale {
        fraction: 1.0 / 16.0,
    };

    /// Quick scale for Criterion benches and smoke tests: 12 GB / 128.
    pub const QUICK: Scale = Scale {
        fraction: 1.0 / 128.0,
    };

    /// GPU memory in bytes at this scale.
    pub fn gpu_bytes(&self) -> u64 {
        (12.0 * GIB as f64 * self.fraction) as u64
    }

    /// Base simulation config at this scale.
    pub fn config(&self) -> SimConfig {
        SimConfig::scaled(self.fraction)
    }

    /// A workload of `kind` sized to `ratio` × GPU memory. Compute-rate
    /// parameters are scaled alongside memory so the compute/transfer
    /// balance of the full-size platform is preserved.
    pub fn workload(&self, kind: WorkloadKind, ratio: f64) -> Workload {
        let mut w = Workload::with_footprint(kind, (self.gpu_bytes() as f64 * ratio) as u64);
        if let Workload::Sgemm(p) = &mut w {
            p.gpu_flops *= self.fraction;
        }
        w
    }
}

/// What an experiment produces: a rendered table plus any CSV artifacts
/// (scatter data for the figure plots).
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The table/series the paper reports.
    pub table: Table,
    /// Named CSV blobs (e.g. fault scatter data per workload).
    pub csvs: Vec<(String, String)>,
}

impl Artifact {
    /// An artifact with just a table.
    pub fn table(table: Table) -> Self {
        Artifact {
            table,
            csvs: Vec::new(),
        }
    }
}

/// Simulated faults observed by every sweep since the last
/// [`take_sim_totals`] call (feeds the `repro --json` throughput report).
static SWEEP_FAULTS: AtomicU64 = AtomicU64::new(0);
/// Completed warp-steps across the same sweeps.
static SWEEP_STEPS: AtomicU64 = AtomicU64::new(0);
/// Pages evicted across the same sweeps (trend headline metric).
static SWEEP_EVICTED: AtomicU64 = AtomicU64::new(0);
/// Pages prefetched across the same sweeps.
static SWEEP_PREFETCHED: AtomicU64 = AtomicU64::new(0);
/// Pages migrated H2D across the same sweeps (coverage denominator).
static SWEEP_H2D_PAGES: AtomicU64 = AtomicU64::new(0);

/// Simulated-work totals accumulated across [`run_sweep`] calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepTotals {
    /// Driver-observed faults.
    pub faults: u64,
    /// Completed warp-steps.
    pub warp_steps: u64,
    /// Pages evicted from GPU memory.
    pub pages_evicted: u64,
    /// Pages brought in by the prefetcher.
    pub pages_prefetched: u64,
    /// Pages migrated host→device (faulted + prefetched).
    pub pages_h2d: u64,
}

impl SweepTotals {
    /// Pages evicted per fault (0 when no faults).
    pub fn evictions_per_fault(&self) -> f64 {
        if self.faults == 0 {
            0.0
        } else {
            self.pages_evicted as f64 / self.faults as f64
        }
    }

    /// Prefetched share of all H2D page migrations, percent.
    pub fn coverage_pct(&self) -> f64 {
        if self.pages_h2d == 0 {
            0.0
        } else {
            self.pages_prefetched as f64 * 100.0 / self.pages_h2d as f64
        }
    }
}

/// Drain the accumulated simulated-work totals. Counts everything that
/// flowed through [`run_sweep`] since the last call — the harness divides
/// by wall time for faults/sec and warp-steps/sec throughput, and feeds
/// the ratio metrics into the `ci_trend` perf record.
pub fn take_sim_totals() -> SweepTotals {
    SweepTotals {
        faults: SWEEP_FAULTS.swap(0, Ordering::Relaxed),
        warp_steps: SWEEP_STEPS.swap(0, Ordering::Relaxed),
        pages_evicted: SWEEP_EVICTED.swap(0, Ordering::Relaxed),
        pages_prefetched: SWEEP_PREFETCHED.swap(0, Ordering::Relaxed),
        pages_h2d: SWEEP_H2D_PAGES.swap(0, Ordering::Relaxed),
    }
}

/// Run a set of (config, workload) points in parallel, preserving order.
/// Wraps [`uvm_sim::run_sweep_with`] (which dedupes trace generation
/// across points sharing a `(workload, seed)` pair) with the harness's
/// observability: when `repro` armed tracing, span/fault capture is
/// switched on per point and the finished reports are folded into the
/// Chrome-trace collection; when progress is armed, point completions
/// drive the live stderr telemetry line.
pub fn run_sweep(mut points: Vec<(SimConfig, Workload)>) -> Vec<SimReport> {
    obs::instrument_points(&mut points);
    // The sweep consumes the configs; keep the per-point prefetch-policy
    // labels for the metrics exposition.
    let policies: Vec<&'static str> = points
        .iter()
        .map(|(config, _)| config.driver.prefetch.label())
        .collect();
    obs::sweep_begin(points.len());
    let reports = uvm_sim::run_sweep_with(points, |_, r| obs::on_point_done(r));
    obs::sweep_end();
    obs::collect_reports(&reports);
    obs::collect_metrics(&policies, &reports);
    let faults: u64 = reports.iter().map(|r| r.total_faults()).sum();
    let steps: u64 = reports.iter().map(|r| r.engine.steps_completed).sum();
    let evicted: u64 = reports.iter().map(|r| r.counters.pages_evicted_total()).sum();
    let prefetched: u64 = reports.iter().map(|r| r.counters.pages_prefetched).sum();
    let h2d: u64 = reports.iter().map(|r| r.counters.pages_migrated_h2d()).sum();
    SWEEP_FAULTS.fetch_add(faults, Ordering::Relaxed);
    SWEEP_STEPS.fetch_add(steps, Ordering::Relaxed);
    SWEEP_EVICTED.fetch_add(evicted, Ordering::Relaxed);
    SWEEP_PREFETCHED.fetch_add(prefetched, Ordering::Relaxed);
    SWEEP_H2D_PAGES.fetch_add(h2d, Ordering::Relaxed);
    reports
}

/// Milliseconds with 3 decimals for table cells.
pub fn ms(d: sim_engine::SimDuration) -> String {
    format!("{:.3}", d.as_millis_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_arithmetic() {
        assert_eq!(Scale::DEFAULT.gpu_bytes(), 12 * GIB / 16);
        let cfg = Scale::DEFAULT.config();
        assert_eq!(cfg.driver.gpu_memory_bytes, 12 * GIB / 16);
    }

    #[test]
    fn workload_ratio_sizing() {
        let w = Scale::DEFAULT.workload(WorkloadKind::Regular, 0.5);
        let ratio = w.footprint_bytes() as f64 / Scale::DEFAULT.gpu_bytes() as f64;
        assert!((ratio - 0.5).abs() < 0.01);
    }

    #[test]
    fn sweep_runs_in_order() {
        let s = Scale::QUICK;
        let points = vec![
            (s.config(), s.workload(WorkloadKind::Regular, 0.05)),
            (s.config(), s.workload(WorkloadKind::Regular, 0.1)),
        ];
        let reports = run_sweep(points);
        assert_eq!(reports.len(), 2);
        assert!(reports[0].footprint_bytes < reports[1].footprint_bytes);
    }
}
