//! Ablation studies for the design choices DESIGN.md calls out — the
//! paper's §VI "paths forward" plus the batch-size question §III-D raises.

use super::{ms, run_sweep, Artifact, Scale};
use metrics::report::{f, Table};
use metrics::Category;
use uvm_driver::{EvictionPolicy, PrefetchPolicy, ReplayPolicy};
use uvm_sim::WorkloadKind;

/// Replay-policy ablation (paper §III-E): all four policies on the
/// regular kernel. Flushing policies pay replay-policy cost to keep
/// preprocessing lean; non-flushing policies shift cost into
/// preprocessing via stale duplicates.
pub fn ablation_replay(scale: Scale) -> Artifact {
    let policies = [
        ReplayPolicy::Block,
        ReplayPolicy::Batch,
        ReplayPolicy::BatchFlush,
        ReplayPolicy::Once,
    ];
    let points = policies
        .iter()
        .map(|&p| {
            let mut c = scale.config();
            c.driver.replay_policy = p;
            c.driver.prefetch = PrefetchPolicy::Disabled;
            (c, scale.workload(WorkloadKind::Regular, 0.5))
        })
        .collect();
    let reports = run_sweep(points);

    let mut table = Table::new(
        "Ablation: replay policies (regular, prefetch off)",
        &[
            "policy",
            "kernel_ms",
            "preprocess_ms",
            "replay_policy_ms",
            "faults",
            "replays",
        ],
    );
    for (p, r) in policies.iter().zip(&reports) {
        table.row(vec![
            p.label().into(),
            ms(r.total_time),
            ms(r.timers.get(Category::Preprocess)),
            ms(r.timers.get(Category::ReplayPolicy)),
            format!("{}", r.total_faults()),
            format!("{}", r.counters.replays),
        ]);
    }
    Artifact::table(table)
}

/// Prefetch-threshold ablation (paper §IV-C / §VI-B4): threshold 1
/// ("aggressive") should rival explicit transfer when undersubscribed.
pub fn ablation_threshold(scale: Scale) -> Artifact {
    let thresholds = [1u8, 25, 51, 75, 100];
    let mut points = Vec::new();
    for &t in &thresholds {
        let mut c = scale.config();
        c.driver.prefetch = PrefetchPolicy::Density {
            threshold: t,
            big_pages: true,
        };
        points.push((c, scale.workload(WorkloadKind::Regular, 0.5)));
    }
    let reports = run_sweep(points);

    let mut table = Table::new(
        "Ablation: density threshold (regular, undersubscribed)",
        &[
            "threshold",
            "kernel_ms",
            "explicit_ms",
            "faults",
            "pages_prefetched",
        ],
    );
    for (t, r) in thresholds.iter().zip(&reports) {
        table.row(vec![
            format!("{t}"),
            ms(r.total_time),
            ms(r.explicit_time),
            format!("{}", r.total_faults()),
            format!("{}", r.counters.pages_prefetched),
        ]);
    }
    Artifact::table(table)
}

/// Allocation-granularity ablation (paper §VI-B2): finer physical
/// allocation units waste less GPU memory on irregular access, reducing
/// eviction pressure for the random workload under oversubscription.
pub fn ablation_granularity(scale: Scale) -> Artifact {
    let granularities = [16usize, 64, 512];
    let points = granularities
        .iter()
        .map(|&g| {
            let mut c = scale.config();
            c.driver.alloc_granularity_pages = g;
            (c, scale.workload(WorkloadKind::Random, 1.3))
        })
        .collect();
    let reports = run_sweep(points);

    let mut table = Table::new(
        "Ablation: allocation granularity (random, 130% oversubscribed)",
        &[
            "granularity_kib",
            "kernel_ms",
            "evictions",
            "pages_evicted",
            "bytes_moved_mib",
        ],
    );
    for (g, r) in granularities.iter().zip(&reports) {
        table.row(vec![
            format!("{}", g * 4),
            ms(r.total_time),
            format!("{}", r.counters.evictions),
            format!("{}", r.counters.pages_evicted_total()),
            format!("{}", r.bytes_moved() >> 20),
        ]);
    }
    Artifact::table(table)
}

/// Eviction-policy ablation (paper §VI-B3): Volta-style access counters
/// keep GPU-hot blocks off the LRU tail, reducing evict-then-refault.
pub fn ablation_eviction(scale: Scale) -> Artifact {
    let policies = [EvictionPolicy::FaultLru, EvictionPolicy::AccessCounterLru];
    let points = policies
        .iter()
        .map(|&p| {
            let mut c = scale.config();
            c.driver.eviction = p;
            c.gpu.access_counters.enabled = matches!(p, EvictionPolicy::AccessCounterLru);
            c.gpu.access_counters.threshold = 64;
            (c, super::figures::sgemm_at_ratio(scale, 1.27))
        })
        .collect();
    let reports = run_sweep(points);

    let mut table = Table::new(
        "Ablation: eviction aging (sgemm, ~127% oversubscribed)",
        &[
            "policy",
            "kernel_ms",
            "evictions",
            "pages_evicted",
            "faults",
        ],
    );
    for (p, r) in policies.iter().zip(&reports) {
        table.row(vec![
            p.label().into(),
            ms(r.total_time),
            format!("{}", r.counters.evictions),
            format!("{}", r.counters.pages_evicted_total()),
            format!("{}", r.total_faults()),
        ]);
    }
    Artifact::table(table)
}

/// Prefetcher comparison (paper §VI-A): the stock density scheme ignores
/// fault order by design; a classic next-N sequential prefetcher trusts
/// it. Under parallel fault arrival the order is scrambled, so the
/// sequential baseline's coverage collapses on every pattern that is not
/// strictly streaming — quantifying why NVIDIA chose density.
pub fn ablation_prefetcher(scale: Scale) -> Artifact {
    let schemes: [(&str, PrefetchPolicy); 3] = [
        ("density(51)", PrefetchPolicy::default()),
        ("sequential(16)", PrefetchPolicy::Sequential { degree: 16 }),
        ("disabled", PrefetchPolicy::Disabled),
    ];
    let patterns = [WorkloadKind::Regular, WorkloadKind::Random];
    let mut points = Vec::new();
    for &p in &patterns {
        for (_, scheme) in &schemes {
            let mut c = scale.config();
            c.driver.prefetch = *scheme;
            points.push((c, scale.workload(p, 0.5)));
        }
    }
    let reports = run_sweep(points);

    let mut table = Table::new(
        "Ablation: density vs sequential prefetching (undersubscribed)",
        &[
            "pattern",
            "prefetcher",
            "kernel_ms",
            "faults",
            "fault_reduction_pct",
            "pages_prefetched",
        ],
    );
    let mut i = 0;
    for &p in &patterns {
        let baseline_faults = reports[i + 2].total_faults(); // "disabled" row
        for (name, _) in &schemes {
            let r = &reports[i];
            i += 1;
            let reduction = if baseline_faults == 0 {
                0.0
            } else {
                100.0 * (1.0 - r.total_faults() as f64 / baseline_faults as f64)
            };
            table.row(vec![
                p.label().into(),
                name.to_string(),
                ms(r.total_time),
                format!("{}", r.total_faults()),
                f(reduction, 1),
                format!("{}", r.counters.pages_prefetched),
            ]);
        }
    }
    Artifact::table(table)
}

/// Batch-size ablation (paper §III-D): larger batches coalesce more
/// same-VABlock faults per service pass but delay replays.
pub fn ablation_batch_size(scale: Scale) -> Artifact {
    let sizes = [64usize, 256, 1024];
    let patterns = [WorkloadKind::Regular, WorkloadKind::Random];
    let mut points = Vec::new();
    for &p in &patterns {
        for &s in &sizes {
            let mut c = scale.config();
            c.driver.batch_size = s;
            points.push((c, scale.workload(p, 0.5)));
        }
    }
    let reports = run_sweep(points);

    let mut table = Table::new(
        "Ablation: fault batch size",
        &[
            "pattern",
            "batch_size",
            "kernel_ms",
            "batches",
            "vablocks_per_batch",
        ],
    );
    let mut i = 0;
    for &p in &patterns {
        for &s in &sizes {
            let r = &reports[i];
            i += 1;
            let vb_per_batch = if r.counters.batches == 0 {
                0.0
            } else {
                r.counters.vablocks_serviced as f64 / r.counters.batches as f64
            };
            table.row(vec![
                p.label().into(),
                format!("{s}"),
                ms(r.total_time),
                format!("{}", r.counters.batches),
                f(vb_per_batch, 2),
            ]);
        }
    }
    Artifact::table(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_ablation_flush_vs_batch_tradeoff() {
        let a = ablation_replay(Scale::QUICK);
        let csv = a.table.to_csv();
        let row = |name: &str| -> Vec<f64> {
            csv.lines()
                .find(|l| l.starts_with(name))
                .unwrap()
                .split(',')
                .skip(1)
                .take(3)
                .map(|c| c.parse().unwrap())
                .collect()
        };
        let batch = row("batch,");
        let flush = row("batch_flush");
        // Fig 5's observation: Batch policy has lower replay-policy cost
        // than BatchFlush.
        assert!(batch[2] < flush[2], "batch {batch:?} vs flush {flush:?}");
    }

    #[test]
    fn threshold_one_approaches_explicit() {
        let a = ablation_threshold(Scale::QUICK);
        let csv = a.table.to_csv();
        let first: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        let kernel: f64 = first[1].parse().unwrap();
        let explicit: f64 = first[2].parse().unwrap();
        assert!(
            kernel < 4.0 * explicit,
            "aggressive prefetch within 4x of explicit: {kernel} vs {explicit}"
        );
    }
}
