//! Run observability for the `repro` harness: trace collection across
//! sweeps and live progress telemetry on stderr.
//!
//! The experiment functions call [`run_sweep`](super::run_sweep) and know
//! nothing about tracing; this module carries the `--trace-out` /
//! `--progress` CLI state as process-global configuration. When tracing
//! is armed, every sweep point's driver config gets span recording (and
//! the per-fault trace) switched on, and each finished report is folded
//! into a [`ChromePoint`] — in report order, so the collected trace is
//! independent of the rayon thread count. When progress is armed, point
//! completions print a throttled stderr line with faults/sec and an ETA,
//! which is what makes the nightly full-scale (12 GB) run operable. The
//! line `\r`-overwrites itself only when stderr is a terminal; redirected
//! to a file (CI logs), each update is a plain newline-terminated line so
//! the log stays readable.

use crate::metricsio::MetricsPoint;
use metrics::{ChromePoint, TimeseriesConfig};
use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use uvm_sim::{SimConfig, SimReport, Workload};

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static SPAN_CAPACITY: AtomicUsize = AtomicUsize::new(metrics::DEFAULT_SPAN_CAPACITY);
static PROGRESS: AtomicBool = AtomicBool::new(false);
/// `--service-workers` value applied to every sweep point. The harness
/// resolves auto to the rayon pool size *before* arming this, so sweep
/// configs never reach the simulator unresolved (an unresolved 0 would
/// run serial there); 0 here only means the harness never armed it.
static SERVICE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// `--metrics-out` arming: when non-zero, every sweep point's driver gets
/// simulated-time telemetry sampling at this interval.
static METRICS_INTERVAL_NS: AtomicU64 = AtomicU64::new(0);
static METRICS_CAPACITY: AtomicUsize = AtomicUsize::new(metrics::DEFAULT_SAMPLE_CAPACITY);

static POINTS: Mutex<Vec<ChromePoint>> = Mutex::new(Vec::new());
static METRICS_POINTS: Mutex<Vec<MetricsPoint>> = Mutex::new(Vec::new());

/// Per-sweep progress counters (reset by [`sweep_begin`]).
static DONE: AtomicU64 = AtomicU64::new(0);
static TOTAL: AtomicU64 = AtomicU64::new(0);
static FAULTS: AtomicU64 = AtomicU64::new(0);
/// Milliseconds-since-sweep-start of the last emitted progress line
/// (throttle state; u64::MAX = nothing emitted yet).
static LAST_EMIT_MS: AtomicU64 = AtomicU64::new(u64::MAX);
static SWEEP_START: Mutex<Option<Instant>> = Mutex::new(None);

/// Minimum milliseconds between progress lines.
const EMIT_EVERY_MS: u64 = 500;

/// Per-point cap on captured fault instants in traced runs. The
/// per-fault recorder defaults to millions of events (sized for CSV
/// scatter export); a viewer-bound trace only needs the leading sample —
/// drops are counted and reported in the `uvmSim` metadata. At ~130
/// bytes/instant this keeps a 28-point fig1 trace in the low hundreds
/// of MB instead of ~1 GB.
const FAULT_EVENT_CAPACITY: usize = 1 << 14;

/// Arm span/fault-trace capture for every subsequent sweep, with the
/// given per-run span buffer capacity.
pub fn enable_tracing(span_capacity: usize) {
    SPAN_CAPACITY.store(span_capacity.max(1), Ordering::Relaxed);
    TRACE_ENABLED.store(true, Ordering::Relaxed);
}

/// True if sweeps are currently collecting traces.
pub fn tracing_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Arm or disarm the live stderr progress line. The `repro` default is
/// on when stderr is a terminal, off when redirected.
pub fn set_progress(on: bool) {
    PROGRESS.store(on, Ordering::Relaxed);
}

/// Default progress choice absent an explicit flag.
pub fn progress_default() -> bool {
    std::io::stderr().is_terminal()
}

/// Drain every [`ChromePoint`] collected since the last call, in the
/// order the sweeps' reports were returned (deterministic).
pub fn take_points() -> Vec<ChromePoint> {
    std::mem::take(&mut *POINTS.lock().unwrap())
}

/// Arm simulated-time telemetry sampling for every subsequent sweep
/// (`repro --metrics-out`): each point's driver samples its counters on
/// a `interval_ns` grid of the virtual clock into a buffer of at most
/// `capacity` samples (compacting in place past that).
pub fn enable_metrics(interval_ns: u64, capacity: usize) {
    METRICS_CAPACITY.store(capacity.max(2), Ordering::Relaxed);
    METRICS_INTERVAL_NS.store(interval_ns.max(1), Ordering::Relaxed);
}

/// True if sweeps are currently collecting telemetry samples.
pub fn metrics_enabled() -> bool {
    METRICS_INTERVAL_NS.load(Ordering::Relaxed) > 0
}

/// Drain every [`MetricsPoint`] collected since the last call, in report
/// order (deterministic).
pub fn take_metrics_points() -> Vec<MetricsPoint> {
    std::mem::take(&mut *METRICS_POINTS.lock().unwrap())
}

/// Pin every subsequent sweep point's intra-batch planning width
/// (`repro --service-workers`). Simulated output is identical for every
/// value — this exists to measure host wall-time scaling.
pub fn set_service_workers(n: usize) {
    SERVICE_WORKERS.store(n, Ordering::Relaxed);
}

/// Rewrite the sweep's driver configs: always apply the service-worker
/// override when one is set, switch on telemetry sampling when metrics
/// are armed, and switch on span/fault-trace recording when tracing is
/// armed.
pub fn instrument_points(points: &mut [(SimConfig, Workload)]) {
    let workers = SERVICE_WORKERS.load(Ordering::Relaxed);
    if workers > 0 {
        for (config, _) in points.iter_mut() {
            config.driver.service_workers = workers;
        }
    }
    let interval_ns = METRICS_INTERVAL_NS.load(Ordering::Relaxed);
    if interval_ns > 0 {
        let capacity = METRICS_CAPACITY.load(Ordering::Relaxed);
        for (config, _) in points.iter_mut() {
            config.driver.timeseries = TimeseriesConfig {
                enabled: true,
                interval_ns,
                capacity,
            };
        }
    }
    if !tracing_enabled() {
        return;
    }
    let cap = SPAN_CAPACITY.load(Ordering::Relaxed);
    for (config, _) in points.iter_mut() {
        config.driver.record_spans = true;
        config.driver.span_capacity = cap;
        config.driver.capture_trace = true;
        config.driver.trace_capacity = FAULT_EVENT_CAPACITY;
    }
}

/// Reset the progress counters for a sweep of `n` points.
pub fn sweep_begin(n: usize) {
    DONE.store(0, Ordering::Relaxed);
    TOTAL.store(n as u64, Ordering::Relaxed);
    FAULTS.store(0, Ordering::Relaxed);
    LAST_EMIT_MS.store(u64::MAX, Ordering::Relaxed);
    *SWEEP_START.lock().unwrap() = Some(Instant::now());
}

/// Note one finished point (called from sweep worker threads; thread-safe
/// and ordering-independent). Emits a throttled progress line when armed.
pub fn on_point_done(report: &SimReport) {
    let done = DONE.fetch_add(1, Ordering::Relaxed) + 1;
    let faults = FAULTS.fetch_add(report.total_faults(), Ordering::Relaxed)
        + report.total_faults();
    if !PROGRESS.load(Ordering::Relaxed) {
        return;
    }
    let total = TOTAL.load(Ordering::Relaxed);
    let elapsed = match *SWEEP_START.lock().unwrap() {
        Some(t0) => t0.elapsed(),
        None => return,
    };
    let now_ms = elapsed.as_millis() as u64;
    let last = LAST_EMIT_MS.load(Ordering::Relaxed);
    let due = last == u64::MAX || now_ms.saturating_sub(last) >= EMIT_EVERY_MS;
    if !(due || done == total)
        || LAST_EMIT_MS
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
    {
        return; // not due yet, or another thread just emitted
    }
    let secs = elapsed.as_secs_f64().max(1e-9);
    let rate = faults as f64 / secs;
    let eta = if done > 0 {
        secs / done as f64 * (total.saturating_sub(done)) as f64
    } else {
        0.0
    };
    let stderr = std::io::stderr();
    // `\r` overwrite only makes sense on a live terminal; in a redirected
    // log every update gets its own line.
    let tty = stderr.is_terminal();
    let mut err = stderr.lock();
    let line = format!(
        "  {done}/{total} points  {:.2}M sim faults  {:.0}k faults/s  ETA {:.0}s",
        faults as f64 / 1e6,
        rate / 1e3,
        eta
    );
    let _ = if tty {
        write!(err, "\r{line}   ")
    } else {
        writeln!(err, "{line}")
    };
    let _ = err.flush();
}

/// Finish a sweep's progress line (newline-terminate the `\r` overwrite;
/// a non-terminal stderr already got newline-terminated lines).
pub fn sweep_end() {
    if PROGRESS.load(Ordering::Relaxed)
        && LAST_EMIT_MS.load(Ordering::Relaxed) != u64::MAX
        && std::io::stderr().is_terminal()
    {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err);
        let _ = err.flush();
    }
}

/// When tracing is armed, fold the sweep's finished reports (in report
/// order) into the collected Chrome-trace points.
pub fn collect_reports(reports: &[SimReport]) {
    if !tracing_enabled() {
        return;
    }
    let mut points = POINTS.lock().unwrap();
    for r in reports {
        let n = points.len();
        points.push(ChromePoint {
            label: format!("[{n}] {} r={:.2}", r.workload, r.subscription_ratio),
            spans: r.span_trace.clone(),
            faults: r.trace.clone(),
            fault_drops: r.trace_dropped,
            timers: r.timers,
        });
    }
}

/// When metrics are armed, fold the sweep's finished reports (in report
/// order) into the collected metrics points. `policies` carries the
/// per-point prefetch-policy labels, captured from the configs before
/// the sweep consumed them.
pub fn collect_metrics(policies: &[&'static str], reports: &[SimReport]) {
    if !metrics_enabled() {
        return;
    }
    let mut points = METRICS_POINTS.lock().unwrap();
    for (i, r) in reports.iter().enumerate() {
        points.push(MetricsPoint {
            workload: r.workload.clone(),
            ratio: r.subscription_ratio,
            policy: policies.get(i).copied().unwrap_or("unknown"),
            counters: r.counters,
            h2d_bytes: r.transfers.h2d_bytes,
            d2h_bytes: r.transfers.d2h_bytes,
            trace_dropped: r.trace_dropped,
            span_dropped: r.span_trace.dropped,
            total_time_ns: r.total_time.as_nanos(),
            timeseries: r.timeseries.clone(),
            attribution: r.attribution,
            top_offenders: r.top_offenders.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;
    use uvm_sim::WorkloadKind;

    /// Tracing state is process-global, so exercise the whole arm →
    /// instrument → collect → drain path in one test.
    #[test]
    fn armed_tracing_instruments_and_collects() {
        let s = Scale::QUICK;
        let mut points = vec![(s.config(), s.workload(WorkloadKind::Regular, 0.05))];
        assert!(!points[0].0.driver.record_spans);
        enable_tracing(1 << 14);
        instrument_points(&mut points);
        assert!(points[0].0.driver.record_spans);
        assert!(points[0].0.driver.capture_trace);
        assert_eq!(points[0].0.driver.span_capacity, 1 << 14);

        let reports = uvm_sim::run_sweep(points);
        collect_reports(&reports);
        TRACE_ENABLED.store(false, Ordering::Relaxed);
        // Other tests' sweeps may have been collected while tracing was
        // armed (the state is process-global); every point must reconcile.
        let collected = take_points();
        assert!(!collected.is_empty());
        for p in &collected {
            assert_eq!(
                p.spans.reconciled_totals(),
                p.timers,
                "collected spans reconcile with the report timers ({})",
                p.label
            );
        }
        assert!(collected.iter().any(|p| !p.spans.events.is_empty()));
    }

    /// Metrics arming is process-global too: arm → instrument → run →
    /// collect → drain, then verify the collected point reconciles with
    /// its report.
    #[test]
    fn armed_metrics_instrument_and_collect() {
        let s = Scale::QUICK;
        let mut points = vec![(s.config(), s.workload(WorkloadKind::Regular, 0.05))];
        assert!(!points[0].0.driver.timeseries.enabled);
        enable_metrics(100_000, 512);
        instrument_points(&mut points);
        assert!(points[0].0.driver.timeseries.enabled);
        assert_eq!(points[0].0.driver.timeseries.interval_ns, 100_000);
        assert_eq!(points[0].0.driver.timeseries.capacity, 512);

        let policies = vec![points[0].0.driver.prefetch.label()];
        let reports = uvm_sim::run_sweep(points);
        collect_metrics(&policies, &reports);
        METRICS_INTERVAL_NS.store(0, Ordering::Relaxed);
        // Other tests' sweeps may have been collected while metrics were
        // armed (the state is process-global); every point must carry a
        // non-empty stream whose forced final sample reconciles.
        let collected = take_metrics_points();
        assert!(!collected.is_empty());
        for p in &collected {
            let last = p.timeseries.last().expect("armed run produced samples");
            assert_eq!(last.faults_fetched, p.counters.faults_fetched, "{}", p.workload);
            assert_eq!(last.migrated_bytes_h2d, p.h2d_bytes, "{}", p.workload);
        }
        let rendered = crate::metricsio::render_exposition(&collected);
        metrics::exposition::validate(&rendered).expect("collected points render validly");
    }

    #[test]
    fn progress_counters_track_points() {
        sweep_begin(3);
        assert_eq!(TOTAL.load(Ordering::Relaxed), 3);
        assert_eq!(DONE.load(Ordering::Relaxed), 0);
        sweep_end();
    }
}
