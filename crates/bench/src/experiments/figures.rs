//! Regeneration of the paper's figures (1, 3, 4, 5, 6, 7, 8, 9, 10).

use super::{ms, run_sweep, Artifact, Scale};
use gpu_model::PageMask;
use metrics::report::{f, Table};
use metrics::{Category, EventKind};
use uvm_driver::prefetch::DensityTree;
use uvm_driver::{DriverConfig, PrefetchPolicy, ReplayPolicy};
use uvm_sim::{SimConfig, Workload, WorkloadKind};

fn cfg_with(scale: Scale, mutate: impl FnOnce(&mut DriverConfig)) -> SimConfig {
    let mut c = scale.config();
    mutate(&mut c.driver);
    c
}

/// **Figure 1** — cumulative access latency: explicit transfer vs UVM
/// without prefetching vs UVM with prefetching, for the regular and
/// random page-touch kernels, across under- and over-subscribed sizes.
pub fn fig1(scale: Scale) -> Artifact {
    let ratios = [0.01, 0.05, 0.25, 0.5, 0.75, 1.2, 1.5];
    let patterns = [WorkloadKind::Regular, WorkloadKind::Random];

    let mut points = Vec::new();
    for &p in &patterns {
        for &r in &ratios {
            let w = scale.workload(p, r);
            points.push((
                cfg_with(scale, |d| d.prefetch = PrefetchPolicy::Disabled),
                w.clone(),
            ));
            points.push((scale.config(), w));
        }
    }
    let reports = run_sweep(points);

    let mut table = Table::new(
        "Figure 1: UVM access latency vs explicit transfer (ms)",
        &[
            "pattern",
            "ratio",
            "footprint_mib",
            "explicit",
            "uvm_no_prefetch",
            "uvm_prefetch",
        ],
    );
    for (i, (&p, &r)) in patterns
        .iter()
        .flat_map(|p| ratios.iter().map(move |r| (p, r)))
        .enumerate()
    {
        let nopf = &reports[2 * i];
        let pf = &reports[2 * i + 1];
        table.row(vec![
            p.label().into(),
            f(r, 2),
            format!("{}", nopf.footprint_bytes >> 20),
            ms(nopf.explicit_time),
            ms(nopf.total_time),
            ms(pf.total_time),
        ]);
    }
    Artifact::table(table)
}

/// **Figure 3** — total kernel time and the driver-category breakdown
/// (preprocess / service / replay policy) across data sizes with
/// prefetching disabled and the default BatchFlush policy, for both
/// access patterns.
pub fn fig3(scale: Scale) -> Artifact {
    fault_scaling_breakdown(
        scale,
        "Figure 3: fault cost scaling and breakdown (ms), prefetch off, BatchFlush",
        ReplayPolicy::BatchFlush,
        &[WorkloadKind::Regular, WorkloadKind::Random],
    )
}

/// **Figure 5** — the same experiment as Figure 3 under the **Batch**
/// policy: the replay-policy cost collapses while preprocessing grows
/// (stale duplicates linger in the unflushed buffer).
pub fn fig5(scale: Scale) -> Artifact {
    fault_scaling_breakdown(
        scale,
        "Figure 5: fault cost scaling and breakdown (ms), prefetch off, Batch policy",
        ReplayPolicy::Batch,
        &[WorkloadKind::Regular],
    )
}

fn fault_scaling_breakdown(
    scale: Scale,
    title: &str,
    policy: ReplayPolicy,
    patterns: &[WorkloadKind],
) -> Artifact {
    let ratios = [
        1.0 / 8192.0,
        1.0 / 1024.0,
        1.0 / 128.0,
        1.0 / 16.0,
        0.25,
        0.5,
    ];
    let mut points = Vec::new();
    for &p in patterns {
        for &r in &ratios {
            points.push((
                cfg_with(scale, |d| {
                    d.prefetch = PrefetchPolicy::Disabled;
                    d.replay_policy = policy;
                }),
                scale.workload(p, r),
            ));
        }
    }
    let reports = run_sweep(points);

    let mut table = Table::new(
        title,
        &[
            "pattern",
            "footprint_kib",
            "kernel",
            "driver_total",
            "preprocess",
            "service",
            "replay_policy",
            "faults",
        ],
    );
    let mut i = 0;
    for &p in patterns {
        for _ in &ratios {
            let r = &reports[i];
            i += 1;
            table.row(vec![
                p.label().into(),
                format!("{}", r.footprint_bytes >> 10),
                ms(r.total_time),
                ms(r.timers.total()),
                ms(r.timers.get(Category::Preprocess)),
                ms(r.timers.service_total()),
                ms(r.timers.get(Category::ReplayPolicy)),
                format!("{}", r.total_faults()),
            ]);
        }
    }
    Artifact::table(table)
}

/// **Figure 4** — the service-cost sub-breakdown (Map Pages / Migrate
/// Pages / PMA Alloc Pages) at small sizes: PMA allocation dominates tiny
/// transfers and amortises away at larger ones.
pub fn fig4(scale: Scale) -> Artifact {
    let ratios = [
        1.0 / 8192.0,
        1.0 / 2048.0,
        1.0 / 512.0,
        1.0 / 128.0,
        1.0 / 32.0,
        1.0 / 8.0,
    ];
    let points = ratios
        .iter()
        .map(|&r| {
            (
                cfg_with(scale, |d| d.prefetch = PrefetchPolicy::Disabled),
                scale.workload(WorkloadKind::Regular, r),
            )
        })
        .collect();
    let reports = run_sweep(points);

    let mut table = Table::new(
        "Figure 4: service cost breakdown at small sizes (% of service)",
        &[
            "footprint_kib",
            "service_ms",
            "pma_alloc_pct",
            "migrate_pct",
            "map_pct",
        ],
    );
    for r in &reports {
        let service = r.timers.service_total().as_nanos() as f64;
        let pct = |c: Category| {
            if service == 0.0 {
                "0.0".to_string()
            } else {
                f(100.0 * r.timers.get(c).as_nanos() as f64 / service, 1)
            }
        };
        table.row(vec![
            format!("{}", r.footprint_bytes >> 10),
            ms(r.timers.service_total()),
            pct(Category::ServicePma),
            pct(Category::ServiceMigrate),
            pct(Category::ServiceMap),
        ]);
    }
    Artifact::table(table)
}

/// **Figure 6** — the density-prefetch tree concept, rendered on the
/// paper's illustrative scenario (a 4-level slice of the real 9-level
/// tree, threshold 51%).
pub fn fig6(_scale: Scale) -> Artifact {
    // Occupy 9 of the first 16 pages — one more fault tips the level-4
    // subtree over the 51% threshold, exactly as Fig. 6 illustrates.
    let mut occupancy = PageMask::EMPTY;
    for leaf in 0..9 {
        occupancy.set(leaf);
    }
    let tree = DensityTree::from_mask(&occupancy);

    let mut text = String::from(
        "Density-prefetch tree (levels 0-4 of 9), occupancy = pages 0..9 of a VABlock\n",
    );
    for level in (0..=4usize).rev() {
        let nodes = 16 >> level;
        let width = 1 << level;
        text.push_str(&format!("L{level}: "));
        for idx in 0..nodes {
            let count = tree.count(level, idx);
            let dens = 100 * count as usize / width;
            text.push_str(&format!("[{count:>2}/{width:<2} {dens:>3}%] "));
        }
        text.push('\n');
    }
    let (lvl, idx) = tree.region_for(3, 51);
    text.push_str(&format!(
        "fault at page 3, threshold 51% -> prefetch region = level {lvl} node {idx} \
         (pages {:?})\n",
        DensityTree::leaves_of(lvl, idx)
    ));

    let mut table = Table::new(
        "Figure 6: density tree region selection (threshold 51%)",
        &[
            "faulted_page",
            "occupied_of_16",
            "region_level",
            "region_pages",
        ],
    );
    for occupied in [1usize, 4, 8, 9, 12] {
        let mut m = PageMask::EMPTY;
        for l in 0..occupied {
            m.set(l);
        }
        let t = DensityTree::from_mask(&m);
        let (lvl, idx) = t.region_for(0, 51);
        let range = DensityTree::leaves_of(lvl, idx);
        table.row(vec![
            "0".into(),
            format!("{occupied}"),
            format!("{lvl}"),
            format!("{}..{}", range.start, range.end),
        ]);
    }
    Artifact {
        table,
        csvs: vec![("fig6_tree.txt".into(), text)],
    }
}

/// **Figure 7** — page-granularity access patterns as the driver sees
/// them (prefetching disabled): fault occurrence order vs page index, one
/// CSV per workload.
pub fn fig7(scale: Scale) -> Artifact {
    let kinds = [
        WorkloadKind::Regular,
        WorkloadKind::Sgemm,
        WorkloadKind::Stream,
        WorkloadKind::Cufft,
        WorkloadKind::Hpgmg,
        WorkloadKind::Cusparse,
    ];
    let points = kinds
        .iter()
        .map(|&k| {
            (
                cfg_with(scale, |d| {
                    d.prefetch = PrefetchPolicy::Disabled;
                    d.capture_trace = true;
                }),
                scale.workload(k, 0.4),
            )
        })
        .collect();
    let reports = run_sweep(points);

    let mut table = Table::new(
        "Figure 7: driver-visible access patterns (prefetch off)",
        &["workload", "faults", "distinct_pages", "allocations"],
    );
    let mut csvs = Vec::new();
    for (k, r) in kinds.iter().zip(&reports) {
        let mut csv = String::from("order,page\n");
        let mut pages = std::collections::BTreeSet::new();
        for e in &r.trace {
            if matches!(e.kind, EventKind::Fault) {
                csv.push_str(&format!("{},{}\n", e.order, e.page));
                pages.insert(e.page);
            }
        }
        table.row(vec![
            k.label().into(),
            format!("{}", r.total_faults()),
            format!("{}", pages.len()),
            format!("{}", r.counters.vablocks_serviced),
        ]);
        csvs.push((format!("fig7_{}.csv", k.label()), csv));
    }
    Artifact { table, csvs }
}

/// **Figure 8** — SGEMM at ~120 % of GPU memory with evictions plotted on
/// the fault timeline; evict-then-refault is the worst-case behaviour the
/// paper highlights.
pub fn fig8(scale: Scale) -> Artifact {
    let w = sgemm_at_ratio(scale, 1.27);
    let mut cfg = sgemm_config(scale);
    cfg.driver.capture_trace = true;
    let r = uvm_sim::run(&cfg, &w);

    let mut csv = String::from("order,page,kind\n");
    let mut fault_counts: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    for e in &r.trace {
        let kind = match e.kind {
            EventKind::Fault => "fault",
            EventKind::Prefetch => continue,
            EventKind::Eviction => "evict",
        };
        if matches!(e.kind, EventKind::Fault) {
            *fault_counts.entry(e.page).or_insert(0) += 1;
        }
        csv.push_str(&format!("{},{},{kind}\n", e.order, e.page));
    }
    let refaulted = fault_counts.values().filter(|&&c| c > 1).count();

    let mut table = Table::new(
        "Figure 8: sgemm at ~120% of GPU memory — faults and evictions",
        &[
            "ratio",
            "faults",
            "evictions",
            "pages_evicted",
            "refaulted_pages",
            "kernel_ms",
        ],
    );
    table.row(vec![
        f(r.subscription_ratio, 2),
        format!("{}", r.total_faults()),
        format!("{}", r.counters.evictions),
        format!("{}", r.counters.pages_evicted_total()),
        format!("{refaulted}"),
        ms(r.total_time),
    ]);
    Artifact {
        table,
        csvs: vec![("fig8_sgemm_oversub.csv".into(), csv)],
    }
}

/// **Figure 9** — oversubscribed breakdown with prefetching enabled:
/// the regular vs random order-of-magnitude gap, with "Map" (mapping +
/// migration) and eviction costs reported per size.
pub fn fig9(scale: Scale) -> Artifact {
    let ratios = [1.1, 1.3, 1.5];
    let patterns = [WorkloadKind::Regular, WorkloadKind::Random];
    let mut points = Vec::new();
    for &p in &patterns {
        for &r in &ratios {
            points.push((scale.config(), scale.workload(p, r)));
        }
    }
    let reports = run_sweep(points);

    let mut table = Table::new(
        "Figure 9: oversubscribed breakdown with prefetching (ms)",
        &[
            "pattern",
            "ratio",
            "kernel",
            "map_migrate",
            "eviction",
            "preprocess",
            "bytes_moved_mib",
        ],
    );
    let mut i = 0;
    for &p in &patterns {
        for _ in &ratios {
            let r = &reports[i];
            i += 1;
            table.row(vec![
                p.label().into(),
                f(r.subscription_ratio, 2),
                ms(r.total_time),
                ms(r.timers.service_total()),
                ms(r.timers.get(Category::Eviction)),
                ms(r.timers.get(Category::Preprocess)),
                format!("{}", r.bytes_moved() >> 20),
            ]);
        }
    }
    Artifact::table(table)
}

/// An SGEMM workload whose footprint is `ratio` × GPU memory at `scale`.
pub fn sgemm_at_ratio(scale: Scale, ratio: f64) -> Workload {
    scale.workload(WorkloadKind::Sgemm, ratio)
}

/// Config for the SGEMM experiments: fat GEMM tiles are register- and
/// shared-memory-hungry, so occupancy is low (~2 blocks per SM). The
/// smaller resident window makes the grid execute in waves, exposing the
/// cross-wave reuse that eviction thrashes on (paper Fig. 8).
pub fn sgemm_config(scale: Scale) -> SimConfig {
    let mut c = scale.config();
    c.gpu.max_blocks_resident = 160;
    c
}

/// **Figure 10** — SGEMM compute rate falling (and data movement rising)
/// as the problem crosses into oversubscription.
pub fn fig10(scale: Scale) -> Artifact {
    let reports = sgemm_sweep(scale);
    let mut table = Table::new(
        "Figure 10: sgemm compute rate vs oversubscription",
        &[
            "n",
            "ratio",
            "kernel_ms",
            "gflops",
            "data_moved_mib",
            "footprint_mib",
        ],
    );
    for (n, r) in &reports {
        let flops = 2.0 * (*n as f64).powi(3);
        table.row(vec![
            format!("{n}"),
            f(r.subscription_ratio, 2),
            ms(r.total_time),
            f(r.compute_rate(flops) / 1e9, 1),
            format!("{}", r.bytes_moved() >> 20),
            format!("{}", r.footprint_bytes >> 20),
        ]);
    }
    Artifact::table(table)
}

/// The SGEMM size sweep shared by Figure 10 and Table II.
pub fn sgemm_sweep(scale: Scale) -> Vec<(usize, uvm_sim::SimReport)> {
    // n at which 3*4*n² == GPU memory.
    let n_full = ((scale.gpu_bytes() as f64 / 12.0).sqrt() as usize / 512).max(1) * 512;
    let ns: Vec<usize> = (-2i64..=4)
        .map(|k| (n_full as i64 + k * 512).max(512) as usize)
        .collect();
    let points = ns
        .iter()
        .map(|&n| {
            (
                sgemm_config(scale),
                Workload::Sgemm(workloads::SgemmParams {
                    n,
                    tile: 256,
                    gpu_flops: workloads::common::GPU_FLOPS * scale.fraction,
                }),
            )
        })
        .collect();
    ns.into_iter().zip(run_sweep(points)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_is_pure_and_matches_paper_example() {
        let a = fig6(Scale::QUICK);
        assert_eq!(a.table.num_rows(), 5);
        assert_eq!(a.csvs.len(), 1);
        assert!(a.csvs[0].1.contains("prefetch region = level 4"));
    }

    #[test]
    fn fig4_percentages_roughly_sum() {
        let a = fig4(Scale::QUICK);
        let csv = a.table.to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let sum: f64 = cells[2..5].iter().map(|c| c.parse::<f64>().unwrap()).sum();
            assert!((99.0..101.0).contains(&sum), "row {line}: {sum}");
        }
    }

    #[test]
    fn fig1_prefetch_wins_undersubscribed() {
        let a = fig1(Scale::QUICK);
        let csv = a.table.to_csv();
        // First row: regular at ratio 0.01 — prefetch strictly helps.
        let row: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        let explicit: f64 = row[3].parse().unwrap();
        let nopf: f64 = row[4].parse().unwrap();
        let pf: f64 = row[5].parse().unwrap();
        assert!(explicit < nopf, "explicit beats UVM-no-prefetch");
        assert!(pf <= nopf, "prefetch does not hurt tiny undersubscribed");
    }
}
