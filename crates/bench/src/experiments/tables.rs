//! Regeneration of the paper's tables (I and II).

use super::figures::sgemm_sweep;
use super::{run_sweep, Artifact, Scale};
use metrics::report::{f, pct, Table};
use uvm_driver::PrefetchPolicy;
use uvm_sim::WorkloadKind;

/// **Table I** — application fault reduction: total faults without
/// prefetching vs with the stock density prefetcher, per workload, at
/// relatively large undersubscribed sizes. The paper reports ≥64 %
/// reduction everywhere, with random and sgemm above 96 %.
pub fn table1(scale: Scale) -> Artifact {
    let ratio = 0.6;
    let mut points = Vec::new();
    for &k in &WorkloadKind::ALL {
        let w = scale.workload(k, ratio);
        points.push((
            {
                let mut c = scale.config();
                c.driver.prefetch = PrefetchPolicy::Disabled;
                c
            },
            w.clone(),
        ));
        points.push((scale.config(), w));
    }
    let reports = run_sweep(points);

    let mut table = Table::new(
        "Table I: application fault reduction from prefetching",
        &[
            "workload",
            "total_faults",
            "faults_w_prefetch",
            "reduction_pct",
        ],
    );
    for (i, k) in WorkloadKind::ALL.iter().enumerate() {
        let off = &reports[2 * i];
        let on = &reports[2 * i + 1];
        let total = off.total_faults();
        let with = on.total_faults();
        let reduction = if total == 0 {
            0.0
        } else {
            1.0 - with as f64 / total as f64
        };
        table.row(vec![
            k.label().into(),
            format!("{total}"),
            format!("{with}"),
            pct(reduction),
        ]);
    }
    Artifact::table(table)
}

/// **Table II** — SGEMM fault scaling across the oversubscription
/// boundary: faults, pages evicted, and pages-evicted-per-fault rising
/// with problem size.
pub fn table2(scale: Scale) -> Artifact {
    let reports = sgemm_sweep(scale);
    let mut table = Table::new(
        "Table II: sgemm fault scaling with oversubscription",
        &[
            "n",
            "ratio",
            "faults",
            "pages_evicted",
            "evictions_per_fault",
        ],
    );
    for (n, r) in &reports {
        table.row(vec![
            format!("{n}"),
            f(r.subscription_ratio, 2),
            format!("{}", r.total_faults()),
            format!("{}", r.counters.pages_evicted_total()),
            f(r.counters.evictions_per_fault(), 3),
        ]);
    }
    Artifact::table(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_all_workloads_present() {
        let a = table1(Scale::QUICK);
        assert_eq!(a.table.num_rows(), 8);
        let csv = a.table.to_csv();
        for k in WorkloadKind::ALL {
            assert!(csv.contains(k.label()));
        }
    }

    #[test]
    fn table1_prefetch_reduces_faults_everywhere() {
        let a = table1(Scale::QUICK);
        for line in a.table.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let total: u64 = cells[1].parse().unwrap();
            let with: u64 = cells[2].parse().unwrap();
            assert!(with < total, "{}: {with} !< {total}", cells[0]);
            let reduction: f64 = cells[3].parse().unwrap();
            assert!(
                reduction > 30.0,
                "{}: only {reduction}% reduction",
                cells[0]
            );
        }
    }
}
