//! Experiments beyond the paper's tables and figures, exercising the
//! extension subsystems: thrashing mitigation, warm-start launch
//! amortisation, batch-composition distributions, and prefetch-waste
//! accounting.

use super::figures::{sgemm_at_ratio, sgemm_config};
use super::{ms, run_sweep, Artifact, Scale};
use metrics::report::{f, Table};
use uvm_driver::{PrefetchPolicy, ThrashConfig};
use uvm_sim::{run_repeated, WorkloadKind};

/// Thrashing detection (uvm_perf_thrashing analog, §VI-B4): count how
/// many VABlocks refault after eviction per workload under
/// oversubscription. An instructive negative result accompanies it: for
/// streaming kernels, refault pinning changes nothing — a refaulting
/// block is by definition *recently faulted*, so LRU recency already
/// protects it. The pathology pinning does fix is fault-blind hotness
/// (blocks hammered without faulting), demonstrated in
/// `tests/stack_integration.rs::thrash_pinning_protects_faultless_hot_data`.
pub fn ablation_thrash(scale: Scale) -> Artifact {
    let mitigation = ThrashConfig {
        enabled: true,
        refault_threshold: 1,
        pin_duration_batches: 512,
    };
    let sgemm = sgemm_at_ratio(scale, 1.56);
    let mut points = Vec::new();
    for enabled in [false, true] {
        let mut c = sgemm_config(scale);
        if enabled {
            c.driver.thrash = mitigation.clone();
        }
        points.push((c, sgemm.clone()));
        let mut c = scale.config();
        if enabled {
            c.driver.thrash = mitigation.clone();
        }
        points.push((c, scale.workload(WorkloadKind::Random, 1.3)));
    }
    let reports = run_sweep(points);

    let mut table = Table::new(
        "Extra: thrashing detection + refault pinning (oversubscribed)",
        &[
            "workload",
            "mitigation",
            "kernel_ms",
            "faults",
            "evictions",
            "pins",
        ],
    );
    let labels = ["sgemm", "random", "sgemm", "random"];
    let mitigated = ["off", "off", "pin refaulters", "pin refaulters"];
    for i in 0..4 {
        let r = &reports[i];
        table.row(vec![
            labels[i].into(),
            mitigated[i].into(),
            ms(r.total_time),
            format!("{}", r.total_faults()),
            format!("{}", r.counters.evictions),
            format!("{}", r.counters.thrash_pins),
        ]);
    }
    Artifact::table(table)
}

/// Warm-start amortisation: the same kernel launched repeatedly against
/// one persistent driver. Undersubscribed, only launch 0 pays the
/// demand-paging tax; oversubscribed, every launch keeps thrashing —
/// UVM's first-touch cost amortises only when data fits.
pub fn extra_warm_start(scale: Scale) -> Artifact {
    let mut table = Table::new(
        "Extra: repeated-launch amortisation (regular kernel)",
        &[
            "ratio",
            "launch",
            "time_ms",
            "faults",
            "pages_migrated",
            "evictions",
        ],
    );
    for ratio in [0.5, 1.3] {
        let cfg = scale.config();
        let w = scale.workload(WorkloadKind::Regular, ratio);
        for s in run_repeated(&cfg, &w, 3) {
            table.row(vec![
                f(ratio, 1),
                format!("{}", s.launch),
                ms(s.time),
                format!("{}", s.faults),
                format!("{}", s.pages_migrated),
                format!("{}", s.evictions),
            ]);
        }
    }
    Artifact::table(table)
}

/// Batch composition (paper §III-D): the per-batch VABlock count is the
/// coalescing lever — regular batches collapse into a few blocks, random
/// batches touch one block per fault.
pub fn extra_batch_composition(scale: Scale) -> Artifact {
    let kinds = [
        WorkloadKind::Regular,
        WorkloadKind::Random,
        WorkloadKind::Sgemm,
        WorkloadKind::Tealeaf,
    ];
    // Means are re-derived from counters; the tail columns come from the
    // per-batch histograms the report now carries.
    let points = kinds
        .iter()
        .map(|&k| {
            let mut c = scale.config();
            c.driver.prefetch = PrefetchPolicy::Disabled;
            (c, scale.workload(k, 0.5))
        })
        .collect();
    let reports = run_sweep(points);
    let mut table = Table::new(
        "Extra: batch composition (prefetch off)",
        &[
            "workload",
            "batches",
            "faults",
            "vablocks_per_batch",
            "faults_per_vablock",
            "faults/batch p50",
            "faults/batch p95",
            "faults/batch p99",
            "vablocks/batch p95",
        ],
    );
    for (k, r) in kinds.iter().zip(&reports) {
        let vb_per_batch = r.counters.vablocks_serviced as f64 / r.counters.batches.max(1) as f64;
        let faults_per_vb =
            r.counters.pages_faulted_in as f64 / r.counters.vablocks_serviced.max(1) as f64;
        table.row(vec![
            k.label().into(),
            format!("{}", r.counters.batches),
            format!("{}", r.total_faults()),
            f(vb_per_batch, 2),
            f(faults_per_vb, 2),
            format!("{}", r.faults_per_batch.p50()),
            format!("{}", r.faults_per_batch.p95()),
            format!("{}", r.faults_per_batch.p99()),
            format!("{}", r.vablocks_per_batch.p95()),
        ]);
    }
    Artifact::table(table)
}

/// Prefetch waste (paper §VI-A: "prefetching can cause the movement of
/// unneeded data"): pages the prefetcher moved that the kernel never
/// used, per threshold, for the sparse-friendly cusparse workload.
pub fn extra_prefetch_waste(scale: Scale) -> Artifact {
    let thresholds = [1u8, 51, 90];
    let points = thresholds
        .iter()
        .map(|&t| {
            let mut c = scale.config();
            c.gpu.track_page_use = true;
            c.driver.prefetch = PrefetchPolicy::Density {
                threshold: t,
                big_pages: true,
            };
            (c, scale.workload(WorkloadKind::Cusparse, 0.5))
        })
        .collect();
    let reports = run_sweep(points);
    let mut table = Table::new(
        "Extra: prefetch waste vs threshold (cusparse, undersubscribed)",
        &[
            "threshold",
            "kernel_ms",
            "pages_prefetched",
            "unused_pages",
            "waste_pct",
        ],
    );
    for (t, r) in thresholds.iter().zip(&reports) {
        let unused = r.prefetched_unused_pages.unwrap_or(0);
        let prefetched = r.counters.pages_prefetched.max(1);
        table.row(vec![
            format!("{t}"),
            ms(r.total_time),
            format!("{}", r.counters.pages_prefetched),
            format!("{unused}"),
            f(100.0 * unused as f64 / prefetched as f64, 1),
        ]);
    }
    Artifact::table(table)
}

/// Interconnect sensitivity (paper §II cites x86/PCIe vs Power9/NVLink
/// comparisons, Gayatri et al.): faster links shrink wire time but leave
/// the software fault-handling costs untouched. Coalesced
/// prefetch-friendly streaming is the most bandwidth-bound case and
/// gains the most; random oversubscription thrash is dominated by
/// per-fault and per-VABlock software work plus eviction restarts, so
/// even NVLink buys it proportionally less — the paper's core point that
/// UVM cost is software, not wire.
pub fn extra_interconnect(scale: Scale) -> Artifact {
    let links: [(&str, sim_engine::CostModelConfig); 3] = [
        ("pcie3", sim_engine::CostModelConfig::pcie3()),
        ("pcie4", sim_engine::CostModelConfig::pcie4()),
        ("nvlink2", sim_engine::CostModelConfig::nvlink2()),
    ];
    let cases = [(WorkloadKind::Regular, 0.5), (WorkloadKind::Random, 1.3)];
    let mut points = Vec::new();
    for &(k, ratio) in &cases {
        for (_, cost) in &links {
            let mut c = scale.config();
            c.cost = cost.clone();
            points.push((c, scale.workload(k, ratio)));
        }
    }
    let reports = run_sweep(points);

    let mut table = Table::new(
        "Extra: interconnect sensitivity",
        &[
            "workload",
            "ratio",
            "link",
            "kernel_ms",
            "explicit_ms",
            "bytes_moved_mib",
        ],
    );
    let mut i = 0;
    for &(k, ratio) in &cases {
        for (name, _) in &links {
            let r = &reports[i];
            i += 1;
            table.row(vec![
                k.label().into(),
                f(ratio, 1),
                name.to_string(),
                ms(r.total_time),
                ms(r.explicit_time),
                format!("{}", r.bytes_moved() >> 20),
            ]);
        }
    }
    Artifact::table(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_start_amortises_only_undersubscribed() {
        let a = extra_warm_start(Scale::QUICK);
        let csv = a.table.to_csv();
        let rows: Vec<Vec<&str>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').collect())
            .collect();
        // Undersubscribed (0.5): launch 1 has zero faults.
        let under_l1 = rows.iter().find(|r| r[0] == "0.5" && r[1] == "1").unwrap();
        assert_eq!(under_l1[3], "0");
        // Oversubscribed (1.3): launch 1 keeps faulting.
        let over_l1 = rows.iter().find(|r| r[0] == "1.3" && r[1] == "1").unwrap();
        assert_ne!(over_l1[3], "0");
    }

    #[test]
    fn thrash_pins_apply_when_enabled() {
        let a = ablation_thrash(Scale {
            fraction: 1.0 / 64.0,
        });
        let rows: Vec<Vec<String>> = a
            .table
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        for row in &rows {
            if row[1] == "off" {
                assert_eq!(row[5], "0", "stock never pins ({})", row[0]);
            } else {
                assert_ne!(row[5], "0", "mitigation pins refaulters ({})", row[0]);
            }
        }
    }

    #[test]
    fn faster_links_help_thrash_more_than_latency_bound_paging() {
        let a = extra_interconnect(Scale::QUICK);
        let csv = a.table.to_csv();
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        let ms_of = |w: &str, link: &str| -> f64 {
            rows.iter().find(|r| r[0] == w && r[2] == link).unwrap()[3]
                .parse()
                .unwrap()
        };
        // Both improve — and neither remotely by the 5.8x bandwidth
        // ratio: software fault handling, not the wire, dominates (the
        // paper's core point). Coalesced streaming is the more
        // bandwidth-bound of the two, so it gains at least as much as
        // software-dominated random thrash.
        let reg_gain = ms_of("regular", "pcie3") / ms_of("regular", "nvlink2");
        let rnd_gain = ms_of("random", "pcie3") / ms_of("random", "nvlink2");
        assert!(reg_gain >= 1.0 && rnd_gain >= 1.0);
        assert!(reg_gain >= rnd_gain - 0.1, "{reg_gain:.2} vs {rnd_gain:.2}");
        assert!(
            reg_gain < 3.0 && rnd_gain < 3.0,
            "gains stay far below the 5.8x bandwidth ratio"
        );
    }

    #[test]
    fn prefetch_waste_grows_with_aggression() {
        let a = extra_prefetch_waste(Scale::QUICK);
        let csv = a.table.to_csv();
        let rows: Vec<Vec<&str>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').collect())
            .collect();
        let unused_at =
            |t: &str| -> u64 { rows.iter().find(|r| r[0] == t).unwrap()[3].parse().unwrap() };
        assert!(
            unused_at("1") >= unused_at("90"),
            "aggressive prefetch wastes at least as much: {} vs {}",
            unused_at("1"),
            unused_at("90")
        );
    }
}
