//! Metrics export, reporting, and the perf-regression gate for the
//! `repro` harness.
//!
//! Three consumers of the simulated-time telemetry live here:
//!
//! * [`write_experiment`] — `repro --metrics-out <dir>`: one sample CSV
//!   per sweep point plus a Prometheus text-exposition snapshot per
//!   experiment, each point labelled by `workload`/`ratio`/`policy`.
//! * [`render_report`] — `repro report <dir>`: re-reads the CSVs and
//!   renders per-run cost decompositions in the shape of the paper's
//!   Figs. 8–10 (a fault-vs-eviction timeline per point, and a summary
//!   of data moved / evictions / coverage per point).
//! * [`evaluate_trend`] / [`render_findings`] — `repro regress`: compare
//!   the newest `ci_trend` entry of each benchmark series against the
//!   median of its history, flagging wall-time, throughput, eviction-rate
//!   and coverage regressions beyond a configurable threshold.

use metrics::exposition::{MetricDef, MetricKind};
use metrics::report::Table;
use metrics::timeseries::{validate_csv, SAMPLE_COLUMNS};
use metrics::{
    Attribution, Counters, Exposition, Offender, Timeseries, ATTRIBUTION_REGISTRY,
    COUNTER_REGISTRY,
};
use serde::Value;
use sim_engine::units::PAGE_SIZE;

/// One finished sweep point with everything the metrics artefacts need.
#[derive(Debug, Clone)]
pub struct MetricsPoint {
    /// Workload label (`regular`, `random`, `sgemm`, …).
    pub workload: String,
    /// Subscription ratio (footprint ÷ GPU memory).
    pub ratio: f64,
    /// Prefetch-policy label (`density`, `disabled`, …).
    pub policy: &'static str,
    /// End-of-run driver counters.
    pub counters: Counters,
    /// Bytes moved host→device.
    pub h2d_bytes: u64,
    /// Bytes moved device→host.
    pub d2h_bytes: u64,
    /// Fault-trace events dropped at the recorder's capacity.
    pub trace_dropped: u64,
    /// Span events dropped at the recorder's capacity.
    pub span_dropped: u64,
    /// End-to-end kernel time, simulated ns.
    pub total_time_ns: u64,
    /// The sampled telemetry stream.
    pub timeseries: Timeseries,
    /// The fault-provenance ledger (always collected).
    pub attribution: Attribution,
    /// Worst-thrashing VABlocks by attribution badness, descending.
    pub top_offenders: Vec<Offender>,
}

impl MetricsPoint {
    /// Filesystem-safe per-point stem, e.g. `03_regular_r1.25_density`.
    pub fn file_stem(&self, index: usize) -> String {
        let workload: String = self
            .workload
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        format!("{index:02}_{workload}_r{:.2}_{}", self.ratio, self.policy)
    }
}

const MIGRATED_BYTES: MetricDef = MetricDef {
    name: "uvm_migrated_bytes_total",
    kind: MetricKind::Counter,
    help: "Bytes moved over the interconnect, by direction.",
};
const REFAULTS: MetricDef = MetricDef {
    name: "uvm_refaults_total",
    kind: MetricKind::Counter,
    help: "Faults on previously-evicted VABlocks (evict-before-reuse thrash).",
};
const TRACE_DROPPED: MetricDef = MetricDef {
    name: "uvm_trace_dropped_total",
    kind: MetricKind::Counter,
    help: "Per-fault trace events dropped at the recorder's capacity.",
};
const SPAN_DROPPED: MetricDef = MetricDef {
    name: "uvm_span_dropped_total",
    kind: MetricKind::Counter,
    help: "Span events dropped at the recorder's capacity.",
};
const TS_COMPACTIONS: MetricDef = MetricDef {
    name: "uvm_timeseries_compactions_total",
    kind: MetricKind::Counter,
    help: "In-place sample-buffer compactions (each doubles the interval).",
};
const SIM_TIME: MetricDef = MetricDef {
    name: "uvm_sim_time_ns",
    kind: MetricKind::Gauge,
    help: "End-to-end simulated kernel time.",
};
const RESIDENT: MetricDef = MetricDef {
    name: "uvm_resident_pages",
    kind: MetricKind::Gauge,
    help: "Pages backed by GPU physical memory at end of run.",
};
const LRU_BLOCKS: MetricDef = MetricDef {
    name: "uvm_lru_tracked_blocks",
    kind: MetricKind::Gauge,
    help: "VABlocks tracked by the eviction LRU at end of run.",
};
const COVERAGE: MetricDef = MetricDef {
    name: "uvm_prefetch_coverage_percent",
    kind: MetricKind::Gauge,
    help: "Prefetched share of all H2D page migrations, percent.",
};
const EVICT_PER_FAULT: MetricDef = MetricDef {
    name: "uvm_evictions_per_fault",
    kind: MetricKind::Gauge,
    help: "Pages evicted per driver-observed fault (Table II tail metric).",
};
const BATCH_LATENCY: MetricDef = MetricDef {
    name: "uvm_batch_latency_ns",
    kind: MetricKind::Gauge,
    help: "Per-pass driver critical-path latency percentile, simulated ns.",
};
const TS_SAMPLES: MetricDef = MetricDef {
    name: "uvm_timeseries_samples",
    kind: MetricKind::Gauge,
    help: "Telemetry samples recorded for the run.",
};
const EVICT_BEFORE_USE: MetricDef = MetricDef {
    name: "uvm_evict_before_use_percent",
    kind: MetricKind::Gauge,
    help: "Share of evicted pages that were never touched during their \
           residency (prefetch-eviction antagonism), percent.",
};
const OFFENDER_BADNESS: MetricDef = MetricDef {
    name: "uvm_offender_badness",
    kind: MetricKind::Gauge,
    help: "Attribution badness (refaults + prefetched-evicted pages) of \
           the run's worst-thrashing VABlocks, labelled by block index.",
};

/// Render the Prometheus text exposition for a set of finished points.
/// Every sample carries `workload`/`ratio`/`policy` labels; the counter
/// families come from [`metrics::COUNTER_REGISTRY`], so the exposition
/// cannot drift from the `Counters` struct.
pub fn render_exposition(points: &[MetricsPoint]) -> String {
    let mut exp = Exposition::new();
    for p in points {
        let ratio = format!("{:.2}", p.ratio);
        let base = [
            ("workload", p.workload.as_str()),
            ("ratio", ratio.as_str()),
            ("policy", p.policy),
        ];
        for m in COUNTER_REGISTRY {
            exp.push(&m.def, &base, (m.read)(&p.counters) as f64);
        }
        for m in ATTRIBUTION_REGISTRY {
            exp.push(&m.def, &base, (m.read)(&p.attribution) as f64);
        }
        exp.push(
            &EVICT_BEFORE_USE,
            &base,
            p.attribution.evict_before_use_bp() as f64 / 100.0,
        );
        for o in &p.top_offenders {
            let block = o.block.to_string();
            let labels = [base[0], base[1], base[2], ("block", block.as_str())];
            exp.push(&OFFENDER_BADNESS, &labels, o.stats.badness() as f64);
        }
        for (dir, bytes) in [("h2d", p.h2d_bytes), ("d2h", p.d2h_bytes)] {
            let labels = [base[0], base[1], base[2], ("direction", dir)];
            exp.push(&MIGRATED_BYTES, &labels, bytes as f64);
        }
        let last = p.timeseries.last().copied().unwrap_or_default();
        exp.push(&REFAULTS, &base, last.refaults as f64);
        exp.push(&TRACE_DROPPED, &base, p.trace_dropped as f64);
        exp.push(&SPAN_DROPPED, &base, p.span_dropped as f64);
        exp.push(&TS_COMPACTIONS, &base, p.timeseries.compactions as f64);
        exp.push(&SIM_TIME, &base, p.total_time_ns as f64);
        exp.push(&RESIDENT, &base, last.resident_pages as f64);
        exp.push(&LRU_BLOCKS, &base, last.lru_blocks as f64);
        exp.push(&COVERAGE, &base, last.prefetch_coverage_bp as f64 / 100.0);
        exp.push(&EVICT_PER_FAULT, &base, p.counters.evictions_per_fault());
        for (q, v) in [
            ("p50", last.batch_ns_p50),
            ("p95", last.batch_ns_p95),
            ("p99", last.batch_ns_p99),
        ] {
            let labels = [base[0], base[1], base[2], ("quantile", q)];
            exp.push(&BATCH_LATENCY, &labels, v as f64);
        }
        exp.push(&TS_SAMPLES, &base, p.timeseries.samples.len() as f64);
    }
    exp.render()
}

/// Write one experiment's metrics artefacts under `dir/<experiment>/`:
/// a sample CSV per point plus the exposition snapshot. Returns the
/// written paths.
pub fn write_experiment(
    dir: &std::path::Path,
    experiment: &str,
    points: &[MetricsPoint],
) -> std::io::Result<Vec<std::path::PathBuf>> {
    let exp_dir = dir.join(experiment);
    std::fs::create_dir_all(&exp_dir)?;
    let mut written = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let path = exp_dir.join(format!("{}.csv", p.file_stem(i)));
        std::fs::write(&path, p.timeseries.to_csv())?;
        written.push(path);
    }
    let prom = exp_dir.join("metrics.prom");
    std::fs::write(&prom, render_exposition(points))?;
    written.push(prom);
    let tsv = exp_dir.join("offenders.tsv");
    std::fs::write(&tsv, render_offenders_tsv(points))?;
    written.push(tsv);
    Ok(written)
}

/// Header of the per-experiment offender table artefact.
const OFFENDERS_HEADER: &str = "point\tblock\trefault_faults\tprefetch_evicted_pages\tevictions\tbadness";

/// Render the per-experiment offender table (`offenders.tsv`): one row
/// per (point, offending VABlock), points in sweep order, blocks in
/// descending badness. Tab-separated so the metrics-dir CSV walkers
/// (`repro report` / `check-metrics`) never mistake it for a sample CSV.
pub fn render_offenders_tsv(points: &[MetricsPoint]) -> String {
    let mut out = String::from(OFFENDERS_HEADER);
    out.push('\n');
    for (i, p) in points.iter().enumerate() {
        let stem = p.file_stem(i);
        for o in &p.top_offenders {
            out.push_str(&format!(
                "{stem}\t{}\t{}\t{}\t{}\t{}\n",
                o.block,
                o.stats.refault_faults,
                o.stats.prefetch_evicted_pages,
                o.stats.evictions,
                o.stats.badness()
            ));
        }
    }
    out
}

/// The provenance ledger of one finished point, re-read from its sample
/// CSV's forced final row (cumulative totals).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Ledger {
    faults: u64,
    duplicates: u64,
    faulted_in: u64,
    prefetched: u64,
    cold: u64,
    refault_used: u64,
    refault_unused: u64,
    prefetch_hit: u64,
    replay_dup: u64,
    evicted_used: u64,
    prefetch_evicted: u64,
    pages_evicted: u64,
    h2d_bytes: u64,
    d2h_bytes: u64,
}

impl Ledger {
    fn refaults(&self) -> u64 {
        self.refault_used + self.refault_unused
    }

    fn evict_before_use_pct(&self) -> f64 {
        let total = self.evicted_used + self.prefetch_evicted;
        if total == 0 {
            0.0
        } else {
            self.prefetch_evicted as f64 * 100.0 / total as f64
        }
    }

    /// Pages migrated by explicit hints, derivable from the byte total:
    /// H2D bytes = (faulted + fault-path prefetched + hinted) pages.
    fn hint_pages(&self) -> u64 {
        self.h2d_bytes / PAGE_SIZE - self.faulted_in - self.prefetched
    }

    fn merge(&mut self, o: &Ledger) {
        self.faults += o.faults;
        self.duplicates += o.duplicates;
        self.faulted_in += o.faulted_in;
        self.prefetched += o.prefetched;
        self.cold += o.cold;
        self.refault_used += o.refault_used;
        self.refault_unused += o.refault_unused;
        self.prefetch_hit += o.prefetch_hit;
        self.replay_dup += o.replay_dup;
        self.evicted_used += o.evicted_used;
        self.prefetch_evicted += o.prefetch_evicted;
        self.pages_evicted += o.pages_evicted;
        self.h2d_bytes += o.h2d_bytes;
        self.d2h_bytes += o.d2h_bytes;
    }
}

/// Re-read one point's ledger from its sample CSV and *reconcile* it:
/// the per-cause attribution columns must partition the counter columns
/// exactly. A mismatch is a corrupted or internally-inconsistent
/// artefact — reported as `Err`, never papered over.
fn read_ledger(name: &str, text: &str) -> Result<Ledger, String> {
    let rows = parse_rows(text).map_err(|e| format!("{name}: {e}"))?;
    let last = rows.last().ok_or_else(|| format!("{name}: no samples"))?;
    let l = Ledger {
        faults: last[col("faults_fetched")],
        duplicates: last[col("duplicate_faults")],
        faulted_in: last[col("pages_faulted_in")],
        prefetched: last[col("pages_prefetched")],
        cold: last[col("attr_cold_faults")],
        refault_used: last[col("attr_refault_used_faults")],
        refault_unused: last[col("attr_refault_unused_faults")],
        prefetch_hit: last[col("attr_prefetch_hit_faults")],
        replay_dup: last[col("attr_replay_dup_faults")],
        evicted_used: last[col("attr_evicted_used_pages")],
        prefetch_evicted: last[col("attr_prefetch_evicted_pages")],
        pages_evicted: last[col("pages_evicted")],
        h2d_bytes: last[col("migrated_bytes_h2d")],
        d2h_bytes: last[col("migrated_bytes_d2h")],
    };
    let checks: [(&str, u64, u64); 4] = [
        (
            "cold + refault_used + refault_unused == pages_faulted_in",
            l.cold + l.refault_used + l.refault_unused,
            l.faulted_in,
        ),
        (
            "prefetch_hit + replay_dup == duplicate_faults",
            l.prefetch_hit + l.replay_dup,
            l.duplicates,
        ),
        (
            "sum of per-cause faults == faults_fetched",
            l.cold + l.refault_used + l.refault_unused + l.prefetch_hit + l.replay_dup,
            l.faults,
        ),
        (
            "evicted_used + prefetch_evicted == pages_evicted",
            l.evicted_used + l.prefetch_evicted,
            l.pages_evicted,
        ),
    ];
    for (eq, lhs, rhs) in checks {
        if lhs != rhs {
            return Err(format!(
                "{name}: attribution does not reconcile: {eq} violated ({lhs} != {rhs})"
            ));
        }
    }
    if l.h2d_bytes < (l.faulted_in + l.prefetched) * PAGE_SIZE {
        return Err(format!(
            "{name}: attribution does not reconcile: H2D bytes {} below \
             (pages_faulted_in + pages_prefetched) * page size {}",
            l.h2d_bytes,
            (l.faulted_in + l.prefetched) * PAGE_SIZE
        ));
    }
    Ok(l)
}

/// Percentage cell, `total == 0` rendering as a dash.
fn pct(part: u64, total: u64) -> String {
    if total == 0 {
        "-".into()
    } else {
        format!("{:.1}", part as f64 * 100.0 / total as f64)
    }
}

/// Render the `repro explain` decomposition from `(name, csv)` blobs —
/// the paper-style per-fault root-cause breakdown (§VI shape), entirely
/// from run artefacts. Errs if any point's attribution columns fail to
/// reconcile with its counter columns.
pub fn render_explain(files: &[(String, String)], offenders_tsv: Option<&str>) -> Result<String, String> {
    let mut out = String::new();
    let mut faults = Table::new(
        "fault decomposition by root cause (% of driver-observed faults)",
        &[
            "point", "faults", "cold_%", "refault_used_%", "refault_unused_%",
            "prefetch_hit_%", "replay_dup_%",
        ],
    );
    let mut pages = Table::new(
        "migration and eviction provenance",
        &[
            "point", "h2d_MiB", "faulted_MiB", "prefetch_MiB", "hint_MiB", "d2h_MiB",
            "evicted_pages", "evict_before_use_%",
        ],
    );
    let mib = |b: u64| format!("{:.1}", b as f64 / (1 << 20) as f64);
    for (name, text) in files {
        let l = read_ledger(name, text)?;
        faults.row(vec![
            name.clone(),
            l.faults.to_string(),
            pct(l.cold, l.faults),
            pct(l.refault_used, l.faults),
            pct(l.refault_unused, l.faults),
            pct(l.prefetch_hit, l.faults),
            pct(l.replay_dup, l.faults),
        ]);
        pages.row(vec![
            name.clone(),
            mib(l.h2d_bytes),
            mib(l.faulted_in * PAGE_SIZE),
            mib(l.prefetched * PAGE_SIZE),
            mib(l.hint_pages() * PAGE_SIZE),
            mib(l.d2h_bytes),
            l.pages_evicted.to_string(),
            format!("{:.1}", l.evict_before_use_pct()),
        ]);
    }
    out.push_str(&faults.render());
    out.push('\n');
    out.push_str(&pages.render());
    out.push('\n');
    if let Some(tsv) = offenders_tsv {
        out.push_str(&render_offender_table(tsv)?);
        out.push('\n');
    }
    Ok(out)
}

/// Re-render the `offenders.tsv` artefact as a report table.
fn render_offender_table(tsv: &str) -> Result<String, String> {
    let mut lines = tsv.lines();
    if lines.next() != Some(OFFENDERS_HEADER) {
        return Err("offenders.tsv: unexpected header".into());
    }
    let mut t = Table::new(
        "top offending VABlocks (badness = refaults + prefetched-evicted pages)",
        &["point", "block", "refault_faults", "prefetch_evicted", "evictions", "badness"],
    );
    let mut rows = 0usize;
    for line in lines.filter(|l| !l.is_empty()) {
        let cells: Vec<&str> = line.split('\t').collect();
        if cells.len() != 6 {
            return Err(format!("offenders.tsv: malformed row `{line}`"));
        }
        t.row(cells.into_iter().map(String::from).collect());
        rows += 1;
    }
    if rows == 0 {
        return Ok("no offending VABlocks (no refaults or wasted prefetches)\n".into());
    }
    Ok(t.render())
}

/// Render `repro explain --diff A B`: aggregate each side's ledgers and
/// show the per-cause deltas — the cross-run attribution diff that makes
/// e.g. the prefetch-eviction antagonism directly visible when A and B
/// are the same sweep with prefetch on and off.
pub fn render_explain_diff(
    a_label: &str,
    a_files: &[(String, String)],
    b_label: &str,
    b_files: &[(String, String)],
) -> Result<String, String> {
    let mut a = Ledger::default();
    for (name, text) in a_files {
        a.merge(&read_ledger(name, text)?);
    }
    let mut b = Ledger::default();
    for (name, text) in b_files {
        b.merge(&read_ledger(name, text)?);
    }
    let mut t = Table::new(
        format!(
            "attribution diff: A = {a_label} ({} points), B = {b_label} ({} points)",
            a_files.len(),
            b_files.len()
        ),
        &["metric", "A", "B", "delta"],
    );
    let delta = |x: u64, y: u64| format!("{:+}", y as i128 - x as i128);
    let rows: [(&str, u64, u64); 10] = [
        ("faults_total", a.faults, b.faults),
        ("cold_faults", a.cold, b.cold),
        ("refault_used_faults", a.refault_used, b.refault_used),
        ("refault_unused_faults", a.refault_unused, b.refault_unused),
        ("prefetch_hit_faults", a.prefetch_hit, b.prefetch_hit),
        ("replay_dup_faults", a.replay_dup, b.replay_dup),
        ("pages_evicted", a.pages_evicted, b.pages_evicted),
        ("prefetch_evicted_pages", a.prefetch_evicted, b.prefetch_evicted),
        ("h2d_bytes", a.h2d_bytes, b.h2d_bytes),
        ("d2h_bytes", a.d2h_bytes, b.d2h_bytes),
    ];
    for (name, x, y) in rows {
        t.row(vec![name.to_string(), x.to_string(), y.to_string(), delta(x, y)]);
    }
    t.row(vec![
        "evict_before_use_%".to_string(),
        format!("{:.1}", a.evict_before_use_pct()),
        format!("{:.1}", b.evict_before_use_pct()),
        format!("{:+.1}", b.evict_before_use_pct() - a.evict_before_use_pct()),
    ]);
    let mut out = t.render();
    // The headline reading, so the antagonism doesn't have to be dug out
    // of the table: how much of each side's eviction volume was wasted
    // prefetch, and how much refaulting that churn caused.
    out.push_str(&format!(
        "\nA: {} refaults, {} pages evicted before use; \
         B: {} refaults, {} pages evicted before use\n",
        a.refaults(),
        a.prefetch_evicted,
        b.refaults(),
        b.prefetch_evicted,
    ));
    Ok(out)
}

/// Index of a column in the sample CSV schema.
fn col(name: &str) -> usize {
    SAMPLE_COLUMNS
        .iter()
        .position(|c| c.name == name)
        .unwrap_or_else(|| panic!("unknown sample column {name}"))
}

/// Parse a validated sample CSV into rows of u64 cells.
fn parse_rows(text: &str) -> Result<Vec<Vec<u64>>, String> {
    validate_csv(text)?;
    Ok(text
        .lines()
        .skip(1)
        .filter(|l| !l.is_empty())
        .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
        .collect())
}

/// Render the `repro report` decompositions from `(name, csv)` blobs:
/// a per-point summary (Fig. 9/10 shape: time, faults, evictions, data
/// moved, coverage) and a per-point fault-vs-eviction timeline (Fig. 8
/// shape), down-sampled to at most `max_timeline_rows` rows.
pub fn render_report(files: &[(String, String)], max_timeline_rows: usize) -> Result<String, String> {
    let t_ns = col("t_ns");
    let faults = col("faults_fetched");
    let evictions = col("evictions");
    let pages_evicted = col("pages_evicted");
    let refaults = col("refaults");
    let h2d = col("migrated_bytes_h2d");
    let d2h = col("migrated_bytes_d2h");
    let resident = col("resident_pages");
    let coverage = col("prefetch_coverage_bp");
    let p95 = col("batch_ns_p95");

    let mut out = String::new();
    let mut summary = Table::new(
        "per-run cost decomposition (final totals)",
        &[
            "point", "sim_ms", "faults", "evict_pages", "refaults", "h2d_MiB", "d2h_MiB",
            "coverage_%", "batch_p95_us",
        ],
    );
    let mut parsed = Vec::new();
    for (name, text) in files {
        let rows = parse_rows(text).map_err(|e| format!("{name}: {e}"))?;
        let last = rows.last().ok_or_else(|| format!("{name}: no samples"))?;
        summary.row(vec![
            name.clone(),
            format!("{:.3}", last[t_ns] as f64 / 1e6),
            last[faults].to_string(),
            last[pages_evicted].to_string(),
            last[refaults].to_string(),
            format!("{:.1}", last[h2d] as f64 / (1 << 20) as f64),
            format!("{:.1}", last[d2h] as f64 / (1 << 20) as f64),
            format!("{:.2}", last[coverage] as f64 / 100.0),
            format!("{:.1}", last[p95] as f64 / 1e3),
        ]);
        parsed.push((name, rows));
    }
    out.push_str(&summary.render());
    out.push('\n');

    for (name, rows) in parsed {
        let mut timeline = Table::new(
            format!("{name}: fault/eviction timeline"),
            &[
                "t_ms", "d_faults", "d_evictions", "d_h2d_MiB", "d_d2h_MiB", "resident_pages",
            ],
        );
        // Down-sample by stride so long runs still print compactly; the
        // deltas are taken between the *selected* rows, so the column
        // sums are preserved whatever the stride.
        let stride = rows.len().div_ceil(max_timeline_rows.max(1)).max(1);
        let mut prev: Option<&Vec<u64>> = None;
        for (i, row) in rows.iter().enumerate() {
            if i % stride != 0 && i != rows.len() - 1 {
                continue;
            }
            let d = |c: usize| row[c] - prev.map_or(0, |p| p[c]);
            timeline.row(vec![
                format!("{:.3}", row[t_ns] as f64 / 1e6),
                d(faults).to_string(),
                d(evictions).to_string(),
                format!("{:.2}", d(h2d) as f64 / (1 << 20) as f64),
                format!("{:.2}", d(d2h) as f64 / (1 << 20) as f64),
                row[resident].to_string(),
            ]);
            prev = Some(row);
        }
        out.push_str(&timeline.render());
        out.push('\n');
    }
    Ok(out)
}

/// How each trend metric regresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Regression when the value grows (wall time, evictions/fault).
    UpIsBad,
    /// Regression when the value shrinks (throughput, coverage).
    DownIsBad,
}

/// The headline series `repro regress` gates on, as `ci_trend` entry keys.
const TREND_METRICS: &[(&str, Direction)] = &[
    ("wall_seconds", Direction::UpIsBad),
    ("faults_per_sec", Direction::DownIsBad),
    ("evictions_per_fault", Direction::UpIsBad),
    ("coverage_pct", Direction::DownIsBad),
    // Longest single sweep point (work-stealing scheduler's load-balance
    // bound): a growing straggler means the point layout regressed even
    // if total wall hides it behind better overlap.
    ("max_straggler_ms", Direction::UpIsBad),
];

/// One metric comparison from [`evaluate_trend`].
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Benchmark series name (the `ci_trend` entry `name`).
    pub name: String,
    /// Metric key compared.
    pub metric: &'static str,
    /// Baseline (median of the prior runs of this series).
    pub baseline: f64,
    /// The newest run's value.
    pub current: f64,
    /// Signed relative change, where positive means "worse".
    pub delta_frac: f64,
    /// True when the change exceeds the threshold in the bad direction.
    pub regressed: bool,
    /// Prior runs the baseline was computed from.
    pub history: usize,
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(f) => Some(*f),
        Value::U64(u) => Some(*u as f64),
        Value::I64(i) => Some(*i as f64),
        _ => None,
    }
}

fn entry_field(entry: &Value, key: &str) -> Option<f64> {
    match entry {
        Value::Map(m) => m.iter().find(|(k, _)| k == key).and_then(|(_, v)| as_f64(v)),
        _ => None,
    }
}

fn entry_name(entry: &Value) -> Option<String> {
    match entry {
        Value::Map(m) => m.iter().find(|(k, _)| k == "name").and_then(|(_, v)| match v {
            Value::Str(s) => Some(s.clone()),
            _ => None,
        }),
        _ => None,
    }
}

/// Median of a non-empty slice (mean of the middle pair for even counts).
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Evaluate the `ci_trend` array of a BENCH_hotpaths-style JSON document:
/// for every series (grouped by entry `name`) with at least `min_runs`
/// entries, compare the newest entry's headline metrics against the
/// median of the earlier ones. A change beyond `threshold` (relative, in
/// the metric's bad direction) is flagged as a regression. Series or
/// metrics without enough history are skipped, not failed.
pub fn evaluate_trend(
    root: &Value,
    threshold: f64,
    min_runs: usize,
) -> Result<Vec<Finding>, String> {
    let Value::Map(keys) = root else {
        return Err("top level is not a JSON object".into());
    };
    let trend = match keys.iter().find(|(k, _)| k == "ci_trend") {
        Some((_, Value::Seq(entries))) => entries,
        Some(_) => return Err("ci_trend is not an array".into()),
        None => return Err("no ci_trend key — nothing to gate on".into()),
    };
    let mut names: Vec<String> = Vec::new();
    for e in trend {
        let name = entry_name(e).ok_or("ci_trend entry without a name")?;
        if !names.contains(&name) {
            names.push(name);
        }
    }
    let mut findings = Vec::new();
    for name in names {
        let series: Vec<&Value> = trend
            .iter()
            .filter(|e| entry_name(e).as_deref() == Some(name.as_str()))
            .collect();
        if series.len() < min_runs.max(2) {
            continue; // no baseline yet
        }
        let (latest, history) = series.split_last().expect("len >= 2");
        for (metric, direction) in TREND_METRICS {
            let Some(current) = entry_field(latest, metric) else {
                continue;
            };
            let mut prior: Vec<f64> = history
                .iter()
                .filter_map(|e| entry_field(e, metric))
                .collect();
            if prior.is_empty() {
                continue;
            }
            let n = prior.len();
            let baseline = median(&mut prior);
            if baseline == 0.0 {
                continue;
            }
            let delta_frac = match direction {
                Direction::UpIsBad => (current - baseline) / baseline,
                Direction::DownIsBad => (baseline - current) / baseline,
            };
            findings.push(Finding {
                name: name.clone(),
                metric,
                baseline,
                current,
                delta_frac,
                regressed: delta_frac > threshold,
                history: n,
            });
        }
    }
    Ok(findings)
}

/// Render regress findings as a readable diff table; regressions first.
pub fn render_findings(findings: &[Finding], threshold: f64) -> String {
    if findings.is_empty() {
        return "no series with enough history to compare — gate passes vacuously\n".into();
    }
    let mut t = Table::new(
        format!("perf trend vs median baseline (threshold {:.0}%)", threshold * 100.0),
        &["series", "metric", "baseline", "current", "delta", "runs", "verdict"],
    );
    let mut ordered: Vec<&Finding> = findings.iter().collect();
    ordered.sort_by(|a, b| {
        b.regressed
            .cmp(&a.regressed)
            .then(b.delta_frac.partial_cmp(&a.delta_frac).unwrap())
    });
    for f in ordered {
        t.row(vec![
            f.name.clone(),
            f.metric.to_string(),
            format!("{:.4}", f.baseline),
            format!("{:.4}", f.current),
            format!("{:+.1}%", f.delta_frac * 100.0),
            f.history.to_string(),
            if f.regressed { "REGRESSED" } else { "ok" }.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use metrics::exposition;
    use metrics::timeseries::Sample;

    fn point(workload: &str, ratio: f64, faults: u64) -> MetricsPoint {
        let mut c = Counters::default();
        c.faults_fetched = faults;
        c.pages_faulted_in = faults;
        c.pages_prefetched = faults * 3;
        let samples = vec![
            Sample {
                t_ns: 1_000,
                faults_fetched: faults / 2,
                ..Sample::default()
            },
            Sample {
                t_ns: 2_000,
                faults_fetched: faults,
                pages_faulted_in: faults,
                pages_prefetched: faults * 3,
                migrated_bytes_h2d: faults * 4 * 4096,
                resident_pages: 512,
                prefetch_coverage_bp: 7_500,
                attr_cold_faults: faults,
                ..Sample::default()
            },
        ];
        let attribution = Attribution {
            cold_faults: faults,
            prefetch_pages: faults * 3,
            ..Attribution::default()
        };
        MetricsPoint {
            workload: workload.into(),
            ratio,
            policy: "density",
            counters: c,
            h2d_bytes: faults * 4096,
            d2h_bytes: 0,
            trace_dropped: 5,
            span_dropped: 2,
            total_time_ns: 2_000,
            timeseries: Timeseries {
                base_interval_ns: 1_000,
                interval_ns: 1_000,
                compactions: 0,
                samples,
            },
            attribution,
            top_offenders: vec![metrics::Offender {
                block: 7,
                stats: metrics::BlockStats {
                    refault_faults: 12,
                    prefetch_evicted_pages: 30,
                    evictions: 2,
                },
            }],
        }
    }

    #[test]
    fn exposition_validates_and_reconciles() {
        let points = [point("regular", 0.5, 100), point("random", 1.25, 250)];
        let text = render_exposition(&points);
        let stats = exposition::validate(&text).expect("rendered exposition validates");
        assert!(stats.families > 20);
        // Aggregate totals reconcile with the counters exactly.
        assert!(text.contains(
            "uvm_faults_fetched_total{workload=\"regular\",ratio=\"0.50\",policy=\"density\"} 100"
        ));
        assert!(text.contains(
            "uvm_migrated_bytes_total{workload=\"random\",ratio=\"1.25\",policy=\"density\",direction=\"h2d\"} 1024000"
        ));
        // Satellite: recorder drops are visible without opening the trace.
        assert!(text.contains("uvm_trace_dropped_total{workload=\"regular\"") );
        assert!(text.contains("uvm_span_dropped_total"));
        // Quantile-labelled latency family declared once, sampled 6 times.
        assert_eq!(text.matches("# TYPE uvm_batch_latency_ns gauge").count(), 1);
        assert_eq!(text.matches("uvm_batch_latency_ns{").count(), 6);
    }

    #[test]
    fn exposition_carries_attribution_and_offenders() {
        let points = [point("regular", 1.5, 100)];
        let text = render_exposition(&points);
        exposition::validate(&text).expect("rendered exposition validates");
        assert!(text.contains(
            "uvm_attr_cold_faults_total{workload=\"regular\",ratio=\"1.50\",policy=\"density\"} 100"
        ));
        assert!(text.contains("uvm_attr_prefetch_pages_total"));
        assert!(text.contains(
            "uvm_offender_badness{workload=\"regular\",ratio=\"1.50\",policy=\"density\",block=\"7\"} 42"
        ));
        assert!(text.contains("uvm_evict_before_use_percent"));
    }

    #[test]
    fn explain_renders_decomposition_and_offenders() {
        let p = point("regular", 1.5, 100);
        let files = vec![("regular_r1.50".to_string(), p.timeseries.to_csv())];
        let tsv = render_offenders_tsv(std::slice::from_ref(&p));
        let out = render_explain(&files, Some(&tsv)).expect("explain renders");
        assert!(out.contains("fault decomposition by root cause"));
        assert!(out.contains("100.0"), "all faults are cold in the fixture");
        assert!(out.contains("migration and eviction provenance"));
        assert!(out.contains("top offending VABlocks"));
        assert!(out.contains("42"), "offender badness 12 + 30");
    }

    #[test]
    fn explain_fails_on_reconciliation_mismatch() {
        let mut p = point("regular", 1.5, 100);
        // Corrupt the artefact: claim one fault was a refault without
        // taking it from the cold count — the partition no longer sums.
        p.timeseries.samples[1].attr_refault_used_faults = 1;
        let files = vec![("bad".to_string(), p.timeseries.to_csv())];
        let err = render_explain(&files, None).expect_err("mismatch must fail");
        assert!(err.contains("does not reconcile"), "{err}");
        assert!(err.contains("pages_faulted_in"), "{err}");
    }

    #[test]
    fn explain_diff_shows_per_cause_deltas() {
        let a = point("regular", 1.5, 100);
        let mut b = point("regular", 1.5, 100);
        // B: 40 of the faults are refaults on evicted-unused pages.
        let s = &mut b.timeseries.samples[1];
        s.attr_cold_faults = 60;
        s.attr_refault_unused_faults = 40;
        s.attr_prefetch_evicted_pages = 40;
        s.pages_evicted = 40;
        let fa = vec![("a".to_string(), a.timeseries.to_csv())];
        let fb = vec![("b".to_string(), b.timeseries.to_csv())];
        let out = render_explain_diff("off", &fa, "on", &fb).expect("diff renders");
        assert!(out.contains("attribution diff"));
        assert!(out.contains("refault_unused_faults"));
        assert!(out.contains("+40"));
        assert!(out.contains("pages evicted before use"));
    }

    #[test]
    fn file_stems_are_filesystem_safe() {
        let p = point("sgemm 2/1", 1.25, 10);
        assert_eq!(p.file_stem(3), "03_sgemm-2-1_r1.25_density");
    }

    #[test]
    fn report_renders_summary_and_timeline() {
        let p = point("regular", 0.5, 100);
        let files = vec![("regular_r0.50".to_string(), p.timeseries.to_csv())];
        let out = render_report(&files, 16).expect("report renders");
        assert!(out.contains("per-run cost decomposition"));
        assert!(out.contains("regular_r0.50: fault/eviction timeline"));
        // Timeline deltas: 50 faults in the first bucket, 50 in the second.
        assert!(out.contains("50"));
    }

    #[test]
    fn report_rejects_malformed_csv() {
        let files = vec![("bad".to_string(), "nope\n1,2\n".to_string())];
        assert!(render_report(&files, 16).is_err());
    }

    fn trend_doc(entries: &[(&str, f64, Option<f64>)]) -> Value {
        let seq = entries
            .iter()
            .map(|(name, wall, rate)| {
                let mut m = vec![
                    ("name".to_string(), Value::Str(name.to_string())),
                    ("wall_seconds".to_string(), Value::F64(*wall)),
                ];
                if let Some(r) = rate {
                    m.push(("faults_per_sec".to_string(), Value::F64(*r)));
                }
                Value::Map(m)
            })
            .collect();
        Value::Map(vec![("ci_trend".to_string(), Value::Seq(seq))])
    }

    #[test]
    fn regress_flags_wall_time_growth() {
        let doc = trend_doc(&[
            ("fig1", 10.0, Some(1000.0)),
            ("fig1", 10.4, Some(1010.0)),
            ("fig1", 14.0, Some(990.0)),
        ]);
        let findings = evaluate_trend(&doc, 0.25, 2).expect("trend evaluates");
        let wall = findings
            .iter()
            .find(|f| f.metric == "wall_seconds")
            .expect("wall compared");
        assert!(wall.regressed, "14s vs 10.2s median is > 25%");
        assert!((wall.baseline - 10.2).abs() < 1e-9);
        let rate = findings
            .iter()
            .find(|f| f.metric == "faults_per_sec")
            .expect("rate compared");
        assert!(!rate.regressed, "1% throughput dip is within threshold");
        let text = render_findings(&findings, 0.25);
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("fig1"));
    }

    #[test]
    fn regress_flags_straggler_growth() {
        // A straggler-point blowup is a regression even when total wall
        // holds steady (the scheduler hid it behind overlap).
        let entry = |wall: f64, straggler: f64| {
            Value::Map(vec![
                ("name".to_string(), Value::Str("fig1".to_string())),
                ("wall_seconds".to_string(), Value::F64(wall)),
                ("max_straggler_ms".to_string(), Value::F64(straggler)),
            ])
        };
        let doc = Value::Map(vec![(
            "ci_trend".to_string(),
            Value::Seq(vec![entry(10.0, 400.0), entry(10.0, 410.0), entry(10.1, 900.0)]),
        )]);
        let findings = evaluate_trend(&doc, 0.25, 2).expect("trend evaluates");
        let straggler = findings
            .iter()
            .find(|f| f.metric == "max_straggler_ms")
            .expect("straggler compared");
        assert!(straggler.regressed, "900ms vs 405ms median is > 25%");
        assert!(findings
            .iter()
            .any(|f| f.metric == "wall_seconds" && !f.regressed));
    }

    #[test]
    fn regress_flags_throughput_drop() {
        let doc = trend_doc(&[
            ("fig1", 10.0, Some(1000.0)),
            ("fig1", 10.0, Some(600.0)),
        ]);
        let findings = evaluate_trend(&doc, 0.25, 2).expect("trend evaluates");
        assert!(findings.iter().any(|f| f.metric == "faults_per_sec" && f.regressed));
    }

    #[test]
    fn regress_needs_history() {
        let doc = trend_doc(&[("fig1", 10.0, None)]);
        let findings = evaluate_trend(&doc, 0.25, 2).expect("trend evaluates");
        assert!(findings.is_empty(), "one run is not a baseline");
        let text = render_findings(&findings, 0.25);
        assert!(text.contains("vacuously"));
    }

    #[test]
    fn regress_series_are_independent() {
        let doc = trend_doc(&[
            ("fig1", 10.0, None),
            ("all", 100.0, None),
            ("fig1", 10.1, None),
            ("all", 220.0, None),
        ]);
        let findings = evaluate_trend(&doc, 0.25, 2).expect("trend evaluates");
        assert!(findings
            .iter()
            .any(|f| f.name == "all" && f.metric == "wall_seconds" && f.regressed));
        assert!(findings
            .iter()
            .any(|f| f.name == "fig1" && f.metric == "wall_seconds" && !f.regressed));
    }

    #[test]
    fn regress_rejects_documents_without_trend() {
        let doc = Value::Map(vec![("other".to_string(), Value::U64(1))]);
        assert!(evaluate_trend(&doc, 0.25, 2).is_err());
    }
}
