//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale <denominator>] [--out <dir>] [--json] [--threads <n>]
//!                    [--service-workers <n>] [--trace-out <file>] [--trace-cap <events>]
//!                    [--progress|--no-progress]
//! repro all
//! repro list
//! repro check-trace <file>
//! repro bench-append <file> <name> <wall_seconds>
//! ```
//!
//! `--json` additionally writes each experiment's table as
//! `<out>/<experiment>.json` for downstream tooling, plus a
//! `<out>/BENCH_hotpaths.json` wall-time/throughput report (simulated
//! faults/sec and warp-steps/sec per experiment).
//!
//! `--trace-out trace.json` records batch-lifecycle spans and per-page
//! fault events during every sweep and writes a combined
//! Chrome-trace/Perfetto JSON file — load it at <https://ui.perfetto.dev>
//! or `chrome://tracing`. A flamegraph-style per-phase summary is printed
//! after the runs. `--trace-cap` bounds the per-run span buffer (default
//! 65536 events; dropped events are counted, and dropped leaf *time*
//! stays accounted per category). `repro check-trace <file>` re-validates
//! an exported file against the trace-event-format invariants and the
//! span-vs-timers reconciliation; `repro bench-append` appends one
//! `{name, wall_seconds}` entry to the `ci_trend` array of a
//! BENCH_hotpaths-style JSON file (the CI perf trend).
//!
//! A live progress line (points done, faults/sec, ETA) is written to
//! stderr while sweeps run — on by default when stderr is a terminal;
//! force with `--progress` / `--no-progress`.
//!
//! Experiments: fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 table1
//! table2, the §VI ablations (ablation_replay ablation_threshold
//! ablation_granularity ablation_eviction ablation_batch_size
//! ablation_thrash), and the extension analyses (extra_warm_start
//! extra_batch_composition extra_prefetch_waste).
//!
//! `--scale N` sets GPU memory to 12 GB / N (default 16). CSV artifacts
//! (the scatter data behind Figures 7 and 8) are written to `--out`
//! (default `./repro-out`). `--threads N` sizes the rayon pool running
//! the sweeps; results are deterministic and identical for every N.
//! `--service-workers N` pins the intra-batch planning width inside each
//! simulation point (default: auto = the rayon pool size); simulated
//! output — stdout, tables, traces — is bit-identical for every value,
//! and the per-phase wall-time split lands in `BENCH_hotpaths.json`.

use bench::experiments::{ablations, extras, figures, obs, tables, Artifact, Scale};
use metrics::chrome;
use serde::{Serialize, Value};
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// Print to stdout, exiting quietly on a closed pipe (`repro list | head`).
fn out(text: &str) {
    if writeln!(std::io::stdout(), "{text}").is_err() {
        std::process::exit(0);
    }
}

type Experiment = (&'static str, fn(Scale) -> Artifact);

const EXPERIMENTS: &[Experiment] = &[
    ("fig1", figures::fig1),
    ("fig3", figures::fig3),
    ("fig4", figures::fig4),
    ("fig5", figures::fig5),
    ("fig6", figures::fig6),
    ("fig7", figures::fig7),
    ("fig8", figures::fig8),
    ("fig9", figures::fig9),
    ("fig10", figures::fig10),
    ("table1", tables::table1),
    ("table2", tables::table2),
    ("ablation_replay", ablations::ablation_replay),
    ("ablation_threshold", ablations::ablation_threshold),
    ("ablation_granularity", ablations::ablation_granularity),
    ("ablation_eviction", ablations::ablation_eviction),
    ("ablation_batch_size", ablations::ablation_batch_size),
    ("ablation_prefetcher", ablations::ablation_prefetcher),
    ("ablation_thrash", extras::ablation_thrash),
    ("extra_warm_start", extras::extra_warm_start),
    ("extra_batch_composition", extras::extra_batch_composition),
    ("extra_prefetch_waste", extras::extra_prefetch_waste),
    ("extra_interconnect", extras::extra_interconnect),
];

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment|all|list> [--scale <denominator>] [--out <dir>] \
         [--json] [--threads <n>] [--service-workers <n>] [--trace-out <file>] \
         [--trace-cap <events>] [--progress|--no-progress]\n\
         \x20      repro check-trace <file>\n\
         \x20      repro bench-append <file> <name> <wall_seconds>"
    );
    eprintln!("experiments:");
    for (name, _) in EXPERIMENTS {
        eprintln!("  {name}");
    }
    std::process::exit(2);
}

/// `repro check-trace <file>`: parse an exported Chrome-trace file and
/// re-check every invariant the exporter promises (see
/// [`metrics::chrome::validate`]). Exits nonzero on any violation.
fn cmd_check_trace(path: &str) -> ! {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: read {path}: {e}");
            std::process::exit(1);
        }
    };
    match chrome::validate(&body) {
        Ok(stats) => {
            out(&format!(
                "{path}: OK — {} process(es), {} events ({} leaf spans, {} containers, \
                 {} instants), {} dropped",
                stats.processes,
                stats.events,
                stats.leaf_spans,
                stats.container_spans,
                stats.instants,
                stats.dropped,
            ));
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro bench-append <file> <name> <wall_seconds>`: append one
/// `{name, wall_seconds}` entry to the file's `ci_trend` array (created
/// if absent), preserving every other key. CI uses this to keep a
/// wall-time trend in `BENCH_hotpaths.json`.
fn cmd_bench_append(path: &str, name: &str, wall_seconds: f64) -> ! {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut root: Value = match serde_json::from_str(&body) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: parse {path}: {e}");
            std::process::exit(1);
        }
    };
    let entry = Value::Map(vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("wall_seconds".to_string(), Value::F64(wall_seconds)),
    ]);
    let Value::Map(keys) = &mut root else {
        eprintln!("error: {path}: top level is not a JSON object");
        std::process::exit(1);
    };
    match keys.iter_mut().find(|(k, _)| k == "ci_trend") {
        Some((_, Value::Seq(trend))) => trend.push(entry),
        Some((_, other)) => {
            *other = Value::Seq(vec![entry]);
        }
        None => keys.push(("ci_trend".to_string(), Value::Seq(vec![entry]))),
    }
    let rendered = serde_json::to_string_pretty(&root).expect("re-serialize trend file");
    if let Err(e) = std::fs::write(path, rendered) {
        eprintln!("error: write {path}: {e}");
        std::process::exit(1);
    }
    out(&format!("{path}: ci_trend += {{{name}, {wall_seconds:.3}s}}"));
    std::process::exit(0);
}

/// One experiment's row in the `BENCH_hotpaths.json` throughput report.
#[derive(Serialize)]
struct ExperimentPerf {
    name: String,
    wall_seconds: f64,
    /// Simulated faults the driver fetched across the experiment's sweeps.
    sim_faults: u64,
    /// Completed GPU warp-steps across the same sweeps.
    sim_warp_steps: u64,
    faults_per_sec: f64,
    warp_steps_per_sec: f64,
    /// Host wall time the drivers spent in the serial front half of batch
    /// service (fetch/sort, replay policy, ordered commit).
    serial_front_ms: f64,
    /// Host wall time on the planning phase's critical path.
    parallel_service_ms: f64,
    /// Planning work summed over all participants (≥ `parallel_service_ms`
    /// when the pool scales).
    service_busy_ms: f64,
    /// `busy / (wall × workers)` — effective planner utilisation.
    worker_utilisation: f64,
    /// Pooled plans recomputed serially at commit after an intra-batch
    /// eviction invalidated the batch-start snapshot (0 on the fused
    /// serial path, which always plans against current state).
    plan_replans: u64,
    /// Service-planning workers the experiment's drivers ran with.
    service_workers: u64,
}

/// The `BENCH_hotpaths.json` report `--json` writes alongside the tables.
#[derive(Serialize)]
struct PerfReport {
    scale_denominator: f64,
    threads: usize,
    /// `--service-workers` override (0 = auto: the rayon pool size).
    service_workers: usize,
    experiments: Vec<ExperimentPerf>,
    total_wall_seconds: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    match args[0].as_str() {
        "check-trace" => cmd_check_trace(args.get(1).map(String::as_str).unwrap_or_else(|| usage())),
        "bench-append" => {
            let file = args.get(1).unwrap_or_else(|| usage());
            let name = args.get(2).unwrap_or_else(|| usage());
            let wall: f64 = args
                .get(3)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| usage());
            cmd_bench_append(file, name, wall);
        }
        _ => {}
    }
    let mut which = String::new();
    let mut scale_den = 16.0f64;
    let mut out_dir = PathBuf::from("repro-out");
    let mut json = false;
    let mut threads: Option<usize> = None;
    let mut service_workers = 0usize;
    let mut trace_out: Option<PathBuf> = None;
    let mut trace_cap = metrics::DEFAULT_SPAN_CAPACITY;
    let mut progress: Option<bool> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--trace-out" => {
                i += 1;
                trace_out = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--trace-cap" => {
                i += 1;
                trace_cap = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--progress" => progress = Some(true),
            "--no-progress" => progress = Some(false),
            "--scale" => {
                i += 1;
                scale_den = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                if n == 0 {
                    eprintln!("error: --threads must be >= 1");
                    std::process::exit(2);
                }
                threads = Some(n);
            }
            "--service-workers" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                if n == 0 {
                    eprintln!("error: --service-workers must be >= 1");
                    std::process::exit(2);
                }
                service_workers = n;
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).unwrap_or_else(|| usage()));
            }
            name if which.is_empty() && !name.starts_with('-') => which = name.to_string(),
            _ => usage(),
        }
        i += 1;
    }
    if let Some(n) = threads {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("configure global thread pool");
    }
    if service_workers > 0 {
        obs::set_service_workers(service_workers);
    }
    if trace_out.is_some() {
        obs::enable_tracing(trace_cap);
    }
    obs::set_progress(progress.unwrap_or_else(obs::progress_default));
    if which == "list" {
        for (name, _) in EXPERIMENTS {
            out(name);
        }
        return;
    }
    if scale_den.is_nan() || scale_den < 1.0 {
        eprintln!("error: --scale must be a denominator >= 1 (got {scale_den})");
        std::process::exit(2);
    }
    let selected: Vec<&Experiment> = if which == "all" {
        EXPERIMENTS.iter().collect()
    } else {
        match EXPERIMENTS.iter().find(|(n, _)| *n == which) {
            Some(e) => vec![e],
            None => {
                eprintln!("error: unknown experiment `{which}`\n");
                usage()
            }
        }
    };
    let scale = Scale {
        fraction: 1.0 / scale_den,
    };
    out(&format!(
        "# platform: GPU memory = 12GiB/{scale_den} = {} MiB (scaled Titan V), \
         sweep threads = {}\n",
        scale.gpu_bytes() >> 20,
        rayon::current_num_threads(),
    ));

    let total0 = Instant::now();
    let mut perf = Vec::with_capacity(selected.len());
    bench::experiments::take_sim_totals(); // reset the work accumulator
    metrics::phase::take(); // reset the service-phase accumulator
    for (name, f) in selected {
        let t0 = Instant::now();
        let artifact = f(scale);
        let wall = t0.elapsed().as_secs_f64();
        let (sim_faults, sim_warp_steps) = bench::experiments::take_sim_totals();
        let phase = metrics::phase::take();
        perf.push(ExperimentPerf {
            name: name.to_string(),
            wall_seconds: wall,
            sim_faults,
            sim_warp_steps,
            faults_per_sec: sim_faults as f64 / wall,
            warp_steps_per_sec: sim_warp_steps as f64 / wall,
            serial_front_ms: phase.serial_front_ns as f64 / 1e6,
            parallel_service_ms: phase.parallel_service_ns as f64 / 1e6,
            service_busy_ms: phase.service_busy_ns as f64 / 1e6,
            worker_utilisation: phase.utilisation(),
            plan_replans: phase.plan_replans,
            service_workers: phase.workers,
        });
        out(&artifact.table.render());
        for (file, contents) in &artifact.csvs {
            std::fs::create_dir_all(&out_dir).expect("create output dir");
            let path = out_dir.join(file);
            std::fs::write(&path, contents).expect("write artifact");
            out(&format!("  wrote {}", path.display()));
        }
        if json {
            std::fs::create_dir_all(&out_dir).expect("create output dir");
            let path = out_dir.join(format!("{name}.json"));
            let body = serde_json::to_string_pretty(&artifact.table).expect("serialize table");
            std::fs::write(&path, body).expect("write json");
            out(&format!("  wrote {}", path.display()));
        }
        out(&format!("  [{name} regenerated in {wall:.1}s]\n"));
    }
    if let Some(trace_path) = &trace_out {
        let points = obs::take_points();
        // Flamegraph-style rollup across every traced run: merge the
        // per-point span traces, then rank phases by total sim-time.
        let mut agg = metrics::SpanTrace::default();
        let mut fault_events = 0u64;
        let mut fault_drops = 0u64;
        for p in &points {
            agg.events.extend_from_slice(&p.spans.events);
            agg.dropped += p.spans.dropped;
            agg.dropped_time = agg.dropped_time + p.spans.dropped_time;
            fault_events += p.faults.len() as u64;
            fault_drops += p.fault_drops;
        }
        out(&format!(
            "# trace: {} run(s), {} span events, {} fault events{}",
            points.len(),
            agg.events.len(),
            fault_events,
            if fault_drops > 0 {
                format!(" ({fault_drops} fault events dropped at capacity)")
            } else {
                String::new()
            }
        ));
        out(&chrome::flame_text(&agg));
        let body = chrome::render(&points);
        if let Some(dir) = trace_path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create trace output dir");
        }
        std::fs::write(trace_path, &body).expect("write trace");
        out(&format!(
            "  wrote {} ({} KiB) — open in https://ui.perfetto.dev or chrome://tracing",
            trace_path.display(),
            body.len() / 1024,
        ));
    }
    if json {
        let report = PerfReport {
            scale_denominator: scale_den,
            threads: rayon::current_num_threads(),
            service_workers,
            experiments: perf,
            total_wall_seconds: total0.elapsed().as_secs_f64(),
        };
        std::fs::create_dir_all(&out_dir).expect("create output dir");
        let path = out_dir.join("BENCH_hotpaths.json");
        let body = serde_json::to_string_pretty(&report).expect("serialize perf report");
        std::fs::write(&path, body).expect("write perf report");
        out(&format!("  wrote {}", path.display()));
    }
}
