//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale <denominator>] [--out <dir>] [--json] [--threads <n>]
//!                    [--service-workers <n>] [--trace-out <file>] [--trace-cap <events>]
//!                    [--metrics-out <dir>] [--metrics-interval <sim-ns>]
//!                    [--progress|--no-progress]
//! repro all
//! repro list
//! repro check-trace <file>
//! repro bench-append <file> <name> <wall_seconds>
//! repro report <metrics-dir>
//! repro explain <metrics-dir>
//! repro explain --diff <metrics-dir-a> <metrics-dir-b>
//! repro regress <trend-file> [--threshold <frac>] [--min-runs <n>]
//! repro check-metrics <metrics-dir>
//! repro trend-import <trend-file> <bench-json> <experiment>
//! ```
//!
//! `--json` additionally writes each experiment's table as
//! `<out>/<experiment>.json` for downstream tooling, plus a
//! `<out>/BENCH_hotpaths.json` wall-time/throughput report (simulated
//! faults/sec and warp-steps/sec per experiment). The report is rewritten
//! after *every* experiment, so a partial `repro all` run still leaves the
//! completed experiments' telemetry on disk.
//!
//! `--metrics-out <dir>` samples every run's driver counters on a
//! simulated-time grid (`--metrics-interval`, default 500 µs of sim time;
//! the bounded sample buffer compacts in place, doubling the interval,
//! rather than dropping the tail). Per experiment it writes one sample CSV
//! per sweep point plus `metrics.prom`, a Prometheus text exposition of
//! the end-of-run totals labelled by workload/ratio/policy. Sampling is
//! driven by the virtual clock, so the streams are bit-identical for any
//! `--threads`/`--service-workers` value. `repro report <dir>` re-renders
//! the CSVs as per-run cost decompositions (Figs. 8–10 shapes);
//! `repro check-metrics <dir>` re-validates every artefact. `repro
//! regress <trend-file>` compares the newest `ci_trend` entry of each
//! series against the median of its history and exits nonzero on a
//! regression beyond `--threshold` (default 20%); `repro trend-import`
//! appends one experiment's perf record from a `BENCH_hotpaths.json` to
//! the trend file, which is how the nightly job grows the baseline.
//!
//! `repro explain <metrics-dir>` renders the fault-provenance
//! decomposition from the same artefacts: every driver-observed fault
//! attributed to its root cause (cold first touch, refault of an evicted
//! page split by whether it had been used, prefetch hit, replay
//! duplicate), migrated bytes by origin, the evict-before-use rate, and
//! the top offending VABlocks (`offenders.tsv`). The attribution columns
//! must partition the counter columns exactly — a mismatch exits 1, which
//! is what lets CI gate on it. `repro explain --diff A B` aggregates two
//! dirs and prints per-cause deltas (e.g. the same sweep with prefetch on
//! vs off, making the prefetch-eviction antagonism directly visible).
//!
//! `--trace-out trace.json` records batch-lifecycle spans and per-page
//! fault events during every sweep and writes a combined
//! Chrome-trace/Perfetto JSON file — load it at <https://ui.perfetto.dev>
//! or `chrome://tracing`. A flamegraph-style per-phase summary is printed
//! after the runs. `--trace-cap` bounds the per-run span buffer (default
//! 65536 events; dropped events are counted, and dropped leaf *time*
//! stays accounted per category). `repro check-trace <file>` re-validates
//! an exported file against the trace-event-format invariants and the
//! span-vs-timers reconciliation; `repro bench-append` appends one
//! `{name, wall_seconds}` entry to the `ci_trend` array of a
//! BENCH_hotpaths-style JSON file (the CI perf trend).
//!
//! A live progress line (points done, faults/sec, ETA) is written to
//! stderr while sweeps run — on by default when stderr is a terminal;
//! force with `--progress` / `--no-progress`.
//!
//! Experiments: fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 table1
//! table2, the §VI ablations (ablation_replay ablation_threshold
//! ablation_granularity ablation_eviction ablation_batch_size
//! ablation_thrash), and the extension analyses (extra_warm_start
//! extra_batch_composition extra_prefetch_waste).
//!
//! `--scale N` sets GPU memory to 12 GB / N (default 16). CSV artifacts
//! (the scatter data behind Figures 7 and 8) are written to `--out`
//! (default `./repro-out`). `--threads N` sizes the rayon pool running
//! the sweeps; results are deterministic and identical for every N.
//! `--service-workers N` pins the intra-batch planning width inside each
//! simulation point (default: auto, resolved to the rayon pool size
//! before any sweep runs so the recorded telemetry is explicit);
//! simulated output — stdout, tables, traces — is bit-identical for
//! every value, and the per-phase wall-time split plus the sweep
//! scheduler's queue/steal stats land in `BENCH_hotpaths.json`.

use bench::experiments::{ablations, extras, figures, obs, tables, Artifact, Scale};
use metrics::chrome;
use serde::{Serialize, Value};
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// Print to stdout, exiting quietly on a closed pipe (`repro list | head`).
fn out(text: &str) {
    if writeln!(std::io::stdout(), "{text}").is_err() {
        std::process::exit(0);
    }
}

type Experiment = (&'static str, fn(Scale) -> Artifact);

const EXPERIMENTS: &[Experiment] = &[
    ("fig1", figures::fig1),
    ("fig3", figures::fig3),
    ("fig4", figures::fig4),
    ("fig5", figures::fig5),
    ("fig6", figures::fig6),
    ("fig7", figures::fig7),
    ("fig8", figures::fig8),
    ("fig9", figures::fig9),
    ("fig10", figures::fig10),
    ("table1", tables::table1),
    ("table2", tables::table2),
    ("ablation_replay", ablations::ablation_replay),
    ("ablation_threshold", ablations::ablation_threshold),
    ("ablation_granularity", ablations::ablation_granularity),
    ("ablation_eviction", ablations::ablation_eviction),
    ("ablation_batch_size", ablations::ablation_batch_size),
    ("ablation_prefetcher", ablations::ablation_prefetcher),
    ("ablation_thrash", extras::ablation_thrash),
    ("extra_warm_start", extras::extra_warm_start),
    ("extra_batch_composition", extras::extra_batch_composition),
    ("extra_prefetch_waste", extras::extra_prefetch_waste),
    ("extra_interconnect", extras::extra_interconnect),
];

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment|all|list> [--scale <denominator>] [--out <dir>] \
         [--json] [--threads <n>] [--service-workers <n>] [--trace-out <file>] \
         [--trace-cap <events>] [--metrics-out <dir>] [--metrics-interval <sim-ns>] \
         [--progress|--no-progress]\n\
         \x20      repro check-trace <file>\n\
         \x20      repro bench-append <file> <name> <wall_seconds>\n\
         \x20      repro report <metrics-dir>\n\
         \x20      repro explain <metrics-dir>\n\
         \x20      repro explain --diff <metrics-dir-a> <metrics-dir-b>\n\
         \x20      repro regress <trend-file> [--threshold <frac>] [--min-runs <n>]\n\
         \x20      repro check-metrics <metrics-dir>\n\
         \x20      repro trend-import <trend-file> <bench-json> <experiment>"
    );
    eprintln!("experiments:");
    for (name, _) in EXPERIMENTS {
        eprintln!("  {name}");
    }
    std::process::exit(2);
}

/// `repro check-trace <file>`: parse an exported Chrome-trace file and
/// re-check every invariant the exporter promises (see
/// [`metrics::chrome::validate`]). Exits nonzero on any violation.
fn cmd_check_trace(path: &str) -> ! {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: read {path}: {e}");
            std::process::exit(1);
        }
    };
    match chrome::validate(&body) {
        Ok(stats) => {
            out(&format!(
                "{path}: OK — {} process(es), {} events ({} leaf spans, {} containers, \
                 {} instants), {} dropped",
                stats.processes,
                stats.events,
                stats.leaf_spans,
                stats.container_spans,
                stats.instants,
                stats.dropped,
            ));
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro bench-append <file> <name> <wall_seconds>`: append one
/// `{name, wall_seconds}` entry to the file's `ci_trend` array (created
/// if absent), preserving every other key. CI uses this to keep a
/// wall-time trend in `BENCH_hotpaths.json`.
fn cmd_bench_append(path: &str, name: &str, wall_seconds: f64) -> ! {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut root: Value = match serde_json::from_str(&body) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: parse {path}: {e}");
            std::process::exit(1);
        }
    };
    let entry = Value::Map(vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("wall_seconds".to_string(), Value::F64(wall_seconds)),
    ]);
    let Value::Map(keys) = &mut root else {
        eprintln!("error: {path}: top level is not a JSON object");
        std::process::exit(1);
    };
    match keys.iter_mut().find(|(k, _)| k == "ci_trend") {
        Some((_, Value::Seq(trend))) => trend.push(entry),
        Some((_, other)) => {
            *other = Value::Seq(vec![entry]);
        }
        None => keys.push(("ci_trend".to_string(), Value::Seq(vec![entry]))),
    }
    let rendered = serde_json::to_string_pretty(&root).expect("re-serialize trend file");
    if let Err(e) = std::fs::write(path, rendered) {
        eprintln!("error: write {path}: {e}");
        std::process::exit(1);
    }
    out(&format!("{path}: ci_trend += {{{name}, {wall_seconds:.3}s}}"));
    std::process::exit(0);
}

/// Recursively collect files under `dir` with the given extension,
/// sorted by path for deterministic output.
fn walk_files(dir: &std::path::Path, ext: &str) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == ext) {
                found.push(path);
            }
        }
    }
    found.sort();
    found
}

/// `repro report <metrics-dir>`: re-read every sample CSV a
/// `--metrics-out` run wrote and render the per-run cost decompositions.
fn cmd_report(dir: &str) -> ! {
    let root = PathBuf::from(dir);
    let csvs = walk_files(&root, "csv");
    if csvs.is_empty() {
        eprintln!("error: no sample CSVs under {dir} — run with --metrics-out first");
        std::process::exit(1);
    }
    let mut files = Vec::with_capacity(csvs.len());
    for path in &csvs {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: read {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        let name = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .with_extension("")
            .display()
            .to_string();
        files.push((name, text));
    }
    match bench::metricsio::render_report(&files, 20) {
        Ok(text) => {
            out(&text);
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro check-metrics <metrics-dir>`: re-validate every metrics
/// artefact a `--metrics-out` run wrote — sample CSVs against the column
/// schema/monotonicity invariants, expositions against the Prometheus
/// text format. Exits nonzero on any violation.
fn cmd_check_metrics(dir: &str) -> ! {
    let root = PathBuf::from(dir);
    let csvs = walk_files(&root, "csv");
    let proms = walk_files(&root, "prom");
    if csvs.is_empty() && proms.is_empty() {
        eprintln!("error: no metrics artefacts under {dir}");
        std::process::exit(1);
    }
    let mut failures = 0usize;
    let mut samples = 0usize;
    for path in &csvs {
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| metrics::timeseries::validate_csv(&t))
        {
            Ok(stats) => samples += stats.rows,
            Err(e) => {
                eprintln!("FAIL {}: {e}", path.display());
                failures += 1;
            }
        }
    }
    let mut series = 0usize;
    for path in &proms {
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| metrics::exposition::validate(&t))
        {
            Ok(stats) => series += stats.samples,
            Err(e) => {
                eprintln!("FAIL {}: {e}", path.display());
                failures += 1;
            }
        }
    }
    out(&format!(
        "{dir}: {} sample CSV(s) ({samples} samples), {} exposition(s) ({series} series), \
         {failures} failure(s)",
        csvs.len(),
        proms.len(),
    ));
    std::process::exit(if failures == 0 { 0 } else { 1 });
}

/// Read a metrics dir's sample CSVs as `(point-name, text)` blobs plus
/// the merged offender tables, exiting on I/O errors. Shared by
/// `repro explain` and `repro explain --diff`.
fn read_metrics_dir(dir: &str) -> (Vec<(String, String)>, Option<String>) {
    let root = PathBuf::from(dir);
    let csvs = walk_files(&root, "csv");
    if csvs.is_empty() {
        eprintln!("error: no sample CSVs under {dir} — run with --metrics-out first");
        std::process::exit(1);
    }
    let mut files = Vec::with_capacity(csvs.len());
    for path in &csvs {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: read {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        let name = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .with_extension("")
            .display()
            .to_string();
        files.push((name, text));
    }
    // Merge every experiment's offenders.tsv into one table (first header
    // kept, later headers dropped). Older artefact dirs have none — the
    // fault decomposition still renders.
    let mut offenders: Option<String> = None;
    for path in walk_files(&root, "tsv") {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        match &mut offenders {
            None => offenders = Some(text),
            Some(merged) => merged.extend(text.lines().skip(1).map(|l| format!("{l}\n"))),
        }
    }
    (files, offenders)
}

/// `repro explain <metrics-dir>`: render the per-fault root-cause
/// decomposition (faults by cause, migrated bytes by origin, top
/// offending VABlocks) from a `--metrics-out` dir's artefacts alone.
/// `repro explain --diff <dir-a> <dir-b>` renders the cross-run
/// attribution diff instead. Either form exits 1 when a point's
/// attribution columns fail to reconcile with its counter columns.
fn cmd_explain(args: &[String]) -> ! {
    let result = if args.first().map(String::as_str) == Some("--diff") {
        let (a, b) = match (args.get(1), args.get(2)) {
            (Some(a), Some(b)) => (a, b),
            _ => usage(),
        };
        let (fa, _) = read_metrics_dir(a);
        let (fb, _) = read_metrics_dir(b);
        bench::metricsio::render_explain_diff(a, &fa, b, &fb)
    } else {
        let dir = args.first().map(String::as_str).unwrap_or_else(|| usage());
        let (files, offenders) = read_metrics_dir(dir);
        bench::metricsio::render_explain(&files, offenders.as_deref())
    };
    match result {
        Ok(text) => {
            out(&text);
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro regress <trend-file>`: gate on the `ci_trend` perf history.
/// Exits 1 when any headline metric of any series regressed beyond the
/// threshold, 2 on unusable input, 0 otherwise.
fn cmd_regress(path: &str, threshold: f64, min_runs: usize) -> ! {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: read {path}: {e}");
            std::process::exit(2);
        }
    };
    let root: Value = match serde_json::from_str(&body) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: parse {path}: {e}");
            std::process::exit(2);
        }
    };
    let findings = match bench::metricsio::evaluate_trend(&root, threshold, min_runs) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        }
    };
    out(&bench::metricsio::render_findings(&findings, threshold));
    let regressed: Vec<_> = findings.iter().filter(|f| f.regressed).collect();
    if regressed.is_empty() {
        out("regress: OK");
        std::process::exit(0);
    }
    for f in &regressed {
        eprintln!(
            "regress: {}.{} went from {:.4} (median of {} runs) to {:.4} ({:+.1}%)",
            f.name,
            f.metric,
            f.baseline,
            f.history,
            f.current,
            f.delta_frac * 100.0
        );
    }
    std::process::exit(1);
}

/// `repro trend-import <trend-file> <bench-json> <experiment>`: copy one
/// named perf record out of a `BENCH_hotpaths.json` report — an
/// `experiments` entry from `repro --json`, or a `bench-append`ed
/// wall-time series — into the trend file's `ci_trend` array (the file
/// is created when absent). This is how the nightly job appends a
/// baseline entry without jq.
fn cmd_trend_import(trend_path: &str, bench_path: &str, experiment: &str) -> ! {
    let bench_body = match std::fs::read_to_string(bench_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: read {bench_path}: {e}");
            std::process::exit(1);
        }
    };
    let bench_root: Value = match serde_json::from_str(&bench_body) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: parse {bench_path}: {e}");
            std::process::exit(1);
        }
    };
    let Value::Map(bench_keys) = &bench_root else {
        eprintln!("error: {bench_path}: top level is not a JSON object");
        std::process::exit(1);
    };
    let find_named = |entries: &[Value]| -> Option<Vec<(String, Value)>> {
        entries.iter().rev().find_map(|e| match e {
            Value::Map(m)
                if m.iter()
                    .any(|(k, v)| k == "name" && *v == Value::Str(experiment.to_string())) =>
            {
                Some(m.clone())
            }
            _ => None,
        })
    };
    // Experiments written by `repro --json` carry the full perf record;
    // `bench-append` series (traced wall times) live in the report's own
    // `ci_trend` array with just name + wall_seconds. Accept either, so
    // the nightly can gate every series it records. `rev()` takes the
    // newest entry when a bench-append series repeats within one run.
    let record = bench_keys
        .iter()
        .find(|(k, _)| k == "experiments")
        .and_then(|(_, v)| match v {
            Value::Seq(entries) => find_named(entries),
            _ => None,
        })
        .or_else(|| {
            bench_keys
                .iter()
                .find(|(k, _)| k == "ci_trend")
                .and_then(|(_, v)| match v {
                    Value::Seq(entries) => find_named(entries),
                    _ => None,
                })
        });
    let Some(record) = record else {
        eprintln!("error: {bench_path}: no experiment or ci_trend entry named `{experiment}`");
        std::process::exit(1);
    };
    // The headline series the regress gate understands, plus the name.
    let keep = [
        "name",
        "wall_seconds",
        "faults_per_sec",
        "evictions_per_fault",
        "coverage_pct",
        "max_straggler_ms",
    ];
    let entry = Value::Map(
        record
            .iter()
            .filter(|(k, _)| keep.contains(&k.as_str()))
            .cloned()
            .collect(),
    );
    let trend_body = std::fs::read_to_string(trend_path).unwrap_or_else(|_| "{}".to_string());
    let mut trend_root: Value = match serde_json::from_str(&trend_body) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: parse {trend_path}: {e}");
            std::process::exit(1);
        }
    };
    let Value::Map(trend_keys) = &mut trend_root else {
        eprintln!("error: {trend_path}: top level is not a JSON object");
        std::process::exit(1);
    };
    match trend_keys.iter_mut().find(|(k, _)| k == "ci_trend") {
        Some((_, Value::Seq(trend))) => trend.push(entry),
        Some((_, other)) => *other = Value::Seq(vec![entry]),
        None => trend_keys.push(("ci_trend".to_string(), Value::Seq(vec![entry]))),
    }
    let rendered = serde_json::to_string_pretty(&trend_root).expect("re-serialize trend file");
    if let Err(e) = std::fs::write(trend_path, rendered) {
        eprintln!("error: write {trend_path}: {e}");
        std::process::exit(1);
    }
    out(&format!("{trend_path}: ci_trend += {experiment} perf record"));
    std::process::exit(0);
}

/// One experiment's row in the `BENCH_hotpaths.json` throughput report.
#[derive(Serialize, Clone)]
struct ExperimentPerf {
    name: String,
    wall_seconds: f64,
    /// Simulated faults the driver fetched across the experiment's sweeps.
    sim_faults: u64,
    /// Completed GPU warp-steps across the same sweeps.
    sim_warp_steps: u64,
    faults_per_sec: f64,
    warp_steps_per_sec: f64,
    /// Pages evicted per driver-observed fault across the sweeps — the
    /// paper's thrash headline, gated by `repro regress`.
    evictions_per_fault: f64,
    /// Prefetched share of all H2D page migrations, percent — also gated.
    coverage_pct: f64,
    /// Host wall time the drivers spent in the serial front half of batch
    /// service (fetch/sort, replay policy, ordered commit).
    serial_front_ms: f64,
    /// Host wall time on the planning phase's critical path.
    parallel_service_ms: f64,
    /// Planning work summed over all participants (≥ `parallel_service_ms`
    /// when the pool scales).
    service_busy_ms: f64,
    /// `busy / (wall × workers)` — effective planner utilisation.
    worker_utilisation: f64,
    /// Pooled plans recomputed serially at commit after an intra-batch
    /// eviction invalidated the batch-start snapshot (0 on the fused
    /// serial path, which always plans against current state).
    plan_replans: u64,
    /// Service-planning workers the experiment's drivers ran with.
    service_workers: u64,
    /// Sweep points executed across the experiment's sweeps.
    sweep_points: u64,
    /// Points executed by a worker they were not dealt to — the
    /// work-stealing scheduler's rebalancing volume (0 at one thread).
    points_stolen: u64,
    /// Wall milliseconds of the single longest sweep point — the
    /// straggler that lower-bounds sweep wall time at any thread count.
    max_straggler_ms: f64,
}

/// The `BENCH_hotpaths.json` report `--json` writes alongside the tables.
#[derive(Serialize)]
struct PerfReport {
    scale_denominator: f64,
    threads: usize,
    /// Resolved `--service-workers` (auto resolves to the sweep thread
    /// count before any sweep runs; never 0).
    service_workers: usize,
    experiments: Vec<ExperimentPerf>,
    total_wall_seconds: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    match args[0].as_str() {
        "check-trace" => cmd_check_trace(args.get(1).map(String::as_str).unwrap_or_else(|| usage())),
        "bench-append" => {
            let file = args.get(1).unwrap_or_else(|| usage());
            let name = args.get(2).unwrap_or_else(|| usage());
            let wall: f64 = args
                .get(3)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| usage());
            cmd_bench_append(file, name, wall);
        }
        "report" => cmd_report(args.get(1).map(String::as_str).unwrap_or_else(|| usage())),
        "explain" => cmd_explain(&args[1..]),
        "check-metrics" => {
            cmd_check_metrics(args.get(1).map(String::as_str).unwrap_or_else(|| usage()))
        }
        "regress" => {
            let file = args.get(1).unwrap_or_else(|| usage());
            let mut threshold = 0.20f64;
            let mut min_runs = 2usize;
            let mut j = 2;
            while j < args.len() {
                match args[j].as_str() {
                    "--threshold" => {
                        j += 1;
                        threshold = args
                            .get(j)
                            .and_then(|s| s.parse().ok())
                            .filter(|t: &f64| t.is_finite() && *t > 0.0)
                            .unwrap_or_else(|| usage());
                    }
                    "--min-runs" => {
                        j += 1;
                        min_runs = args
                            .get(j)
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| usage());
                    }
                    _ => usage(),
                }
                j += 1;
            }
            cmd_regress(file, threshold, min_runs);
        }
        "trend-import" => {
            let trend = args.get(1).unwrap_or_else(|| usage());
            let bench_json = args.get(2).unwrap_or_else(|| usage());
            let experiment = args.get(3).unwrap_or_else(|| usage());
            cmd_trend_import(trend, bench_json, experiment);
        }
        _ => {}
    }
    let mut which = String::new();
    let mut scale_den = 16.0f64;
    let mut out_dir = PathBuf::from("repro-out");
    let mut json = false;
    let mut threads: Option<usize> = None;
    let mut service_workers = 0usize;
    let mut trace_out: Option<PathBuf> = None;
    let mut trace_cap = metrics::DEFAULT_SPAN_CAPACITY;
    let mut metrics_out: Option<PathBuf> = None;
    let mut metrics_interval = metrics::DEFAULT_SAMPLE_INTERVAL_NS;
    let mut progress: Option<bool> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--trace-out" => {
                i += 1;
                trace_out = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--trace-cap" => {
                i += 1;
                trace_cap = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--metrics-out" => {
                i += 1;
                metrics_out = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--metrics-interval" => {
                i += 1;
                let ns: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                if ns == 0 {
                    eprintln!("error: --metrics-interval must be >= 1 sim-ns");
                    std::process::exit(2);
                }
                metrics_interval = ns;
            }
            "--progress" => progress = Some(true),
            "--no-progress" => progress = Some(false),
            "--scale" => {
                i += 1;
                scale_den = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                if n == 0 {
                    eprintln!("error: --threads must be >= 1");
                    std::process::exit(2);
                }
                threads = Some(n);
            }
            "--service-workers" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                if n == 0 {
                    eprintln!("error: --service-workers must be >= 1");
                    std::process::exit(2);
                }
                service_workers = n;
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).unwrap_or_else(|| usage()));
            }
            name if which.is_empty() && !name.starts_with('-') => which = name.to_string(),
            _ => usage(),
        }
        i += 1;
    }
    if let Some(n) = threads {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("configure global thread pool");
    }
    // Resolve `--service-workers` auto (0) to the sweep thread count
    // *here*, explicitly: every sweep point's driver config carries the
    // resolved number, so the phase telemetry's worker split never
    // silently inherits the ambient rayon pool size downstream.
    let resolved_workers = if service_workers > 0 {
        service_workers
    } else {
        rayon::current_num_threads().max(1)
    };
    obs::set_service_workers(resolved_workers);
    if trace_out.is_some() {
        obs::enable_tracing(trace_cap);
    }
    if metrics_out.is_some() {
        obs::enable_metrics(metrics_interval, metrics::DEFAULT_SAMPLE_CAPACITY);
    }
    obs::set_progress(progress.unwrap_or_else(obs::progress_default));
    if which == "list" {
        for (name, _) in EXPERIMENTS {
            out(name);
        }
        return;
    }
    if scale_den.is_nan() || scale_den < 1.0 {
        eprintln!("error: --scale must be a denominator >= 1 (got {scale_den})");
        std::process::exit(2);
    }
    let selected: Vec<&Experiment> = if which == "all" {
        EXPERIMENTS.iter().collect()
    } else {
        match EXPERIMENTS.iter().find(|(n, _)| *n == which) {
            Some(e) => vec![e],
            None => {
                eprintln!("error: unknown experiment `{which}`\n");
                usage()
            }
        }
    };
    let scale = Scale {
        fraction: 1.0 / scale_den,
    };
    out(&format!(
        "# platform: GPU memory = 12GiB/{scale_den} = {} MiB (scaled Titan V), \
         sweep threads = {}\n",
        scale.gpu_bytes() >> 20,
        rayon::current_num_threads(),
    ));

    let total0 = Instant::now();
    let mut perf = Vec::with_capacity(selected.len());
    bench::experiments::take_sim_totals(); // reset the work accumulator
    metrics::phase::take(); // reset the service-phase accumulator
    metrics::sched::take(); // reset the sweep-scheduler accumulator
    for (name, f) in selected {
        let t0 = Instant::now();
        let artifact = f(scale);
        let wall = t0.elapsed().as_secs_f64();
        let totals = bench::experiments::take_sim_totals();
        let phase = metrics::phase::take();
        let sched = metrics::sched::take();
        perf.push(ExperimentPerf {
            name: name.to_string(),
            wall_seconds: wall,
            sim_faults: totals.faults,
            sim_warp_steps: totals.warp_steps,
            faults_per_sec: totals.faults as f64 / wall,
            warp_steps_per_sec: totals.warp_steps as f64 / wall,
            evictions_per_fault: totals.evictions_per_fault(),
            coverage_pct: totals.coverage_pct(),
            serial_front_ms: phase.serial_front_ns as f64 / 1e6,
            parallel_service_ms: phase.parallel_service_ns as f64 / 1e6,
            service_busy_ms: phase.service_busy_ns as f64 / 1e6,
            worker_utilisation: phase.utilisation(),
            plan_replans: phase.plan_replans,
            service_workers: phase.workers,
            sweep_points: sched.points,
            points_stolen: sched.stolen,
            max_straggler_ms: sched.max_point_wall_ns as f64 / 1e6,
        });
        out(&artifact.table.render());
        for (file, contents) in &artifact.csvs {
            std::fs::create_dir_all(&out_dir).expect("create output dir");
            let path = out_dir.join(file);
            std::fs::write(&path, contents).expect("write artifact");
            out(&format!("  wrote {}", path.display()));
        }
        if json {
            std::fs::create_dir_all(&out_dir).expect("create output dir");
            let path = out_dir.join(format!("{name}.json"));
            let body = serde_json::to_string_pretty(&artifact.table).expect("serialize table");
            std::fs::write(&path, body).expect("write json");
            out(&format!("  wrote {}", path.display()));
            // Flush the perf report incrementally: a partial `repro all`
            // (interrupted, or killed by the nightly timeout) still
            // leaves every completed experiment's host-phase telemetry
            // on disk instead of reporting it only at process exit.
            let path = write_perf_report(&out_dir, scale_den, resolved_workers, &perf, total0);
            out(&format!("  wrote {}", path.display()));
        }
        if let Some(dir) = &metrics_out {
            let points = obs::take_metrics_points();
            match bench::metricsio::write_experiment(dir, name, &points) {
                Ok(written) => {
                    out(&format!(
                        "  wrote {} metrics file(s) under {}",
                        written.len(),
                        dir.join(name).display()
                    ));
                }
                Err(e) => {
                    eprintln!("error: write metrics under {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
        out(&format!("  [{name} regenerated in {wall:.1}s]\n"));
    }
    if let Some(trace_path) = &trace_out {
        let points = obs::take_points();
        // Flamegraph-style rollup across every traced run: merge the
        // per-point span traces, then rank phases by total sim-time.
        let mut agg = metrics::SpanTrace::default();
        let mut fault_events = 0u64;
        let mut fault_drops = 0u64;
        for p in &points {
            agg.events.extend_from_slice(&p.spans.events);
            agg.dropped += p.spans.dropped;
            agg.dropped_time = agg.dropped_time + p.spans.dropped_time;
            fault_events += p.faults.len() as u64;
            fault_drops += p.fault_drops;
        }
        out(&format!(
            "# trace: {} run(s), {} span events, {} fault events{}",
            points.len(),
            agg.events.len(),
            fault_events,
            if fault_drops > 0 {
                format!(" ({fault_drops} fault events dropped at capacity)")
            } else {
                String::new()
            }
        ));
        out(&chrome::flame_text(&agg));
        let body = chrome::render(&points);
        if let Some(dir) = trace_path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create trace output dir");
        }
        std::fs::write(trace_path, &body).expect("write trace");
        out(&format!(
            "  wrote {} ({} KiB) — open in https://ui.perfetto.dev or chrome://tracing",
            trace_path.display(),
            body.len() / 1024,
        ));
    }
    if json {
        // Final rewrite with the end-to-end wall time (the incremental
        // flushes above carried a still-growing total).
        let path = write_perf_report(&out_dir, scale_den, resolved_workers, &perf, total0);
        out(&format!("  wrote {}", path.display()));
    }
}

/// Serialize the perf report collected so far to
/// `<out>/BENCH_hotpaths.json`, returning the written path. Called after
/// every experiment (and once more at exit), so the file always reflects
/// the completed experiments.
fn write_perf_report(
    out_dir: &std::path::Path,
    scale_den: f64,
    service_workers: usize,
    perf: &[ExperimentPerf],
    total0: Instant,
) -> PathBuf {
    let report = PerfReport {
        scale_denominator: scale_den,
        threads: rayon::current_num_threads(),
        service_workers,
        experiments: perf.to_vec(),
        total_wall_seconds: total0.elapsed().as_secs_f64(),
    };
    std::fs::create_dir_all(out_dir).expect("create output dir");
    let path = out_dir.join("BENCH_hotpaths.json");
    let body = serde_json::to_string_pretty(&report).expect("serialize perf report");
    std::fs::write(&path, body).expect("write perf report");
    path
}
