//! # bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation. Each experiment is a plain function returning a
//! [`metrics::report::Table`] (plus CSV-able traces for the scatter
//! figures), shared by:
//!
//! * the `repro` binary — `repro <experiment>` prints the regenerated
//!   table/series, `repro all` regenerates everything;
//! * the Criterion benches in `benches/` — one group per table/figure.
//!
//! Experiments run on a geometrically scaled platform (default GPU memory
//! = 12 GB × `scale`) so the full suite completes on a laptop while
//! preserving the subscription *ratios* that determine the paper's
//! crossovers; see EXPERIMENTS.md for the paper-vs-measured record.

pub mod experiments;
pub mod metricsio;

pub use experiments::Scale;
