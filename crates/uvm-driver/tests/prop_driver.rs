//! Property-based tests for the UVM driver's data structures and
//! algorithms: the density tree against naive popcount recomputation, the
//! LRU against a reference model, PMA accounting invariants, prefetch
//! output laws, and batch-gather conservation.

use gpu_model::{
    AccessType, FaultBuffer, FaultBufferConfig, FaultEntry, GlobalPage, PageMask, VaBlockIdx,
};
use proptest::prelude::*;
use sim_engine::units::VABLOCK_SIZE;
use sim_engine::{CostModel, SimRng, SimTime};
use uvm_driver::prefetch::{compute_prefetch, upgrade_to_big_pages, DensityTree, ResolvedPrefetch};
use uvm_driver::{batch, LruList, ManagedSpace, Pma};

fn mask_from(indices: &[usize]) -> PageMask {
    let mut m = PageMask::EMPTY;
    for &i in indices {
        m.set(i);
    }
    m
}

// ---------- Density tree ----------

proptest! {
    #[test]
    fn tree_counts_match_naive_popcounts(idx in proptest::collection::vec(0usize..512, 0..300)) {
        let m = mask_from(&idx);
        let tree = DensityTree::from_mask(&m);
        for level in 0..=9usize {
            let len = 1usize << level;
            for node in 0..(512 >> level) {
                prop_assert_eq!(
                    tree.count(level, node) as usize,
                    m.count_range(node * len, len),
                    "level {} node {}", level, node
                );
            }
        }
    }

    #[test]
    fn region_for_returns_largest_qualifying_ancestor(
        idx in proptest::collection::vec(0usize..512, 1..300),
        leaf in 0usize..512,
        threshold in 1u8..=100,
    ) {
        // Ensure the leaf itself is faulted (occupied).
        let mut all = idx.clone();
        all.push(leaf);
        let m = mask_from(&all);
        let tree = DensityTree::from_mask(&m);
        let (lvl, node) = tree.region_for(leaf, threshold);
        // The chosen region contains the leaf.
        prop_assert!(DensityTree::leaves_of(lvl, node).contains(&leaf));
        // Any region beyond the (0, leaf) fallback strictly qualifies.
        if (lvl, node) != (0, leaf) {
            let count = tree.count(lvl, node) as u32;
            prop_assert!(count * 100 > threshold as u32 * (1u32 << lvl));
        }
        // No larger ancestor qualifies.
        let mut a = leaf >> (lvl + 1);
        for l in lvl + 1..=9 {
            let c = tree.count(l, a) as u32;
            prop_assert!(
                c * 100 <= threshold as u32 * (1u32 << l),
                "larger ancestor at level {} also qualifies", l
            );
            a >>= 1;
        }
    }

    #[test]
    fn saturate_equals_rebuild_from_filled_mask(
        idx in proptest::collection::vec(0usize..512, 0..300),
        level in 0usize..=9,
        node_seed in any::<u64>(),
    ) {
        let node = (node_seed as usize) % (512 >> level);
        let mut m = mask_from(&idx);
        let mut tree = DensityTree::from_mask(&m);
        tree.saturate(level, node);
        let range = DensityTree::leaves_of(level, node);
        m.set_range(range.start, range.end - range.start);
        prop_assert_eq!(tree, DensityTree::from_mask(&m));
    }

    #[test]
    fn incremental_adds_match_rebuild(
        chunks in proptest::collection::vec(
            proptest::collection::vec(0usize..512, 0..64), 0..6),
    ) {
        // Feed arbitrary page sets in as disjoint incremental updates
        // (each chunk minus everything already present), the way the
        // driver's commit path maintains its persistent trees.
        let mut tree = DensityTree::new_empty();
        let mut accumulated = PageMask::EMPTY;
        for chunk in &chunks {
            let added = mask_from(chunk).difference(&accumulated);
            tree.add_mask(&added);
            accumulated = accumulated.union(&added);
            prop_assert_eq!(&tree, &DensityTree::from_mask(&accumulated));
        }
        tree.clear();
        prop_assert_eq!(&tree, &DensityTree::new_empty());
        // Rebuild after clear (the eviction → refault cycle).
        tree.add_mask(&accumulated);
        prop_assert_eq!(&tree, &DensityTree::from_mask(&accumulated));
    }

    #[test]
    fn seeded_prefetch_matches_plain(
        resident_idx in proptest::collection::vec(0usize..512, 0..200),
        faulted_idx in proptest::collection::vec(0usize..512, 0..64),
        threshold in 1u8..=100,
        big_pages in any::<bool>(),
    ) {
        // Model the driver's state relations: faulted is valid and
        // non-resident; the persistent tree mirrors resident exactly.
        let valid = PageMask::FULL;
        let resident = mask_from(&resident_idx);
        let faulted = mask_from(&faulted_idx).difference(&resident);
        let tree = DensityTree::from_mask(&resident);
        let mut scratch = DensityTree::new_empty();
        let policy = ResolvedPrefetch::Density { threshold, big_pages };
        let plain = compute_prefetch(policy, &resident, &faulted, &valid);
        let seeded = uvm_driver::prefetch::compute_prefetch_seeded(
            policy, &resident, &faulted, &valid, &tree, &mut scratch,
        );
        prop_assert_eq!(plain, seeded);
    }
}

// ---------- Big-page upgrade ----------

proptest! {
    #[test]
    fn bigpage_upgrade_laws(idx in proptest::collection::vec(0usize..512, 0..128)) {
        let f = mask_from(&idx);
        let up = upgrade_to_big_pages(&f);
        // Superset of the faults.
        prop_assert!(f.difference(&up).is_empty());
        // Exactly the union of 16-page regions containing a fault.
        for bp in 0..32 {
            let has_fault = f.count_range(bp * 16, 16) > 0;
            prop_assert_eq!(up.count_range(bp * 16, 16), if has_fault { 16 } else { 0 });
        }
        // Idempotent.
        prop_assert_eq!(upgrade_to_big_pages(&up), up);
    }
}

// ---------- Prefetch output laws ----------

proptest! {
    #[test]
    fn prefetch_output_laws(
        resident in proptest::collection::vec(0usize..512, 0..128),
        faulted in proptest::collection::vec(0usize..512, 1..64),
        threshold in 1u8..=100,
        big_pages in any::<bool>(),
        valid_prefix in 64usize..=512,
    ) {
        let resident = mask_from(&resident);
        let mut valid = PageMask::EMPTY;
        for i in 0..valid_prefix {
            valid.set(i);
        }
        // Keep inputs consistent: faults on valid, non-resident pages.
        let faulted = mask_from(&faulted).intersect(&valid).difference(&resident);
        prop_assume!(!faulted.is_empty());
        let resident = resident.intersect(&valid);

        let policy = ResolvedPrefetch::Density { threshold, big_pages };
        let out = compute_prefetch(policy, &resident, &faulted, &valid);
        prop_assert!(out.intersect(&resident).is_empty(), "never re-fetches resident");
        prop_assert!(out.intersect(&faulted).is_empty(), "never includes the faults");
        prop_assert!(out.difference(&valid).is_empty(), "stays inside the allocation");
        // Threshold 100 with no big pages can never exceed 100% density.
        if threshold == 100 && !big_pages {
            prop_assert!(out.is_empty());
        }
    }

    #[test]
    fn lower_threshold_never_prefetches_less(
        faulted in proptest::collection::vec(0usize..512, 1..32),
        t_lo in 1u8..=50,
        t_hi in 51u8..=100,
    ) {
        let faulted = mask_from(&faulted);
        let lo = compute_prefetch(
            ResolvedPrefetch::Density { threshold: t_lo, big_pages: true },
            &PageMask::EMPTY,
            &faulted,
            &PageMask::FULL,
        );
        let hi = compute_prefetch(
            ResolvedPrefetch::Density { threshold: t_hi, big_pages: true },
            &PageMask::EMPTY,
            &faulted,
            &PageMask::FULL,
        );
        prop_assert!(hi.difference(&lo).is_empty(), "aggressive ⊇ conservative");
    }
}

// ---------- LRU vs reference model ----------

#[derive(Debug, Clone)]
enum LruOp {
    Touch(u64),
    PopLru,
    Remove(u64),
}

fn arb_ops(blocks: u64) -> impl Strategy<Value = Vec<LruOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0..blocks).prop_map(LruOp::Touch),
            Just(LruOp::PopLru),
            (0..blocks).prop_map(LruOp::Remove),
        ],
        0..200,
    )
}

proptest! {
    #[test]
    fn lru_matches_reference_model(ops in arb_ops(16)) {
        let mut lru = LruList::new(16);
        // Reference: Vec ordered MRU -> LRU.
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                LruOp::Touch(b) => {
                    lru.touch(VaBlockIdx(b));
                    model.retain(|&x| x != b);
                    model.insert(0, b);
                }
                LruOp::PopLru => {
                    let got = lru.pop_lru().map(|v| v.0);
                    let want = model.pop();
                    prop_assert_eq!(got, want);
                }
                LruOp::Remove(b) => {
                    let got = lru.remove(VaBlockIdx(b));
                    let want = model.contains(&b);
                    model.retain(|&x| x != b);
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(lru.len(), model.len());
            let order: Vec<u64> = lru.iter_mru().map(|v| v.0).collect();
            prop_assert_eq!(&order, &model);
            prop_assert_eq!(lru.peek_lru().map(|v| v.0), model.last().copied());
        }
    }
}

// ---------- PMA accounting ----------

proptest! {
    #[test]
    fn pma_invariants_hold_under_alloc_free(
        ops in proptest::collection::vec(any::<bool>(), 1..200),
        capacity_blocks in 1u64..64,
    ) {
        let capacity = capacity_blocks * VABLOCK_SIZE;
        let mut pma = Pma::new(capacity);
        let cost = CostModel::default();
        let mut rng = SimRng::from_seed(11);
        let mut live = 0u64;
        for alloc in ops {
            if alloc {
                match pma.alloc(VABLOCK_SIZE, &cost, &mut rng) {
                    Ok(_) => live += 1,
                    Err(e) => {
                        prop_assert!(live * VABLOCK_SIZE + VABLOCK_SIZE > capacity);
                        prop_assert_eq!(e.available, capacity - live * VABLOCK_SIZE);
                    }
                }
            } else if live > 0 {
                pma.free(VABLOCK_SIZE);
                live -= 1;
            }
            prop_assert_eq!(pma.in_use(), live * VABLOCK_SIZE);
            prop_assert!(pma.in_use() <= pma.reserved());
            prop_assert!(pma.reserved() <= pma.capacity());
        }
    }
}

// ---------- Batch gather conservation ----------

proptest! {
    #[test]
    fn gather_conserves_and_dedups(
        pages in proptest::collection::vec(0u64..(8 * 512), 0..300),
        batch_size in 1usize..300,
    ) {
        let mut space = ManagedSpace::new();
        space.alloc(8 * VABLOCK_SIZE, "data");
        let mut buf = FaultBuffer::new(FaultBufferConfig {
            capacity: 4096,
            ready_delay: sim_engine::SimDuration::ZERO,
        });
        for (i, &p) in pages.iter().enumerate() {
            buf.push(FaultEntry {
                page: GlobalPage(p),
                access: if i % 3 == 0 { AccessType::Write } else { AccessType::Read },
                timestamp: SimTime::ZERO,
                utlb: (i % 4) as u32,
            });
        }
        let b = batch::gather(&mut buf, batch_size, SimTime::ZERO, &mut space);
        // Conservation: every fetched entry is a new page or a duplicate.
        prop_assert_eq!(b.fetched, pages.len().min(batch_size) as u64);
        prop_assert_eq!(b.new_fault_pages() + b.duplicates, b.fetched);
        // Groups sorted, masks disjoint across groups, writes ⊆ faults.
        let mut last = None;
        for g in &b.groups {
            if let Some(prev) = last {
                prop_assert!(g.block > prev, "groups ascend");
            }
            last = Some(g.block);
            prop_assert!(!g.fault_mask.is_empty());
            prop_assert!(g.write_mask.difference(&g.fault_mask).is_empty());
        }
        // The fetched prefix of distinct pages matches the group masks.
        let distinct: std::collections::BTreeSet<u64> = pages
            .iter()
            .take(batch_size)
            .copied()
            .collect();
        let in_groups: u64 = b.groups.iter().map(|g| g.fault_mask.count() as u64).sum();
        prop_assert_eq!(in_groups as usize, distinct.len());
    }
}
