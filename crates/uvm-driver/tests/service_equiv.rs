//! Property: the service-worker count is simulation-invisible. For
//! arbitrary multi-batch fault sequences — including memory pressure that
//! forces evictions and stale-plan replans — a driver run at
//! `service_workers = 1` and one at `= 4` must produce identical timers,
//! counters, pass results, replay decisions and final residency. Only
//! host wall time may differ.

use gpu_model::{AccessType, FaultBuffer, FaultBufferConfig, FaultEntry, GlobalPage, VaBlockIdx};
use proptest::prelude::*;
use sim_engine::units::VABLOCK_SIZE;
use sim_engine::{CostModel, SimRng, SimTime};
use uvm_driver::{DriverConfig, ManagedSpace, PassResult, UvmDriver};

const BLOCKS: u64 = 12;

/// One generated fault: (block, page offset, write?).
type Fault = (u64, usize, bool);

/// Decode a raw seed into a fault (the vendored proptest has no tuple
/// strategies, so batches are vectors of u64 seeds).
fn decode(seed: u64) -> Fault {
    (seed % BLOCKS, ((seed >> 8) % 512) as usize, seed & 1 == 1)
}

fn arb_batches() -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u64>(), 1..40), 1..12)
}

type DriverOutput = (
    Vec<PassResult>,
    metrics::Timers,
    metrics::Counters,
    Vec<u64>,
    metrics::Attribution,
    Vec<metrics::Offender>,
);

fn run_driver(
    batches: &[Vec<u64>],
    workers: usize,
    gpu_blocks: u64,
    prefetch_on: bool,
) -> DriverOutput {
    let cfg = DriverConfig {
        gpu_memory_bytes: gpu_blocks * VABLOCK_SIZE,
        service_workers: workers,
        prefetch: if prefetch_on {
            uvm_driver::PrefetchPolicy::default()
        } else {
            uvm_driver::PrefetchPolicy::Disabled
        },
        ..DriverConfig::default()
    };
    let mut space = ManagedSpace::new();
    space.alloc(BLOCKS * VABLOCK_SIZE, "equiv");
    let mut driver = UvmDriver::new(cfg, CostModel::default(), space, SimRng::from_seed(11));
    let mut buffer = FaultBuffer::new(FaultBufferConfig::default());
    let mut clock = SimTime::ZERO;
    let mut results = Vec::new();
    for (round, batch) in batches.iter().enumerate() {
        for (block, off, write) in batch.iter().map(|&s| decode(s)) {
            buffer.push(FaultEntry {
                page: GlobalPage(block * 512 + off as u64),
                access: if write {
                    AccessType::Write
                } else {
                    AccessType::Read
                },
                timestamp: SimTime::ZERO,
                utlb: (round % 4) as u32,
            });
        }
        let r = driver.process_pass(&mut buffer, clock);
        clock += r.time;
        results.push(r);
    }
    let residency: Vec<u64> = (0..BLOCKS)
        .map(|b| {
            let space = driver.space();
            space.resident(VaBlockIdx(b)).count() as u64
                + ((space.eviction_count(VaBlockIdx(b)) as u64) << 32)
        })
        .collect();
    (
        results,
        *driver.timers(),
        *driver.counters(),
        residency,
        *driver.attribution(),
        driver.top_offenders(8),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn worker_count_is_simulation_invisible(
        batches in arb_batches(),
        gpu_blocks in 2u64..=BLOCKS,
        prefetch_on in any::<bool>(),
    ) {
        let serial = run_driver(&batches, 1, gpu_blocks, prefetch_on);
        let parallel = run_driver(&batches, 4, gpu_blocks, prefetch_on);
        prop_assert_eq!(&serial.0, &parallel.0, "pass results diverged");
        prop_assert_eq!(&serial.1, &parallel.1, "timers diverged");
        prop_assert_eq!(&serial.2, &parallel.2, "counters diverged");
        prop_assert_eq!(&serial.3, &parallel.3, "residency diverged");
        prop_assert_eq!(&serial.4, &parallel.4, "attribution ledger diverged");
        prop_assert_eq!(&serial.5, &parallel.5, "offender ranking diverged");
    }
}
