//! Proof that steady-state batch pre-processing is allocation-free: after
//! one warm-up pass sizes the arena, `gather_into` must not touch the
//! heap again. A counting global allocator makes the claim checkable
//! instead of aspirational — if someone reintroduces a per-batch map or
//! a `collect()`, this test fails with the allocation count.

use gpu_model::{AccessType, FaultBuffer, FaultBufferConfig, FaultEntry, GlobalPage};
use sim_engine::{SimDuration, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use uvm_driver::batch::{gather_into, BatchArena};
use uvm_driver::ManagedSpace;

/// Passes allocations through to the system allocator, counting them.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// A full batch of faults shaped like the thrash steady state: many
/// VABlocks, unsorted arrival order, duplicates across µTLBs.
fn fill_buffer(buffer: &mut FaultBuffer, batch: u64) {
    for i in 0..256u64 {
        let page = (i * 193 + batch * 7) % 4096;
        buffer.push(FaultEntry {
            page: GlobalPage(page),
            access: if i % 3 == 0 {
                AccessType::Write
            } else {
                AccessType::Read
            },
            timestamp: SimTime::ZERO + SimDuration::from_nanos(batch * 1000 + i),
            utlb: (i % 80) as u32,
        });
    }
}

#[test]
fn steady_state_batch_preprocessing_does_not_allocate() {
    let mut space = ManagedSpace::new();
    space.alloc(4096 * 4096, "alloc-free");
    let mut buffer = FaultBuffer::new(FaultBufferConfig::default());
    let mut arena = BatchArena::default();

    // Warm-up: the first gathers size the arena's entry and group vectors.
    for batch in 0..4 {
        fill_buffer(&mut buffer, batch);
        gather_into(
            &mut buffer,
            256,
            SimTime::ZERO + SimDuration::from_millis(batch + 1),
            &mut space,
            &mut arena,
        );
        assert!(!arena.batch.groups.is_empty(), "warm-up produced no groups");
    }

    // Steady state: zero heap allocations over many batches. The
    // counter is process-global, so the libtest harness thread can leak
    // one-time lazy-init allocations into the window; retry a few
    // windows and accept the cleanest. A *per-batch* allocation in
    // `gather_into` repeats in every window and still fails.
    let mut cleanest = u64::MAX;
    for attempt in 0..10u64 {
        let before = ALLOCS.load(Ordering::Relaxed);
        for batch in 0..60 {
            fill_buffer(&mut buffer, 4 + attempt * 60 + batch);
            gather_into(
                &mut buffer,
                256,
                SimTime::ZERO + SimDuration::from_millis(batch + 1),
                &mut space,
                &mut arena,
            );
            assert!(!arena.batch.groups.is_empty());
        }
        let after = ALLOCS.load(Ordering::Relaxed);
        cleanest = cleanest.min(after - before);
        if cleanest == 0 {
            break;
        }
    }
    assert_eq!(
        cleanest, 0,
        "steady-state gather_into allocated {cleanest} times in every window"
    );
}

/// The same claim for the whole service path with the planning pool
/// engaged: once the arena, plan vector and per-worker scratch trees are
/// sized, a full pass — gather, parallel planning at 4 workers, ordered
/// commit with evictions — must not touch the heap.
#[test]
fn steady_state_parallel_service_does_not_allocate() {
    use sim_engine::units::VABLOCK_SIZE;
    use sim_engine::{CostModel, SimRng};
    use uvm_driver::{DriverConfig, UvmDriver};

    let cfg = DriverConfig {
        gpu_memory_bytes: 4 * VABLOCK_SIZE,
        service_workers: 4,
        ..DriverConfig::default()
    };
    let mut space = ManagedSpace::new();
    space.alloc(16 * VABLOCK_SIZE, "svc");
    let mut driver = UvmDriver::new(cfg, CostModel::default(), space, SimRng::from_seed(3));
    let mut buffer = FaultBuffer::new(FaultBufferConfig::default());
    let clock = SimTime::ZERO + SimDuration::from_millis(1);

    // 12 faulting blocks per pass: enough groups to engage the pool, and
    // 3× the GPU's capacity so evictions (and stale-plan replans) churn
    // every pass — the thrash steady state.
    let fill = |buffer: &mut FaultBuffer, round: u64| {
        for b in 0..12u64 {
            buffer.push(FaultEntry {
                page: GlobalPage(b * 512 + (round * 13) % 512),
                access: if b % 3 == 0 {
                    AccessType::Write
                } else {
                    AccessType::Read
                },
                timestamp: SimTime::ZERO,
                utlb: (b % 4) as u32,
            });
        }
    };

    for round in 0..16u64 {
        fill(&mut buffer, round);
        driver.process_pass(&mut buffer, clock);
    }

    let mut cleanest = u64::MAX;
    for attempt in 0..10u64 {
        let before = ALLOCS.load(Ordering::Relaxed);
        for round in 0..40u64 {
            fill(&mut buffer, 16 + attempt * 40 + round);
            let r = driver.process_pass(&mut buffer, clock);
            assert!(r.fetched > 0);
        }
        let after = ALLOCS.load(Ordering::Relaxed);
        cleanest = cleanest.min(after - before);
        if cleanest == 0 {
            break;
        }
    }
    assert_eq!(
        cleanest, 0,
        "steady-state parallel service allocated {cleanest} times in every window"
    );
    assert!(driver.counters().evictions > 0, "the scenario must thrash");
    // The provenance ledger rode along through every one of those passes
    // (fixed-size counters + preallocated per-block stats), so a thrashing
    // steady state proves the attribution path is allocation-free too —
    // and the ledger it built must be a real one: refaults observed and
    // every partition equation intact.
    let a = driver.attribution();
    assert!(
        a.refault_used_faults + a.refault_unused_faults > 0,
        "thrash must produce refaults"
    );
    a.reconcile(
        driver.counters(),
        driver.transfer_log().h2d_bytes,
        driver.transfer_log().d2h_bytes,
    )
    .expect("attribution reconciles after the allocation-free window");
}

/// Steady-state telemetry sampling is allocation-free: the sample buffer
/// is preallocated at its capacity and compaction is in place, so a
/// driver with the timeseries armed — sampling on (almost) every pass,
/// including through multiple buffer compactions — allocates exactly as
/// much as one with it off: nothing.
#[test]
fn steady_state_sampling_does_not_allocate() {
    use metrics::TimeseriesConfig;
    use sim_engine::units::VABLOCK_SIZE;
    use sim_engine::{CostModel, SimRng};
    use uvm_driver::{DriverConfig, UvmDriver};

    let cfg = DriverConfig {
        gpu_memory_bytes: 4 * VABLOCK_SIZE,
        timeseries: TimeseriesConfig {
            enabled: true,
            // A 1 ns grid makes every pass due; capacity 32 forces a
            // compaction every 32 samples — both paths in the window.
            interval_ns: 1,
            capacity: 32,
        },
        ..DriverConfig::default()
    };
    let mut space = ManagedSpace::new();
    space.alloc(16 * VABLOCK_SIZE, "sampled");
    let mut driver = UvmDriver::new(cfg, CostModel::default(), space, SimRng::from_seed(3));
    let mut buffer = FaultBuffer::new(FaultBufferConfig::default());
    let mut clock = SimTime::ZERO + SimDuration::from_millis(1);

    let fill = |buffer: &mut FaultBuffer, round: u64| {
        for b in 0..12u64 {
            buffer.push(FaultEntry {
                page: GlobalPage(b * 512 + (round * 13) % 512),
                access: if b % 3 == 0 {
                    AccessType::Write
                } else {
                    AccessType::Read
                },
                timestamp: SimTime::ZERO,
                utlb: (b % 4) as u32,
            });
        }
    };

    // Warm-up sizes the arena and fills the sample buffer once.
    for round in 0..40u64 {
        fill(&mut buffer, round);
        let r = driver.process_pass(&mut buffer, clock);
        clock += r.time;
    }

    let mut cleanest = u64::MAX;
    for attempt in 0..10u64 {
        let before = ALLOCS.load(Ordering::Relaxed);
        for round in 0..40u64 {
            fill(&mut buffer, 40 + attempt * 40 + round);
            let r = driver.process_pass(&mut buffer, clock);
            clock += r.time;
            assert!(r.fetched > 0);
        }
        let after = ALLOCS.load(Ordering::Relaxed);
        cleanest = cleanest.min(after - before);
        if cleanest == 0 {
            break;
        }
    }
    assert_eq!(
        cleanest, 0,
        "steady-state sampling allocated {cleanest} times in every window"
    );
    driver.finalize_timeseries(clock);
    let ts = driver.take_timeseries();
    assert!(
        ts.compactions > 0,
        "the window must have exercised in-place compaction"
    );
    assert!(ts.samples.len() <= 32);
}
