//! Proof that steady-state batch pre-processing is allocation-free: after
//! one warm-up pass sizes the arena, `gather_into` must not touch the
//! heap again. A counting global allocator makes the claim checkable
//! instead of aspirational — if someone reintroduces a per-batch map or
//! a `collect()`, this test fails with the allocation count.

use gpu_model::{AccessType, FaultBuffer, FaultBufferConfig, FaultEntry, GlobalPage};
use sim_engine::{SimDuration, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use uvm_driver::batch::{gather_into, BatchArena};
use uvm_driver::ManagedSpace;

/// Passes allocations through to the system allocator, counting them.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// A full batch of faults shaped like the thrash steady state: many
/// VABlocks, unsorted arrival order, duplicates across µTLBs.
fn fill_buffer(buffer: &mut FaultBuffer, batch: u64) {
    for i in 0..256u64 {
        let page = (i * 193 + batch * 7) % 4096;
        buffer.push(FaultEntry {
            page: GlobalPage(page),
            access: if i % 3 == 0 {
                AccessType::Write
            } else {
                AccessType::Read
            },
            timestamp: SimTime::ZERO + SimDuration::from_nanos(batch * 1000 + i),
            utlb: (i % 80) as u32,
        });
    }
}

#[test]
fn steady_state_batch_preprocessing_does_not_allocate() {
    let mut space = ManagedSpace::new();
    space.alloc(4096 * 4096, "alloc-free");
    let mut buffer = FaultBuffer::new(FaultBufferConfig::default());
    let mut arena = BatchArena::default();

    // Warm-up: the first gathers size the arena's entry and group vectors.
    for batch in 0..4 {
        fill_buffer(&mut buffer, batch);
        gather_into(
            &mut buffer,
            256,
            SimTime::ZERO + SimDuration::from_millis(batch + 1),
            &space,
            &mut arena,
        );
        assert!(!arena.batch.groups.is_empty(), "warm-up produced no groups");
    }

    // Steady state: zero heap allocations over many batches. The
    // counter is process-global, so the libtest harness thread can leak
    // one-time lazy-init allocations into the window; retry a few
    // windows and accept the cleanest. A *per-batch* allocation in
    // `gather_into` repeats in every window and still fails.
    let mut cleanest = u64::MAX;
    for attempt in 0..10u64 {
        let before = ALLOCS.load(Ordering::Relaxed);
        for batch in 0..60 {
            fill_buffer(&mut buffer, 4 + attempt * 60 + batch);
            gather_into(
                &mut buffer,
                256,
                SimTime::ZERO + SimDuration::from_millis(batch + 1),
                &space,
                &mut arena,
            );
            assert!(!arena.batch.groups.is_empty());
        }
        let after = ALLOCS.load(Ordering::Relaxed);
        cleanest = cleanest.min(after - before);
        if cleanest == 0 {
            break;
        }
    }
    assert_eq!(
        cleanest, 0,
        "steady-state gather_into allocated {cleanest} times in every window"
    );
}
