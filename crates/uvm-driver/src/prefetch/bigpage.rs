//! Stage-1 prefetching: the 64 KB "big page" upgrade (paper §IV-A).
//!
//! Every faulted 4 KB page is upgraded to its aligned 64 KB big page: the
//! other 15 pages of the region are flagged for prefetch. This satisfies
//! common spatial locality and lets x86 (4 KB pages) emulate Power9
//! (64 KB pages) so other driver code can reason uniformly.

use gpu_model::PageMask;
use sim_engine::units::{BIG_PAGES_PER_VABLOCK, PAGES_PER_BIG_PAGE};

/// Upgrade each faulted page to its 64 KB-aligned big page. Returns the
/// mask of all pages covered by a faulted big page (a superset of
/// `faulted`).
pub fn upgrade_to_big_pages(faulted: &PageMask) -> PageMask {
    let mut out = PageMask::EMPTY;
    for bp in 0..BIG_PAGES_PER_VABLOCK {
        let start = bp * PAGES_PER_BIG_PAGE;
        if faulted.count_range(start, PAGES_PER_BIG_PAGE) > 0 {
            out.set_range(start, PAGES_PER_BIG_PAGE);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fault_upgrades_its_region() {
        let mut f = PageMask::EMPTY;
        f.set(17); // big page 1 covers pages 16..32
        let up = upgrade_to_big_pages(&f);
        assert_eq!(up.count(), 16);
        assert!(up.get(16) && up.get(31));
        assert!(!up.get(15) && !up.get(32));
    }

    #[test]
    fn faults_in_same_region_share_one_upgrade() {
        let mut f = PageMask::EMPTY;
        f.set(0);
        f.set(7);
        f.set(15);
        assert_eq!(upgrade_to_big_pages(&f).count(), 16);
    }

    #[test]
    fn faults_in_distinct_regions_upgrade_each() {
        let mut f = PageMask::EMPTY;
        f.set(0);
        f.set(100); // big page 6 (96..112)
        f.set(511); // big page 31 (496..512)
        let up = upgrade_to_big_pages(&f);
        assert_eq!(up.count(), 48);
        assert!(up.get(96) && up.get(111) && up.get(496));
    }

    #[test]
    fn empty_in_empty_out() {
        assert!(upgrade_to_big_pages(&PageMask::EMPTY).is_empty());
    }

    #[test]
    fn upgrade_is_superset_and_idempotent() {
        let mut f = PageMask::EMPTY;
        for p in [3usize, 77, 300, 444] {
            f.set(p);
        }
        let up = upgrade_to_big_pages(&f);
        assert_eq!(f.difference(&up).count(), 0, "superset of the faults");
        assert_eq!(upgrade_to_big_pages(&up), up, "idempotent");
    }
}
