//! The 9-level density tree (paper §IV-A, Fig. 6).
//!
//! Each VABlock is conceptually a binary tree over its 512 pages:
//! level 0 holds the 512 leaves, level 9 the root; a node at level *L*
//! covers `2^L` consecutive pages. A node's value is the number of covered
//! pages that are resident on the GPU, present in the current fault batch,
//! or already flagged for prefetching. For a faulted leaf, the *prefetch
//! region* is the largest ancestor subtree whose density exceeds the
//! threshold; the whole region is then fetched and its nodes saturated to
//! their maximum value so later faults in the batch see the update.

use gpu_model::PageMask;
use sim_engine::units::{PAGES_PER_VABLOCK, PREFETCH_TREE_LEVELS};
use std::ops::Range;

/// Number of nodes across all levels: 512 + 256 + … + 1 = 1023.
const NUM_NODES: usize = 2 * PAGES_PER_VABLOCK - 1;

/// Flattened per-VABlock density tree.
///
/// Storage is inline (~2 KB on the stack): the tree is rebuilt for every
/// serviced VABlock group, so it must not touch the heap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DensityTree {
    // counts[offset(level) + idx] = occupied leaves under node (level, idx).
    counts: [u16; NUM_NODES],
}

#[inline]
fn level_offset(level: usize) -> usize {
    // Offsets: level 0 -> 0, level 1 -> 512, level 2 -> 768, ...
    // sum_{l<level} 512 >> l = 1024 - (1024 >> level).
    2 * PAGES_PER_VABLOCK - ((2 * PAGES_PER_VABLOCK) >> level)
}

#[inline]
fn nodes_at(level: usize) -> usize {
    PAGES_PER_VABLOCK >> level
}

impl Default for DensityTree {
    fn default() -> Self {
        DensityTree::new_empty()
    }
}

impl DensityTree {
    /// Incremental-vs-rebuild crossover for [`Self::add_mask`]: the
    /// leaf-to-root path walk costs ~(levels+1) dependent increments per
    /// added page, so past this many pages the flat 1023-count rebuild
    /// from the occupancy mask (word-popcount leaves, level sums) wins.
    pub const DENSE_REBUILD_CUTOFF: usize = 64;

    /// The tree of `PageMask::EMPTY`: every count zero.
    pub fn new_empty() -> Self {
        DensityTree {
            counts: [0u16; NUM_NODES],
        }
    }

    /// Build the tree from an occupancy mask (resident ∪ faulted ∪
    /// prefetch-flagged pages).
    pub fn from_mask(mask: &PageMask) -> Self {
        let mut counts = [0u16; NUM_NODES];
        mask.for_each_set_word(|wi, bits| {
            let mut b = bits;
            while b != 0 {
                counts[wi * 64 + b.trailing_zeros() as usize] = 1;
                b &= b - 1;
            }
        });
        for level in 1..=PREFETCH_TREE_LEVELS {
            let off = level_offset(level);
            let child_off = level_offset(level - 1);
            for i in 0..nodes_at(level) {
                counts[off + i] = counts[child_off + 2 * i] + counts[child_off + 2 * i + 1];
            }
        }
        DensityTree { counts }
    }

    /// Occupied-leaf count of node (`level`, `idx`).
    #[inline]
    pub fn count(&self, level: usize, idx: usize) -> u16 {
        debug_assert!(level <= PREFETCH_TREE_LEVELS);
        debug_assert!(idx < nodes_at(level));
        self.counts[level_offset(level) + idx]
    }

    /// Leaf range covered by node (`level`, `idx`).
    #[inline]
    pub fn leaves_of(level: usize, idx: usize) -> Range<usize> {
        let size = 1usize << level;
        idx * size..(idx + 1) * size
    }

    /// For a faulted `leaf`, find the largest ancestor subtree whose
    /// density strictly exceeds `threshold` percent. Returns `(level,
    /// idx)`; `(0, leaf)` when no larger region qualifies (the leaf itself
    /// always does — it faulted).
    pub fn region_for(&self, leaf: usize, threshold: u8) -> (usize, usize) {
        debug_assert!(leaf < PAGES_PER_VABLOCK);
        debug_assert!((1..=100).contains(&threshold));
        let mut best = (0usize, leaf);
        let mut idx = leaf;
        for level in 0..=PREFETCH_TREE_LEVELS {
            let size = 1u32 << level;
            let count = self.count(level, idx) as u32;
            // density > threshold%  <=>  count * 100 > threshold * size
            if count * 100 > threshold as u32 * size {
                best = (level, idx);
            }
            idx >>= 1;
        }
        best
    }

    /// Saturate the subtree at (`level`, `idx`): every node in the region
    /// is set to its maximum value (all leaves occupied) and ancestor
    /// counts are increased accordingly, so later faults in the same batch
    /// observe the pending prefetch.
    pub fn saturate(&mut self, level: usize, idx: usize) {
        let size = 1u16 << level;
        let old = self.count(level, idx);
        let delta = size - old;
        if delta == 0 {
            return;
        }
        // Fill the region: all descendants become full.
        for l in 0..=level {
            let off = level_offset(l);
            let first = idx << (level - l);
            let n = 1usize << (level - l);
            let full = 1u16 << l;
            for node in first..first + n {
                self.counts[off + node] = full;
            }
        }
        // Propagate the increase to ancestors.
        let mut a = idx >> 1;
        for l in level + 1..=PREFETCH_TREE_LEVELS {
            self.counts[level_offset(l) + a] += delta;
            a >>= 1;
        }
    }

    /// Reset every count to zero (the block's pages all left the GPU —
    /// eviction or migration back to the host).
    pub fn clear(&mut self) {
        self.counts = [0u16; NUM_NODES];
    }

    /// The occupancy mask the leaf counts encode (inverse of
    /// [`Self::from_mask`]).
    pub fn to_mask(&self) -> PageMask {
        let mut mask = PageMask::EMPTY;
        for (leaf, &c) in self.counts[..PAGES_PER_VABLOCK].iter().enumerate() {
            if c != 0 {
                mask.set(leaf);
            }
        }
        mask
    }

    /// Incrementally mark the leaves of `added` occupied: each newly
    /// occupied page increments only its leaf-to-root path (10 counts)
    /// instead of rebuilding all 1023 node counts. Equivalent to
    /// `from_mask(old ∪ added)` when the tree currently holds
    /// `from_mask(old)` and `added` is disjoint from `old`.
    pub fn add_mask(&mut self, added: &PageMask) {
        if added.count() > Self::DENSE_REBUILD_CUTOFF {
            let mut occupancy = self.to_mask();
            occupancy.or_with(added);
            *self = Self::from_mask(&occupancy);
            return;
        }
        added.for_each_set_word(|wi, bits| {
            let mut b = bits;
            while b != 0 {
                let leaf = wi * 64 + b.trailing_zeros() as usize;
                b &= b - 1;
                debug_assert_eq!(self.counts[leaf], 0, "leaf {leaf} already occupied");
                let mut idx = leaf;
                for level in 0..=PREFETCH_TREE_LEVELS {
                    self.counts[level_offset(level) + idx] += 1;
                    idx >>= 1;
                }
            }
        });
    }

    /// Root count (total occupied leaves).
    pub fn total(&self) -> u16 {
        self.count(PREFETCH_TREE_LEVELS, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_of(leaves: &[usize]) -> PageMask {
        let mut m = PageMask::EMPTY;
        for &l in leaves {
            m.set(l);
        }
        m
    }

    #[test]
    fn build_aggregates_counts() {
        let t = DensityTree::from_mask(&mask_of(&[0, 1, 2, 3, 100, 511]));
        assert_eq!(t.count(0, 0), 1);
        assert_eq!(t.count(1, 0), 2); // leaves 0,1
        assert_eq!(t.count(2, 0), 4); // leaves 0..4
        assert_eq!(t.count(9, 0), 6);
        assert_eq!(t.total(), 6);
    }

    #[test]
    fn empty_and_full_masks() {
        let empty = DensityTree::from_mask(&PageMask::EMPTY);
        assert_eq!(empty.total(), 0);
        let full = DensityTree::from_mask(&PageMask::FULL);
        assert_eq!(full.total(), 512);
        assert_eq!(full.count(4, 7), 16);
    }

    #[test]
    fn region_for_grows_with_density() {
        // Fully occupy the first 16-leaf subtree plus the faulted leaf 16:
        // level-4 node 1 has 1/16 ≤ 51%, but level-5 node 0 has 17/32 =
        // 53.1% > 51% -> region is (5, 0).
        let mut leaves: Vec<usize> = (0..16).collect();
        leaves.push(16);
        let t = DensityTree::from_mask(&mask_of(&leaves));
        assert_eq!(t.region_for(16, 51), (5, 0));
    }

    #[test]
    fn region_for_lone_fault_is_the_leaf() {
        let t = DensityTree::from_mask(&mask_of(&[42]));
        assert_eq!(t.region_for(42, 51), (0, 42));
    }

    #[test]
    fn threshold_is_strict() {
        // Exactly 50% of a 2-leaf subtree at threshold 50 must NOT qualify
        // (density must strictly exceed), matching "more than 51%" prose
        // with the default 51.
        let t = DensityTree::from_mask(&mask_of(&[0]));
        // level-1 node 0 has 1/2 = 50%.
        assert_eq!(t.region_for(0, 50), (0, 0));
        // At threshold 49, 50% > 49% qualifies.
        assert_eq!(t.region_for(0, 49).0, 1);
    }

    #[test]
    fn aggressive_threshold_fetches_whole_block_from_one_fault() {
        // threshold 1: a single fault gives 1/512 ≈ 0.2% which is NOT
        // > 1%, so the root does not qualify — but 1/64 = 1.56% > 1% does:
        // level 6. This mirrors how threshold=1 cascades aggressively.
        let t = DensityTree::from_mask(&mask_of(&[0]));
        let (level, idx) = t.region_for(0, 1);
        assert_eq!((level, idx), (6, 0)); // 1/64 = 1.56% > 1%
    }

    #[test]
    fn paper_figure6_scenario() {
        // Fig. 6 (scaled): with threshold 51%, occupying 9 of the first 16
        // leaves (56%) makes the level-4 subtree the prefetch region for a
        // fault within it.
        let leaves: Vec<usize> = (0..9).collect();
        let t = DensityTree::from_mask(&mask_of(&leaves));
        let (level, idx) = t.region_for(3, 51);
        assert_eq!((level, idx), (4, 0), "9/16 = 56% > 51%");
    }

    #[test]
    fn saturate_updates_region_and_ancestors() {
        let mut t = DensityTree::from_mask(&mask_of(&[0, 1, 2]));
        assert_eq!(t.count(4, 0), 3);
        t.saturate(4, 0);
        assert_eq!(t.count(4, 0), 16);
        assert_eq!(t.count(0, 5), 1, "descendant leaves filled");
        assert_eq!(t.count(9, 0), 16, "root sees the increase");
        assert_eq!(t.count(5, 0), 16);
        // Saturating an already-full region is a no-op.
        let before = t.clone();
        t.saturate(4, 0);
        assert_eq!(t, before);
    }

    #[test]
    fn cascade_five_faults_fetch_whole_block() {
        // The paper notes (§IV-A) that with big-page upgrades, five faults
        // in different level-5 subtrees can cascade to fetch the entire
        // VABlock. Emulate: occupy five 64-page level-6 subtrees... more
        // directly, saturate enough of the tree that one more fault makes
        // the root exceed 51%.
        let mut m = PageMask::EMPTY;
        m.set_range(0, 256); // half the block resident: 50%
        let t = DensityTree::from_mask(&m);
        // The root at 50% does not qualify; the fully-occupied level-8
        // half does, so a fault inside it stays within that half.
        assert_eq!(t.region_for(0, 51), (8, 0));
        // Push occupancy just past 51% of the block (262/512 = 51.2%):
        // a fault now cascades to fetch the entire VABlock.
        for leaf in 256..262 {
            m.set(leaf);
        }
        let t = DensityTree::from_mask(&m);
        assert_eq!(t.region_for(261, 51), (9, 0), "262/512 > 51%");
    }

    #[test]
    fn incremental_add_matches_rebuild() {
        let resident = mask_of(&[0, 1, 2, 3, 100, 511]);
        let mut tree = DensityTree::new_empty();
        tree.add_mask(&resident);
        assert_eq!(tree, DensityTree::from_mask(&resident));

        // Add a disjoint batch of pages on top.
        let added = mask_of(&[4, 5, 63, 64, 200, 300]);
        tree.add_mask(&added);
        assert_eq!(tree, DensityTree::from_mask(&resident.union(&added)));
    }

    #[test]
    fn clear_resets_to_empty() {
        let mut tree = DensityTree::from_mask(&mask_of(&[7, 8, 9]));
        tree.clear();
        assert_eq!(tree, DensityTree::new_empty());
        assert_eq!(tree, DensityTree::default());
        assert_eq!(tree.total(), 0);
    }

    #[test]
    fn add_after_clear_rebuilds_exactly() {
        let mut tree = DensityTree::from_mask(&PageMask::FULL);
        tree.clear();
        let m = mask_of(&[10, 20, 30]);
        tree.add_mask(&m);
        assert_eq!(tree, DensityTree::from_mask(&m));
    }

    #[test]
    fn leaves_of_ranges() {
        assert_eq!(DensityTree::leaves_of(0, 7), 7..8);
        assert_eq!(DensityTree::leaves_of(4, 2), 32..48);
        assert_eq!(DensityTree::leaves_of(9, 0), 0..512);
    }
}
