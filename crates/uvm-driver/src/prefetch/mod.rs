//! The two-stage UVM prefetcher (paper §IV-A): 64 KB big-page upgrade,
//! then the per-VABlock density tree.
//!
//! Also implements the paper's §VI-B4 *adaptive prefetching* suggestion as
//! an optional mode: aggressive threshold while the footprint fits in GPU
//! memory, prefetching disabled once oversubscribed.

pub mod bigpage;
pub mod tree;

use gpu_model::PageMask;
use serde::{Deserialize, Serialize};

pub use bigpage::upgrade_to_big_pages;
pub use tree::DensityTree;

/// Default density threshold (driver load-time parameter; 1–100).
pub const DEFAULT_THRESHOLD: u8 = 51;

/// Prefetching policy selected at driver load time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefetchPolicy {
    /// No prefetching: only faulted pages migrate.
    Disabled,
    /// The stock two-stage prefetcher.
    Density {
        /// Density threshold in percent (default 51).
        threshold: u8,
        /// Enable the stage-1 big-page upgrade (stock driver: on).
        big_pages: bool,
    },
    /// A literature-baseline next-N prefetcher that trusts *fault order*:
    /// each fault pulls in the following `degree` pages of its VABlock.
    /// The paper argues (§VI-A) such order-based schemes break down when
    /// faults arrive scrambled from thousands of parallel warps — this
    /// policy exists to quantify that claim against the density scheme.
    Sequential {
        /// Pages prefetched after each faulted page.
        degree: u16,
    },
    /// Paper §VI-B4: adapt to the subscription ratio — aggressive
    /// prefetching when undersubscribed, none when oversubscribed.
    Adaptive {
        /// Threshold used while the footprint fits in GPU memory
        /// (the paper observes threshold 1 "rivals explicit transfer").
        undersubscribed_threshold: u8,
    },
}

impl Default for PrefetchPolicy {
    fn default() -> Self {
        PrefetchPolicy::Density {
            threshold: DEFAULT_THRESHOLD,
            big_pages: true,
        }
    }
}

/// The policy after resolving adaptivity against the subscription ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolvedPrefetch {
    /// No prefetching.
    Disabled,
    /// Density prefetching with a fixed threshold.
    Density {
        /// Density threshold in percent.
        threshold: u8,
        /// Stage-1 big-page upgrade enabled.
        big_pages: bool,
    },
    /// Next-N sequential prefetching in fault order.
    Sequential {
        /// Pages prefetched after each faulted page.
        degree: u16,
    },
}

impl PrefetchPolicy {
    /// Short policy label for telemetry (the exposition `policy` label).
    pub fn label(self) -> &'static str {
        match self {
            PrefetchPolicy::Disabled => "disabled",
            PrefetchPolicy::Density { .. } => "density",
            PrefetchPolicy::Sequential { .. } => "sequential",
            PrefetchPolicy::Adaptive { .. } => "adaptive",
        }
    }

    /// Resolve the policy given the footprint/GPU-memory subscription
    /// ratio (1.0 = exactly full).
    pub fn resolve(self, subscription_ratio: f64) -> ResolvedPrefetch {
        match self {
            PrefetchPolicy::Disabled => ResolvedPrefetch::Disabled,
            PrefetchPolicy::Density {
                threshold,
                big_pages,
            } => {
                assert!((1..=100).contains(&threshold), "threshold must be 1-100");
                ResolvedPrefetch::Density {
                    threshold,
                    big_pages,
                }
            }
            PrefetchPolicy::Sequential { degree } => ResolvedPrefetch::Sequential { degree },
            PrefetchPolicy::Adaptive {
                undersubscribed_threshold,
            } => {
                assert!(
                    (1..=100).contains(&undersubscribed_threshold),
                    "threshold must be 1-100"
                );
                if subscription_ratio <= 1.0 {
                    ResolvedPrefetch::Density {
                        threshold: undersubscribed_threshold,
                        big_pages: true,
                    }
                } else {
                    ResolvedPrefetch::Disabled
                }
            }
        }
    }
}

/// Compute the pages to prefetch for one VABlock during one batch.
///
/// * `resident` — pages already on the GPU.
/// * `faulted` — new (non-duplicate) faulted pages in this batch.
/// * `valid` — pages of the block that belong to a live allocation.
///
/// Returns the prefetch mask: pages to migrate *in addition to* the
/// faulted ones (never overlapping `resident` or `faulted`).
pub fn compute_prefetch(
    policy: ResolvedPrefetch,
    resident: &PageMask,
    faulted: &PageMask,
    valid: &PageMask,
) -> PageMask {
    if faulted.is_empty() {
        return PageMask::EMPTY;
    }
    let (threshold, big_pages) = match policy {
        ResolvedPrefetch::Disabled => return PageMask::EMPTY,
        ResolvedPrefetch::Sequential { degree } => {
            // Next-N in fault order: pull the pages following each fault
            // within the VABlock (the classic OS readahead shape). Each
            // run is marked word-at-a-time.
            let mut marked = PageMask::EMPTY;
            for leaf in faulted.iter_set() {
                let end = (leaf + 1 + degree as usize).min(sim_engine::units::PAGES_PER_VABLOCK);
                marked.set_span(leaf + 1, end - (leaf + 1));
            }
            return marked
                .intersect(valid)
                .difference(resident)
                .difference(faulted);
        }
        ResolvedPrefetch::Density {
            threshold,
            big_pages,
        } => (threshold, big_pages),
    };

    // Stage 1: big-page upgrade (clipped to the allocation).
    let mut marked = if big_pages {
        upgrade_to_big_pages(faulted).intersect(valid)
    } else {
        *faulted
    };

    // Stage 2: density tree over everything on the GPU or pending.
    let occupancy = resident.union(faulted).union(&marked);
    let mut tree = DensityTree::from_mask(&occupancy);
    density_stage(&mut tree, &mut marked, faulted, threshold);

    marked
        .intersect(valid)
        .difference(resident)
        .difference(faulted)
}

/// The density-tree walk shared by [`compute_prefetch`] and
/// [`compute_prefetch_seeded`]: grow `marked` to each faulted leaf's
/// qualifying region, saturating the tree so later faults in the batch
/// observe pending prefetches.
fn density_stage(tree: &mut DensityTree, marked: &mut PageMask, faulted: &PageMask, threshold: u8) {
    for leaf in faulted.iter_set() {
        let (level, idx) = tree.region_for(leaf, threshold);
        if level > 0 {
            let range = DensityTree::leaves_of(level, idx);
            marked.set_range(range.start, range.end - range.start);
            tree.saturate(level, idx);
        }
    }
}

/// [`compute_prefetch`] seeded with the block's persistent density tree.
///
/// `resident_tree` must hold exactly the counts of `resident` (the driver
/// maintains one such tree per VABlock across batches). Instead of
/// rebuilding all 1023 counts from the occupancy mask, the tree is copied
/// into `scratch` and only the leaf-to-root paths of this batch's pending
/// pages are added. Output is bit-identical to [`compute_prefetch`].
pub fn compute_prefetch_seeded(
    policy: ResolvedPrefetch,
    resident: &PageMask,
    faulted: &PageMask,
    valid: &PageMask,
    resident_tree: &DensityTree,
    scratch: &mut DensityTree,
) -> PageMask {
    let (threshold, big_pages) = match policy {
        ResolvedPrefetch::Density {
            threshold,
            big_pages,
        } if !faulted.is_empty() => (threshold, big_pages),
        // Disabled, Sequential, and the empty-fault early-out never touch
        // the tree; the plain path already handles them.
        _ => return compute_prefetch(policy, resident, faulted, valid),
    };

    let mut marked = if big_pages {
        upgrade_to_big_pages(faulted).intersect(valid)
    } else {
        *faulted
    };

    // occupancy = resident ∪ faulted ∪ marked, built incrementally: seed
    // with the resident counts, add the pending (non-resident) pages.
    // Dense pending sets (streaming batches upgrade whole big pages) skip
    // the seed-and-walk and rebuild flat from the occupancy mask.
    let pending = marked.union(faulted).difference(resident);
    if pending.count() > DensityTree::DENSE_REBUILD_CUTOFF {
        *scratch = DensityTree::from_mask(&resident.union(&pending));
    } else {
        scratch.clone_from(resident_tree);
        scratch.add_mask(&pending);
    }
    density_stage(scratch, &mut marked, faulted, threshold);

    marked
        .intersect(valid)
        .difference(resident)
        .difference(faulted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_of(leaves: &[usize]) -> PageMask {
        let mut m = PageMask::EMPTY;
        for &l in leaves {
            m.set(l);
        }
        m
    }

    const STOCK: ResolvedPrefetch = ResolvedPrefetch::Density {
        threshold: DEFAULT_THRESHOLD,
        big_pages: true,
    };

    #[test]
    fn disabled_prefetches_nothing() {
        let f = mask_of(&[1, 2, 3]);
        let out = compute_prefetch(
            ResolvedPrefetch::Disabled,
            &PageMask::EMPTY,
            &f,
            &PageMask::FULL,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn lone_fault_prefetches_its_big_page() {
        let f = mask_of(&[20]);
        let out = compute_prefetch(STOCK, &PageMask::EMPTY, &f, &PageMask::FULL);
        // Big page 1 covers 16..32; the faulted page itself is excluded.
        assert_eq!(out.count(), 15);
        assert!(out.get(16) && out.get(31) && !out.get(20));
    }

    #[test]
    fn big_page_upgrades_feed_the_tree() {
        // Faults in big pages 0 and 1 upgrade to 32 pending pages: the
        // level-5 subtree (32 leaves) is then 100% occupied, and the
        // level-6 subtree (64 leaves) at 32/64 = 50% does NOT exceed 51.
        let f = mask_of(&[0, 16]);
        let out = compute_prefetch(STOCK, &PageMask::EMPTY, &f, &PageMask::FULL);
        assert_eq!(out.count(), 30, "two big pages minus two faults");
        // A third fault in big page 2 pushes the level-6 subtree to
        // 48/64 = 75% > 51%: the full 64-leaf region is fetched.
        let f = mask_of(&[0, 16, 32]);
        let out = compute_prefetch(STOCK, &PageMask::EMPTY, &f, &PageMask::FULL);
        assert_eq!(out.count(), 64 - 3);
        assert!(out.get(63));
    }

    #[test]
    fn residency_contributes_to_density() {
        // 256 pages already resident (first half). One fault at 256 with
        // its big-page upgrade (256..272) gives the upper half 16/256 =
        // 6.25%; root = (256 + 16)/512 = 53.1% > 51% -> whole block.
        let mut resident = PageMask::EMPTY;
        resident.set_range(0, 256);
        let f = mask_of(&[256]);
        let out = compute_prefetch(STOCK, &resident, &f, &PageMask::FULL);
        assert_eq!(out.count(), 512 - 256 - 1, "rest of the block fetched");
    }

    #[test]
    fn prefetch_never_includes_resident_or_invalid() {
        let mut valid = PageMask::EMPTY;
        valid.set_range(0, 64);
        let mut resident = mask_of(&[1, 2]);
        resident.or_with(&PageMask::EMPTY);
        let f = mask_of(&[0]);
        let out = compute_prefetch(STOCK, &resident, &f, &valid);
        assert!(out.intersect(&resident).is_empty());
        assert!(out.difference(&valid).is_empty());
        assert!(!out.get(0));
    }

    #[test]
    fn threshold_one_is_aggressive() {
        let f = mask_of(&[100]);
        let aggressive = ResolvedPrefetch::Density {
            threshold: 1,
            big_pages: true,
        };
        let out = compute_prefetch(aggressive, &PageMask::EMPTY, &f, &PageMask::FULL);
        // With threshold 1 a single fault's big page (16/512 = 3.1% at the
        // root > 1%) cascades to the entire VABlock.
        assert_eq!(out.count(), 511);
    }

    #[test]
    fn no_big_pages_only_tree() {
        let f = mask_of(&[7]);
        let no_bp = ResolvedPrefetch::Density {
            threshold: DEFAULT_THRESHOLD,
            big_pages: false,
        };
        let out = compute_prefetch(no_bp, &PageMask::EMPTY, &f, &PageMask::FULL);
        assert!(
            out.is_empty(),
            "a lone fault with no upgrade fetches nothing extra"
        );
    }

    #[test]
    fn adaptive_resolution() {
        let p = PrefetchPolicy::Adaptive {
            undersubscribed_threshold: 1,
        };
        assert_eq!(
            p.resolve(0.8),
            ResolvedPrefetch::Density {
                threshold: 1,
                big_pages: true
            }
        );
        assert_eq!(p.resolve(1.2), ResolvedPrefetch::Disabled);
        assert_eq!(
            PrefetchPolicy::Disabled.resolve(0.5),
            ResolvedPrefetch::Disabled
        );
    }

    #[test]
    fn sequential_prefetches_next_n() {
        let f = mask_of(&[10, 100]);
        let seq = ResolvedPrefetch::Sequential { degree: 4 };
        let out = compute_prefetch(seq, &PageMask::EMPTY, &f, &PageMask::FULL);
        let got: Vec<usize> = out.iter_set().collect();
        assert_eq!(got, vec![11, 12, 13, 14, 101, 102, 103, 104]);
    }

    #[test]
    fn sequential_clips_at_block_end_and_excludes_resident() {
        let f = mask_of(&[510]);
        let mut resident = PageMask::EMPTY;
        resident.set(511);
        let seq = ResolvedPrefetch::Sequential { degree: 8 };
        let out = compute_prefetch(seq, &resident, &f, &PageMask::FULL);
        assert!(out.is_empty(), "511 resident, nothing past the block");
        let out = compute_prefetch(seq, &PageMask::EMPTY, &f, &PageMask::FULL);
        assert_eq!(out.iter_set().collect::<Vec<_>>(), vec![511]);
    }

    #[test]
    fn sequential_resolution_passes_through() {
        let p = PrefetchPolicy::Sequential { degree: 16 };
        assert_eq!(p.resolve(0.5), ResolvedPrefetch::Sequential { degree: 16 });
        assert_eq!(p.resolve(2.0), ResolvedPrefetch::Sequential { degree: 16 });
    }

    #[test]
    fn empty_faults_prefetch_nothing() {
        let out = compute_prefetch(STOCK, &PageMask::EMPTY, &PageMask::EMPTY, &PageMask::FULL);
        assert!(out.is_empty());
    }

    #[test]
    fn seeded_matches_plain_across_policies() {
        let mut resident = PageMask::EMPTY;
        resident.set_range(0, 128);
        let faulted = mask_of(&[130, 140, 200]);
        let mut valid = PageMask::EMPTY;
        valid.set_range(0, 256);
        let resident = resident.intersect(&valid);
        let tree = DensityTree::from_mask(&resident);
        let mut scratch = DensityTree::new_empty();
        for policy in [
            ResolvedPrefetch::Disabled,
            STOCK,
            ResolvedPrefetch::Density {
                threshold: 1,
                big_pages: false,
            },
            ResolvedPrefetch::Sequential { degree: 8 },
        ] {
            let plain = compute_prefetch(policy, &resident, &faulted, &valid);
            let seeded =
                compute_prefetch_seeded(policy, &resident, &faulted, &valid, &tree, &mut scratch);
            assert_eq!(plain, seeded, "policy {policy:?} diverged");
        }
        // Empty fault mask takes the early-out path.
        let seeded = compute_prefetch_seeded(
            STOCK,
            &resident,
            &PageMask::EMPTY,
            &valid,
            &tree,
            &mut scratch,
        );
        assert!(seeded.is_empty());
    }
}
