//! The top-level UVM driver loop: batch pre-processing, fault service,
//! prefetching, eviction, and the replay policy — the object of study of
//! the paper, instrumented with the same category taxonomy its authors
//! added to the real kernel module.

use crate::address_space::ManagedSpace;
use crate::address_space::VaRange;
use crate::batch::{self, BatchArena, FaultGroup};
use crate::lru::LruList;
use crate::pma::Pma;
use crate::policy::{EvictionPolicy, ReplayPolicy};
use crate::prefetch::{DensityTree, PrefetchPolicy, ResolvedPrefetch};
use crate::service::{plan_group, PlanRequest, ServicePool, MIN_PARALLEL_GROUPS};
use crate::thrash::{ThrashConfig, ThrashDetector};
use gpu_model::dma::TransferLog;
use gpu_model::{
    AccessNotification, FaultBuffer, GlobalPage, PageMask, ServicePlan, VaBlockIdx,
};
use metrics::trace::DEFAULT_TRACE_CAPACITY;
use metrics::{
    Attribution, BlockStats, Category, Counters, EventKind, Histogram, Offender, Sample,
    ServicePhaseWall, SpanCat, SpanKind, SpanRecorder, Timers, Timeseries, TimeseriesConfig,
    TimeseriesSampler, TraceRecorder, DEFAULT_SPAN_CAPACITY,
};
use serde::{Deserialize, Serialize};
use sim_engine::units::{GIB, PAGES_PER_VABLOCK, PAGE_SIZE};
use sim_engine::{CostModel, SimDuration, SimRng, SimTime};
use std::time::Instant;

/// Driver configuration (module-load parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriverConfig {
    /// Faults fetched per batch (stock default 256).
    pub batch_size: usize,
    /// Replay policy (stock default BatchFlush).
    pub replay_policy: ReplayPolicy,
    /// Prefetch policy (stock default: density, threshold 51, big pages).
    pub prefetch: PrefetchPolicy,
    /// Eviction aging policy (stock default: fault-driven LRU).
    pub eviction: EvictionPolicy,
    /// GPU physical memory size (Titan V: 12 GB).
    pub gpu_memory_bytes: u64,
    /// Physical allocation granularity in pages (stock: a full VABlock,
    /// 512). Paper §VI-B2 suggests flexible granularity; smaller
    /// power-of-two values allocate backing lazily per sub-region.
    pub alloc_granularity_pages: usize,
    /// Capture per-fault trace events (Fig. 7 / Fig. 8 data).
    pub capture_trace: bool,
    /// Capacity of the per-fault trace buffer (events beyond it are
    /// counted and dropped).
    pub trace_capacity: usize,
    /// Record batch-lifecycle spans (Chrome-trace export). Off by
    /// default: the recorder is then a no-op enum branch on hot paths.
    pub record_spans: bool,
    /// Capacity of the span buffer (events beyond it are counted and
    /// dropped, with dropped leaf *time* still accounted per category).
    pub span_capacity: usize,
    /// Thrashing detection + pinning (off = stock behaviour).
    pub thrash: ThrashConfig,
    /// Worker threads for the parallel service-planning half of a batch
    /// (including the driver thread itself). 1 = fully serial; 0 = auto,
    /// which the simulation harness resolves to an explicit thread count
    /// *before* constructing the driver (so telemetry never depends on
    /// the ambient pool size); the driver itself treats an unresolved 0
    /// as 1. Any value produces bit-identical simulated output — only
    /// host wall time changes.
    #[serde(default)]
    pub service_workers: usize,
    /// Simulated-time telemetry sampling (off by default; when on, the
    /// driver snapshots its cumulative signals on a virtual-time grid —
    /// deterministic at any thread/worker count).
    #[serde(default)]
    pub timeseries: TimeseriesConfig,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            batch_size: 256,
            replay_policy: ReplayPolicy::default(),
            prefetch: PrefetchPolicy::default(),
            eviction: EvictionPolicy::default(),
            gpu_memory_bytes: 12 * GIB,
            alloc_granularity_pages: PAGES_PER_VABLOCK,
            capture_trace: false,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            record_spans: false,
            span_capacity: DEFAULT_SPAN_CAPACITY,
            thrash: ThrashConfig::default(),
            service_workers: 0,
            timeseries: TimeseriesConfig::default(),
        }
    }
}

/// Outcome of one driver pass (one batch worth of work).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassResult {
    /// Virtual time the pass consumed on the driver's critical path.
    pub time: SimDuration,
    /// Replay notifications issued (0 means the GPU must keep waiting —
    /// only the Once policy does this while the buffer still has entries).
    pub replays: u64,
    /// Fault entries fetched this pass.
    pub fetched: u64,
    /// Pages migrated (faulted + prefetched) this pass.
    pub pages_migrated: u64,
}

/// The simulated UVM driver.
#[derive(Debug)]
pub struct UvmDriver {
    cfg: DriverConfig,
    resolved_prefetch: ResolvedPrefetch,
    cost: CostModel,
    space: ManagedSpace,
    pma: Pma,
    lru: LruList,
    rng: SimRng,
    timers: Timers,
    counters: Counters,
    trace: TraceRecorder,
    spans: SpanRecorder,
    xfer: TransferLog,
    first_touch_done: bool,
    thrash: ThrashDetector,
    faults_per_batch: Histogram,
    vablocks_per_batch: Histogram,
    /// Batch pre-processing buffers, reused across passes (taken out and
    /// put back around the service loop so groups can be read while the
    /// driver mutates itself).
    arena: BatchArena,
    /// Eviction scratch: pinned blocks popped from the LRU while hunting
    /// for a victim, re-inserted afterwards. Reused across evictions.
    evict_skipped: Vec<VaBlockIdx>,
    /// Persistent per-VABlock density trees mirroring each block's
    /// `resident` mask, maintained incrementally at commit/evict time so
    /// the planner never rebuilds a tree from scratch.
    trees: Vec<DensityTree>,
    /// Whether the trees are maintained at all: only the density prefetch
    /// policy reads them, so every other policy skips the bookkeeping.
    maintain_trees: bool,
    /// Worker pool for the parallel planning half of a pass.
    pool: ServicePool,
    /// Planning scratch tree for the driver thread (workers own theirs).
    plan_scratch: DensityTree,
    /// Host wall-time split of the two-phase service, flushed to the
    /// process-global [`metrics::phase`] totals when the driver drops.
    phase_wall: ServicePhaseWall,
    /// Simulated-time telemetry sampler (disabled-inert by default).
    sampler: TimeseriesSampler,
    /// Per-pass critical-path sim-time distribution, feeding the sampled
    /// batch-latency percentiles. Only maintained while sampling is on.
    pass_ns: Histogram,
    /// Fault-provenance ledger: per-cause fault/page/byte totals that
    /// partition [`Counters`] and the transfer log exactly. Always on —
    /// classification is a handful of word-wide mask ops on paths that
    /// already walk the same masks.
    attribution: Attribution,
    /// Per-VABlock offender stats (refaults, prefetch-evicted pages),
    /// preallocated one slot per block like `trees`/`lru`.
    block_stats: Vec<BlockStats>,
}

impl UvmDriver {
    /// Load the driver for `space` with the given configuration.
    ///
    /// The prefetch policy is resolved against the subscription ratio
    /// (footprint ÷ GPU memory) at load time, mirroring how the adaptive
    /// mode would decide.
    pub fn new(cfg: DriverConfig, cost: CostModel, space: ManagedSpace, rng: SimRng) -> Self {
        assert!(cfg.batch_size > 0, "batch size must be nonzero");
        assert!(
            cfg.alloc_granularity_pages.is_power_of_two()
                && (1..=PAGES_PER_VABLOCK).contains(&cfg.alloc_granularity_pages),
            "allocation granularity must be a power of two in 1..=512"
        );
        assert!(
            cfg.gpu_memory_bytes >= cfg.alloc_granularity_pages as u64 * PAGE_SIZE,
            "GPU memory smaller than one allocation unit"
        );
        let subscription = (space.total_pages() * PAGE_SIZE) as f64 / cfg.gpu_memory_bytes as f64;
        let resolved_prefetch = cfg.prefetch.resolve(subscription);
        let trace = if cfg.capture_trace {
            TraceRecorder::with_capacity(cfg.trace_capacity)
        } else {
            TraceRecorder::disabled()
        };
        let spans = if cfg.record_spans {
            SpanRecorder::bounded(cfg.span_capacity)
        } else {
            SpanRecorder::disabled()
        };
        let workers = cfg.service_workers.max(1);
        UvmDriver {
            resolved_prefetch,
            cost,
            pma: Pma::new(cfg.gpu_memory_bytes),
            lru: LruList::new(space.num_blocks()),
            thrash: ThrashDetector::new(cfg.thrash.clone(), space.num_blocks()),
            trees: vec![DensityTree::new_empty(); space.num_blocks()],
            block_stats: vec![BlockStats::default(); space.num_blocks()],
            maintain_trees: matches!(resolved_prefetch, ResolvedPrefetch::Density { .. }),
            pool: ServicePool::new(workers),
            plan_scratch: DensityTree::new_empty(),
            phase_wall: ServicePhaseWall {
                workers: workers as u64,
                ..ServicePhaseWall::default()
            },
            space,
            rng,
            timers: Timers::default(),
            counters: Counters::default(),
            trace,
            spans,
            xfer: TransferLog::default(),
            first_touch_done: false,
            faults_per_batch: Histogram::default(),
            vablocks_per_batch: Histogram::default(),
            arena: BatchArena::default(),
            evict_skipped: Vec::new(),
            sampler: TimeseriesSampler::new(&cfg.timeseries),
            pass_ns: Histogram::default(),
            attribution: Attribution::default(),
            cfg,
        }
    }

    /// The managed address space (the GPU engine's residency oracle).
    pub fn space(&self) -> &ManagedSpace {
        &self.space
    }

    /// Charge `d` to `cat` and, when span recording is on, record the
    /// matching leaf span starting at `start`. Every driver time charge
    /// goes through here (or an inline equivalent), which is what makes
    /// captured span durations reconcile exactly with [`Timers`].
    #[inline]
    fn charge_span(
        &mut self,
        cat: Category,
        kind: SpanKind,
        start: SimTime,
        d: SimDuration,
        a: u64,
        b: u64,
    ) -> SimDuration {
        self.timers.charge(cat, d);
        if !d.is_zero() {
            self.spans.leaf_args(kind, cat, start, d, a, b);
        }
        d
    }

    /// Process one batch of faults: fetch, pre-process, service every
    /// VABlock group (allocating, prefetching, migrating, mapping, and
    /// evicting as needed), then apply the replay policy.
    pub fn process_pass(&mut self, buffer: &mut FaultBuffer, now: SimTime) -> PassResult {
        let pass_start = Instant::now();
        let mut t = SimDuration::ZERO;
        self.spans
            .begin(SpanKind::Pass, SpanCat::Batch, now, self.counters.batches, 0);

        if !self.first_touch_done {
            self.first_touch_done = true;
            t += self.charge_span(
                Category::Preprocess,
                SpanKind::FirstTouch,
                now + t,
                self.cost.uvm_first_touch(),
                0,
                0,
            );
        }
        t += self.charge_span(
            Category::Preprocess,
            SpanKind::InterruptWake,
            now + t,
            self.cost.interrupt_wake(),
            0,
            0,
        );

        // Entries are read after the wakeup (and any first-touch) work, so
        // faults raised just before the interrupt have had their payloads
        // land; only a genuine race costs polls.
        self.thrash.on_batch();
        // Take the arena out of the driver for the duration of the pass so
        // the groups can be iterated while `service_group(&mut self)` runs;
        // put it back below to keep its buffers for the next pass.
        let mut arena = std::mem::take(&mut self.arena);
        batch::gather_into(buffer, self.cfg.batch_size, now + t, &mut self.space, &mut arena);
        let batch = &arena.batch;
        let mut pre = self.cost.fault_fetch(batch.fetched) + self.cost.fault_poll(batch.polls);
        if batch.fetched > 0 {
            pre += self.cost.batch_sort();
            self.counters.batches += 1;
        }
        t += self.charge_span(
            Category::Preprocess,
            SpanKind::FetchSort,
            now + t,
            pre,
            batch.fetched,
            batch.groups.len() as u64,
        );
        self.counters.faults_fetched += batch.fetched;
        self.counters.duplicate_faults += batch.duplicates;
        self.counters.polls += batch.polls;
        // Provenance: gather already split the discarded entries into
        // prefetch hits (absorbed by an untouched prefetched page) and
        // replay duplicates; the non-duplicate entries are classified at
        // commit against each block's eviction history.
        self.attribution.prefetch_hit_faults += batch.prefetch_hits;
        self.attribution.replay_dup_faults += batch.duplicates - batch.prefetch_hits;
        if batch.duplicates > 0 {
            self.spans
                .instant(SpanKind::DuplicatesFiltered, now + t, batch.duplicates, 0);
        }
        if batch.fetched > 0 {
            self.faults_per_batch.record(batch.fetched);
            self.vablocks_per_batch.record(batch.groups.len() as u64);
        }

        let ngroups = batch.groups.len();

        // Planning half: every group's service window (prefetch
        // resolution, page-mask math, per-page costs) is computed from the
        // batch-start snapshot, fanned out over the worker pool into
        // disjoint plan slots, then committed strictly in sorted VABlock
        // order — the commit half is serial and owns the PMA, RNG, LRU,
        // eviction and every timer/span/trace charge, so all simulated
        // output is independent of the worker count. Small batches (and
        // the 1-worker pool) fuse planning into the commit walk instead:
        // a plan computed right before its commit differs from its
        // batch-start version only when an earlier group's eviction
        // bumped the block's epoch — exactly the case the pooled path
        // re-plans serially at commit, so the two modes are
        // output-identical (tests/trace_golden.rs and
        // uvm-driver/tests/service_equiv.rs enforce this).
        let mut pages_migrated = 0;
        let mut plan_ns = 0u64;
        if self.pool.workers() > 1 && ngroups >= MIN_PARALLEL_GROUPS {
            if arena.plans.len() < ngroups {
                arena.plans.resize(ngroups, ServicePlan::default());
            }
            let plan_start = Instant::now();
            let (busy_ns, _) = self.pool.plan_all(
                &PlanRequest {
                    space: &self.space,
                    trees: &self.trees,
                    policy: self.resolved_prefetch,
                    cost: &self.cost,
                    granularity: self.cfg.alloc_granularity_pages,
                    groups: &arena.batch.groups,
                },
                &mut arena.plans[..ngroups],
                &mut self.plan_scratch,
            );
            plan_ns = plan_start.elapsed().as_nanos() as u64;
            self.phase_wall.parallel_service_ns += plan_ns;
            self.phase_wall.service_busy_ns += busy_ns;
            self.phase_wall.planned_groups += ngroups as u64;
            self.phase_wall.parallel_batches += 1;
            for (group, plan) in arena.batch.groups.iter().zip(arena.plans.iter()) {
                let (dt, migrated) = self.commit_group(group, plan, now + t);
                t += dt;
                pages_migrated += migrated;
            }
        } else {
            let mut plan = ServicePlan::default();
            for group in arena.batch.groups.iter() {
                plan_group(
                    &self.space,
                    &self.trees,
                    self.resolved_prefetch,
                    &self.cost,
                    self.cfg.alloc_granularity_pages,
                    group,
                    &mut self.plan_scratch,
                    &mut plan,
                );
                let (dt, migrated) = self.commit_group(group, &plan, now + t);
                t += dt;
                pages_migrated += migrated;
            }
        }

        // Replay policy (paper §III-E). Under Block the driver issues
        // one replay per serviced VABlock; the loosely-timed co-simulation
        // delivers them to the GPU as one resume per pass, so Block
        // differs from Batch in replay *cost and count*, not in which
        // warps wake when. A pass that fetched nothing while warps may be
        // stalled models the overflow path: the driver replays to force
        // re-raising of unrecorded faults.
        let replays: u64 = match self.cfg.replay_policy {
            ReplayPolicy::Block => ngroups.max(1) as u64,
            ReplayPolicy::Batch | ReplayPolicy::BatchFlush => 1,
            ReplayPolicy::Once => u64::from(buffer.is_empty()),
        };
        if self.cfg.replay_policy.flushes() && replays > 0 {
            let discarded = buffer.flush();
            if discarded > 0 || matches!(self.cfg.replay_policy, ReplayPolicy::BatchFlush) {
                t += self.charge_span(
                    Category::ReplayPolicy,
                    SpanKind::BufferFlush,
                    now + t,
                    self.cost.buffer_flush(),
                    discarded as u64,
                    0,
                );
                self.counters.buffer_flushes += 1;
            }
        }
        t += self.charge_span(
            Category::ReplayPolicy,
            SpanKind::ReplayIssue,
            now + t,
            self.cost.replay_issue() * replays,
            replays,
            0,
        );
        self.counters.replays += replays;
        if replays > 0 {
            self.spans.instant(SpanKind::Replay, now + t, replays, 0);
        }

        let fetched = arena.batch.fetched;
        self.spans
            .end(SpanKind::Pass, SpanCat::Batch, now + t, fetched, replays);
        self.arena = arena;
        // Telemetry sampling on the virtual clock: one branch per pass
        // when disabled; when armed, snapshot at pass end if the grid is
        // due. Everything sampled is simulated state, so streams are
        // bit-identical at any `--threads`/`service_workers` value.
        if self.sampler.is_enabled() {
            self.pass_ns.record(t.as_nanos());
            let end = now + t;
            if self.sampler.is_due(end) {
                let sample = self.snapshot(end);
                self.sampler.record(end, sample);
            }
        }
        self.phase_wall.serial_front_ns +=
            (pass_start.elapsed().as_nanos() as u64).saturating_sub(plan_ns);
        PassResult {
            time: t,
            replays,
            fetched,
            pages_migrated,
        }
    }

    /// Commit one VABlock's service plan: ensure physical backing
    /// (evicting if exhausted), migrate, map, commit residency, and age
    /// the LRU. If an eviction earlier in this batch invalidated the
    /// plan's snapshot (detected by `eviction_epoch`), the plan is first
    /// recomputed serially from current state — staleness depends only on
    /// simulated state, never on worker scheduling, so replays are
    /// identical at every worker count. Returns (time, pages migrated).
    fn commit_group(
        &mut self,
        group: &FaultGroup,
        plan: &ServicePlan,
        now: SimTime,
    ) -> (SimDuration, u64) {
        let mut t = SimDuration::ZERO;
        let vb = group.block;
        self.spans.begin(
            SpanKind::VablockService,
            SpanCat::Vablock,
            now,
            vb.0,
            group.fault_mask.count() as u64,
        );

        // Per-VABlock bookkeeping (part of the service path).
        t += self.charge_span(
            Category::ServiceMap,
            SpanKind::VablockSetup,
            now + t,
            self.cost.vablock_setup(),
            vb.0,
            0,
        );

        let mut replanned = ServicePlan::default();
        let plan = if self.space.eviction_count(vb) != plan.eviction_epoch {
            self.phase_wall.plan_replans += 1;
            plan_group(
                &self.space,
                &self.trees,
                self.resolved_prefetch,
                &self.cost,
                self.cfg.alloc_granularity_pages,
                group,
                &mut self.plan_scratch,
                &mut replanned,
            );
            &replanned
        } else {
            plan
        };
        if plan.is_noop() {
            self.spans
                .end(SpanKind::VablockService, SpanCat::Vablock, now + t, vb.0, 0);
            return (t, 0);
        }
        // A fault on a block that has been evicted before is a refault:
        // feed the thrashing detector, which may pin the block.
        if self.space.eviction_count(vb) > 0 && self.thrash.note_refault(vb) {
            self.counters.thrash_pins += 1;
            self.spans.instant(SpanKind::ThrashPin, now + t, vb.0, 0);
        }

        // Physical backing at the configured granularity, lazily per
        // sub-region; evict (other) blocks when memory is exhausted. The
        // plan's unit scan stays valid even if an eviction fires mid-loop:
        // the eviction scan never touches the block being serviced. On
        // exhaustion the allocator reports the exact shortfall, and one
        // batched scan frees that much in a single LRU pass instead of
        // re-probing the allocator after every victim.
        let g = self.cfg.alloc_granularity_pages;
        for unit in plan.units_to_back.iter_set() {
            let unit_start = unit * g;
            let bytes = g as u64 * PAGE_SIZE;
            loop {
                match self.pma.alloc(bytes, &self.cost, &mut self.rng) {
                    Ok(grant) => {
                        t += self.charge_span(
                            Category::ServicePma,
                            SpanKind::PmaAlloc,
                            now + t,
                            grant.cost,
                            vb.0,
                            grant.calls,
                        );
                        self.counters.pma_calls += grant.calls;
                        break;
                    }
                    Err(e) => {
                        t += self.evict_batch(vb, e.shortfall(), now + t);
                    }
                }
            }
            self.space.backed_mut(vb).set_range(unit_start, g);
            // Newly allocated memory is zeroed before use.
            t += self.charge_span(
                Category::ServiceMigrate,
                SpanKind::PageZero,
                now + t,
                plan.zero_cost,
                vb.0,
                g as u64,
            );
            self.counters.pages_zeroed += g as u64;
        }

        // Migration: host staging + one coalesced DMA per VABlock/batch.
        let n = plan.pages;
        t += self.charge_span(
            Category::ServiceMigrate,
            SpanKind::MigrateH2d,
            now + t,
            plan.migrate_cost,
            vb.0,
            n,
        );
        self.xfer.record_h2d(n * PAGE_SIZE);

        // Mapping + membar, plus the LRU update the fault triggers.
        t += self.charge_span(
            Category::ServiceMap,
            SpanKind::MapPages,
            now + t,
            plan.map_cost,
            vb.0,
            n,
        );

        // Commit state. Provenance first: classify the faulted pages
        // against the block's eviction history (a fault on a page in
        // `evicted_ever` is a refault — split by the recorded verdict of
        // its last eviction), then mark them touched; prefetched pages
        // arrive *untouched*, which is what lets a later eviction call
        // them out as `PrefetchEvicted`.
        {
            let refault = plan.faulted.intersect(self.space.evicted_ever(vb));
            let n_faulted = plan.faulted.count() as u64;
            let n_refault = refault.count() as u64;
            // Fused popcount: |refault ∩ evicted_unused| without the
            // intermediate mask.
            let n_unused = refault.intersect_count(self.space.evicted_unused(vb)) as u64;
            self.attribution.cold_faults += n_faulted - n_refault;
            self.attribution.refault_used_faults += n_refault - n_unused;
            self.attribution.refault_unused_faults += n_unused;
            self.attribution.prefetch_pages += plan.prefetch.count() as u64;
            self.block_stats[vb.0 as usize].refault_faults += n_refault;
            self.space.touched_mut(vb).or_with(&plan.faulted);
            self.space.resident_mut(vb).or_with(&plan.to_migrate);
            self.space.prefetched_ever_mut(vb).or_with(&plan.prefetch);
            let dirty_new = group.write_mask.intersect(&plan.faulted);
            self.space.dirty_mut(vb).or_with(&dirty_new);
        }
        // The persistent tree mirrors `resident`; the migrated pages are
        // disjoint from the pre-commit residency by construction. Dense
        // migrations rebuild flat from the already-updated residency
        // instead of walking a leaf-to-root path per page. Only the
        // density policy ever reads the trees, so other policies skip
        // maintenance entirely.
        if self.maintain_trees {
            if plan.pages > DensityTree::DENSE_REBUILD_CUTOFF as u64 {
                self.trees[vb.0 as usize] = DensityTree::from_mask(self.space.resident(vb));
            } else {
                self.trees[vb.0 as usize].add_mask(&plan.to_migrate);
            }
            debug_assert_eq!(
                self.trees[vb.0 as usize],
                DensityTree::from_mask(self.space.resident(vb)),
                "persistent density tree diverged from residency"
            );
        }
        self.space.sync_block_residency(vb);
        self.lru.touch(vb);

        self.counters.pages_faulted_in += plan.faulted.count() as u64;
        self.counters.pages_prefetched += plan.prefetch.count() as u64;
        self.counters.vablocks_serviced += 1;

        if self.trace.is_enabled() {
            let base = vb.first_page().0;
            for off in plan.faulted.iter_set() {
                self.trace
                    .record(EventKind::Fault, base + off as u64, now + t);
            }
            for off in plan.prefetch.iter_set() {
                self.trace
                    .record(EventKind::Prefetch, base + off as u64, now + t);
            }
        }

        self.spans.end(
            SpanKind::VablockService,
            SpanCat::Vablock,
            now + t,
            vb.0,
            plan.faulted.count() as u64,
        );
        (t, n)
    }

    /// Evict enough least-recently-used VABlocks (never `exclude`, the
    /// block currently being serviced) to free at least `shortfall` bytes
    /// of backing in one batched scan. The per-fault path used to re-run
    /// the allocator after every single victim; a service batch knows its
    /// deficit up front (`PmaExhausted::shortfall`), so the scan keeps
    /// selecting victims until the deficit is covered and the retry is
    /// guaranteed to succeed. Each selection preserves the single-victim
    /// semantics exactly (pin skips re-enter as MRU per selection, same
    /// panic on exhaustion), so the eviction order — and therefore every
    /// simulated output — is bit-identical to the per-fault path.
    fn evict_batch(&mut self, exclude: VaBlockIdx, shortfall: u64, now: SimTime) -> SimDuration {
        let mut t = SimDuration::ZERO;
        let mut freed = 0u64;
        while freed < shortfall {
            let (cost, bytes) = self.evict_next(exclude, now + t);
            t += cost;
            freed += bytes;
        }
        t
    }

    /// Select and evict the least-recently-used VABlock (never
    /// `exclude`). Dirty pages are written back; backing returns to the
    /// PMA cache; the faulting path restart cost is charged (paper §V-A2
    /// "direct costs"). Returns the cost and the backing bytes freed.
    fn evict_next(&mut self, exclude: VaBlockIdx, now: SimTime) -> (SimDuration, u64) {
        let mut victim = None;
        let mut skipped_exclude = false;
        let mut skipped_pinned = std::mem::take(&mut self.evict_skipped);
        skipped_pinned.clear();
        while let Some(v) = self.lru.pop_lru() {
            if v == exclude {
                skipped_exclude = true;
                continue;
            }
            if self.thrash.is_pinned(v) {
                self.thrash.note_skip();
                self.spans.instant(SpanKind::ThrashSkip, now, v.0, 0);
                skipped_pinned.push(v);
                continue;
            }
            victim = Some(v);
            break;
        }
        // Pinned blocks fall back to eviction if nothing else exists;
        // otherwise they rejoin as MRU (the point of the pin).
        if victim.is_none() {
            victim = skipped_pinned.pop();
        }
        self.lru.reinsert_skipped(&mut skipped_pinned);
        self.evict_skipped = skipped_pinned;
        if skipped_exclude {
            // The faulting block goes back as MRU; it is being serviced.
            self.lru.touch(exclude);
        }
        let victim = victim.unwrap_or_else(|| {
            panic!(
                "GPU memory exhausted with no evictable VABlock \
                 (capacity {} bytes is too small for one batch's working set)",
                self.pma.capacity()
            )
        });
        self.evict_victim(victim, now)
    }

    /// Tear down `victim`: provenance verdicts, mask clears, writeback,
    /// PMA free, counters, trace. Returns the cost and bytes freed.
    fn evict_victim(&mut self, victim: VaBlockIdx, now: SimTime) -> (SimDuration, u64) {
        let resident = *self.space.resident(victim);
        let dirty_pages = self.space.dirty(victim).intersect_count(&resident) as u64;
        let resident_pages = resident.count() as u64;
        let backed_pages = self.space.backed_pages(victim) as u64;
        // Provenance: split the evicted pages by the touched-bit.
        // `resident ∖ touched` is exactly "arrived via prefetch,
        // never accessed" — the paper's prefetch–eviction antagonism
        // (`PrefetchEvicted`). Record each page's verdict in
        // `evicted_unused` (most recent eviction wins) so a refault
        // can tell evict-before-use churn from working-set churn,
        // and bump the generation stamp the masks are relative to.
        let used = resident.intersect(self.space.touched(victim));
        let unused = resident.difference(self.space.touched(victim));
        let unused_pages = unused.count() as u64;
        self.space.evicted_ever_mut(victim).or_with(&resident);
        let eu = self.space.evicted_unused_mut(victim);
        eu.or_with(&unused);
        eu.andnot_with(&used);
        self.space.clear_block_hot(victim);
        self.space.bump_eviction_count(victim);
        if self.maintain_trees {
            self.trees[victim.0 as usize].clear();
        }
        self.space.sync_block_residency(victim);

        let mut cost = self.cost.evict_fixed() + self.cost.unmap_pages(resident_pages);
        if dirty_pages > 0 {
            cost += self.cost.writeback_d2h(dirty_pages);
            self.xfer.record_d2h(dirty_pages * PAGE_SIZE);
            self.attribution.writeback_bytes += dirty_pages * PAGE_SIZE;
        }
        self.attribution.evicted_used_pages += resident_pages - unused_pages;
        self.attribution.prefetch_evicted_pages += unused_pages;
        {
            let bs = &mut self.block_stats[victim.0 as usize];
            bs.prefetch_evicted_pages += unused_pages;
            bs.evictions += 1;
        }
        self.charge_span(
            Category::Eviction,
            SpanKind::Evict,
            now,
            cost,
            victim.0,
            dirty_pages,
        );

        self.pma.free(backed_pages * PAGE_SIZE);
        self.counters.evictions += 1;
        self.counters.pages_evicted_migrated += dirty_pages;
        self.counters.pages_evicted_clean += resident_pages - dirty_pages;
        self.trace
            .record(EventKind::Eviction, victim.first_page().0, now);
        (cost, backed_pages * PAGE_SIZE)
    }

    /// Service an explicit prefetch hint (`cudaMemPrefetchAsync` style,
    /// paper §II's "performance hints"): migrate every non-resident valid
    /// page of `range` to the GPU outside the fault path, allocating
    /// backing (and evicting) as needed. Returns the virtual time
    /// consumed; charge it to the calling stream.
    pub fn prefetch_range(&mut self, range: &VaRange, now: SimTime) -> SimDuration {
        let mut t = SimDuration::ZERO;
        let first_block = range.start_page / PAGES_PER_VABLOCK as u64;
        let last_block = (range.end_page() - 1) / PAGES_PER_VABLOCK as u64;
        self.spans.begin(
            SpanKind::PrefetchHint,
            SpanCat::Batch,
            now,
            range.start_page,
            range.num_pages,
        );
        for vb in (first_block..=last_block).map(VaBlockIdx) {
            let wanted = self.space.valid(vb).difference(self.space.resident(vb));
            if wanted.is_empty() {
                continue;
            }
            t += self.charge_span(
                Category::ServiceMap,
                SpanKind::VablockSetup,
                now + t,
                self.cost.vablock_setup(),
                vb.0,
                0,
            );
            let g = self.cfg.alloc_granularity_pages;
            for unit_start in (0..PAGES_PER_VABLOCK).step_by(g) {
                if wanted.count_range(unit_start, g) == 0
                    || self.space.backed(vb).count_range(unit_start, g) > 0
                {
                    continue;
                }
                loop {
                    match self
                        .pma
                        .alloc(g as u64 * PAGE_SIZE, &self.cost, &mut self.rng)
                    {
                        Ok(grant) => {
                            t += self.charge_span(
                                Category::ServicePma,
                                SpanKind::PmaAlloc,
                                now + t,
                                grant.cost,
                                vb.0,
                                grant.calls,
                            );
                            self.counters.pma_calls += grant.calls;
                            break;
                        }
                        Err(e) => t += self.evict_batch(vb, e.shortfall(), now + t),
                    }
                }
                self.space.backed_mut(vb).set_range(unit_start, g);
                let zero = self.cost.page_zero(g as u64);
                t += self.charge_span(
                    Category::ServiceMigrate,
                    SpanKind::PageZero,
                    now + t,
                    zero,
                    vb.0,
                    g as u64,
                );
                self.counters.pages_zeroed += g as u64;
            }
            let n = wanted.count() as u64;
            let mig = self.cost.migrate_h2d(n);
            t += self.charge_span(
                Category::ServiceMigrate,
                SpanKind::MigrateH2d,
                now + t,
                mig,
                vb.0,
                n,
            );
            self.xfer.record_h2d(n * PAGE_SIZE);
            let map = self.cost.map_pages(n);
            t += self.charge_span(
                Category::ServiceMap,
                SpanKind::MapPages,
                now + t,
                map,
                vb.0,
                n,
            );
            self.space.resident_mut(vb).or_with(&wanted);
            self.space.prefetched_ever_mut(vb).or_with(&wanted);
            if self.maintain_trees {
                self.trees[vb.0 as usize].add_mask(&wanted);
            }
            self.space.sync_block_residency(vb);
            self.lru.touch(vb);
            self.counters.pages_hint_prefetched += n;
            // Provenance: hint-prefetched pages arrive untouched (the
            // `touched` mask is deliberately not set), so an eviction
            // before any GPU access classifies them `PrefetchEvicted`.
            self.attribution.hint_pages += n;
            if self.trace.is_enabled() {
                let base = vb.first_page().0;
                for off in wanted.iter_set() {
                    self.trace
                        .record(EventKind::Prefetch, base + off as u64, now + t);
                }
            }
        }
        self.counters.hint_prefetch_calls += 1;
        self.spans.end(
            SpanKind::PrefetchHint,
            SpanCat::Batch,
            now + t,
            range.start_page,
            0,
        );
        t
    }

    /// Service CPU-side access to `range` (paper §III-A: paged migration
    /// is bidirectional — a CPU touch of GPU-resident data far-faults on
    /// the host and migrates the pages back). Resident pages move
    /// device→host, are unmapped from the GPU, and their backing returns
    /// to the PMA cache block by block. A `write` access dirties nothing
    /// on the GPU side (the data now lives on the host). Returns the
    /// virtual time consumed.
    pub fn host_access_range(&mut self, range: &VaRange, now: SimTime) -> SimDuration {
        let mut t = SimDuration::ZERO;
        let first_block = range.start_page / PAGES_PER_VABLOCK as u64;
        let last_block = (range.end_page() - 1) / PAGES_PER_VABLOCK as u64;
        self.spans.begin(
            SpanKind::HostAccess,
            SpanCat::Batch,
            now,
            range.start_page,
            range.num_pages,
        );
        for vb in (first_block..=last_block).map(VaBlockIdx) {
            let resident = *self.space.resident(vb);
            if resident.is_empty() {
                continue;
            }
            let n = resident.count() as u64;
            // Host fault handling + migration back + GPU unmap/membar.
            let cost = self.cost.vablock_setup()
                + self.cost.writeback_d2h(n)
                + self.cost.unmap_pages(n)
                + self.cost.map_pages(0); // membar/TLB shootdown on the GPU
            t += self.charge_span(
                Category::ServiceMigrate,
                SpanKind::MigrateD2h,
                now + t,
                cost,
                vb.0,
                n,
            );
            self.xfer.record_d2h(n * PAGE_SIZE);
            self.attribution.host_migrated_bytes += n * PAGE_SIZE;
            *self.space.resident_mut(vb) = PageMask::EMPTY;
            *self.space.dirty_mut(vb) = PageMask::EMPTY;
            // Provenance: migrating back to the host is paged
            // bidirectional migration, not eviction thrash — reset
            // the migrated pages' touched-bit and eviction history
            // so their next GPU fault counts as ColdFirstTouch. Only
            // the migrated pages are cleared (word-wise AND-NOT), so
            // `clear_block_hot` — which wipes `touched` wholesale —
            // would be wrong here.
            self.space.touched_mut(vb).andnot_with(&resident);
            self.space.evicted_ever_mut(vb).andnot_with(&resident);
            self.space.evicted_unused_mut(vb).andnot_with(&resident);
            let backed_pages = self.space.backed_pages(vb) as u64;
            *self.space.backed_mut(vb) = PageMask::EMPTY;
            if self.maintain_trees {
                self.trees[vb.0 as usize].clear();
            }
            self.space.sync_block_residency(vb);
            self.pma.free(backed_pages * PAGE_SIZE);
            self.lru.remove(vb);
            self.counters.pages_migrated_to_host += n;
            if self.trace.is_enabled() {
                self.trace
                    .record(EventKind::Eviction, vb.first_page().0, now + t);
            }
        }
        self.counters.host_fault_calls += 1;
        self.spans.end(
            SpanKind::HostAccess,
            SpanCat::Batch,
            now + t,
            range.start_page,
            0,
        );
        t
    }

    /// Pages ever brought in by prefetching (fault-path or hints) that
    /// were never satisfied by their own fault — intersect with the GPU's
    /// actual page-use record to quantify prefetch waste (paper §VI-A).
    pub fn prefetched_pages(&self) -> impl Iterator<Item = gpu_model::GlobalPage> + '_ {
        (0..self.space.num_blocks()).flat_map(move |b| {
            let vb = VaBlockIdx(b as u64);
            let base = vb.first_page().0;
            self.space
                .prefetched_ever(vb)
                .iter_set()
                .map(move |off| gpu_model::GlobalPage(base + off as u64))
        })
    }

    /// The thrashing detector (pin statistics).
    pub fn thrash_detector(&self) -> &ThrashDetector {
        &self.thrash
    }

    /// Per-batch fault-count distribution (paper §III-D analysis).
    pub fn faults_per_batch(&self) -> &Histogram {
        &self.faults_per_batch
    }

    /// Per-batch VABlock-count distribution: low means well-coalesced
    /// service, high (≈ batch size) is the random worst case.
    pub fn vablocks_per_batch(&self) -> &Histogram {
        &self.vablocks_per_batch
    }

    /// Consume GPU access-counter notifications (paper §VI-B3). Under the
    /// stock `FaultLru` policy they are read and discarded (the stock
    /// driver leaves the feature unused); under `AccessCounterLru` each
    /// hot, backed VABlock is refreshed in the LRU. Returns the
    /// processing time to charge.
    pub fn note_access_notifications(
        &mut self,
        notifs: &[AccessNotification],
        granularity_pages: u64,
        now: SimTime,
    ) -> SimDuration {
        let t = self.cost.access_notifications(notifs.len() as u64);
        self.charge_span(
            Category::Preprocess,
            SpanKind::AccessNotify,
            now,
            t,
            notifs.len() as u64,
            0,
        );
        if !matches!(self.cfg.eviction, EvictionPolicy::AccessCounterLru) {
            return t;
        }
        for n in notifs {
            let vb = GlobalPage(n.first_page(granularity_pages)).vablock();
            if (vb.0 as usize) < self.space.num_blocks() && !self.space.is_unbacked(vb) {
                self.lru.touch(vb);
            }
        }
        t
    }

    /// Per-category driver timers.
    pub fn timers(&self) -> &Timers {
        &self.timers
    }

    /// Driver event counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Interconnect traffic log.
    pub fn transfer_log(&self) -> &TransferLog {
        &self.xfer
    }

    /// Fault-provenance ledger (per-cause totals partitioning
    /// [`Counters`] and the transfer log exactly).
    pub fn attribution(&self) -> &Attribution {
        &self.attribution
    }

    /// Top-`k` offender VABlocks by avoidable cost (refaults plus
    /// prefetch-evicted pages), deterministically ordered.
    pub fn top_offenders(&self, k: usize) -> Vec<Offender> {
        metrics::top_offenders(&self.block_stats, k)
    }

    /// Captured trace events (empty unless `capture_trace`).
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// Captured batch-lifecycle spans (empty unless `record_spans`).
    pub fn spans(&self) -> &SpanRecorder {
        &self.spans
    }

    /// Mutable span recorder, for the simulation loop to add
    /// engine-level instants (replays, fault-buffer overflows) to the
    /// driver's timeline.
    pub fn spans_mut(&mut self) -> &mut SpanRecorder {
        &mut self.spans
    }

    /// The resolved prefetch policy in effect.
    pub fn resolved_prefetch(&self) -> ResolvedPrefetch {
        self.resolved_prefetch
    }

    /// The driver configuration.
    pub fn config(&self) -> &DriverConfig {
        &self.cfg
    }

    /// GPU memory currently backing VABlocks (bytes).
    pub fn gpu_memory_in_use(&self) -> u64 {
        self.pma.in_use()
    }

    /// Host wall-time split of the two-phase batch service this driver
    /// has accumulated so far (also flushed to the process-global
    /// [`metrics::phase`] totals when the driver drops).
    pub fn service_phase_wall(&self) -> &ServicePhaseWall {
        &self.phase_wall
    }

    /// Service-planning workers in effect (1 = fully serial).
    pub fn service_workers(&self) -> usize {
        self.pool.workers()
    }

    /// Snapshot every sampled signal at simulated time `t`. All inputs
    /// are simulated state (counters, transfer log, PMA occupancy, LRU
    /// length, thrash scores, per-pass sim-time percentiles), which is
    /// the determinism argument for the whole timeseries: no host-side
    /// value can leak into a sample.
    fn snapshot(&self, t: SimTime) -> Sample {
        let h2d = self.counters.pages_migrated_h2d();
        let mut s = Sample {
            t_ns: t.as_nanos(),
            faults_fetched: self.counters.faults_fetched,
            duplicate_faults: self.counters.duplicate_faults,
            pages_faulted_in: self.counters.pages_faulted_in,
            pages_prefetched: self.counters.pages_prefetched,
            migrated_bytes_h2d: self.xfer.h2d_bytes,
            migrated_bytes_d2h: self.xfer.d2h_bytes,
            evictions: self.counters.evictions,
            pages_evicted: self.counters.pages_evicted_total(),
            thrash_pins: self.counters.thrash_pins,
            refaults: self.thrash.refaults(),
            replays: self.counters.replays,
            batches: self.counters.batches,
            resident_pages: self.pma.in_use() / PAGE_SIZE,
            lru_blocks: self.lru.tracked_blocks(),
            prefetch_coverage_bp: Sample::coverage_bp(self.counters.pages_prefetched, h2d),
            attr_cold_faults: self.attribution.cold_faults,
            attr_refault_used_faults: self.attribution.refault_used_faults,
            attr_refault_unused_faults: self.attribution.refault_unused_faults,
            attr_prefetch_hit_faults: self.attribution.prefetch_hit_faults,
            attr_replay_dup_faults: self.attribution.replay_dup_faults,
            attr_prefetch_evicted_pages: self.attribution.prefetch_evicted_pages,
            attr_evicted_used_pages: self.attribution.evicted_used_pages,
            ..Sample::default()
        };
        s.set_batch_latency(&self.pass_ns);
        s
    }

    /// Force a final sample at `now` so the stream's tail carries the
    /// exact end-of-run totals (the simulation loop calls this before it
    /// builds its report; reconciliation against [`Counters`] and the
    /// transfer log is asserted in the harness tests).
    pub fn finalize_timeseries(&mut self, now: SimTime) {
        if self.sampler.is_enabled() {
            let sample = self.snapshot(now);
            self.sampler.force(sample);
        }
    }

    /// Move the finished telemetry stream out of the driver.
    pub fn take_timeseries(&mut self) -> Timeseries {
        self.sampler.take()
    }
}

impl Drop for UvmDriver {
    fn drop(&mut self) {
        metrics::phase::record(&self.phase_wall);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_model::{AccessType, FaultBufferConfig, FaultEntry, GlobalPage};
    use sim_engine::units::{MIB, VABLOCK_SIZE};

    fn push_fault(buf: &mut FaultBuffer, page: u64, write: bool, utlb: u32) {
        buf.push(FaultEntry {
            page: GlobalPage(page),
            access: if write {
                AccessType::Write
            } else {
                AccessType::Read
            },
            timestamp: SimTime::ZERO,
            utlb,
        });
    }

    fn driver_with(cfg: DriverConfig, alloc_bytes: u64) -> UvmDriver {
        let mut space = ManagedSpace::new();
        space.alloc(alloc_bytes, "data");
        UvmDriver::new(cfg, CostModel::default(), space, SimRng::from_seed(7))
    }

    fn now() -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(1)
    }

    #[test]
    fn single_fault_without_prefetch_migrates_one_page() {
        let cfg = DriverConfig {
            prefetch: PrefetchPolicy::Disabled,
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, 8 * VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        push_fault(&mut buf, 100, false, 0);
        let r = d.process_pass(&mut buf, now());
        assert_eq!(r.fetched, 1);
        assert_eq!(r.pages_migrated, 1);
        assert_eq!(r.replays, 1);
        assert!(d.space().resident(VaBlockIdx(0)).get(100));
        assert_eq!(d.counters().pages_faulted_in, 1);
        assert_eq!(d.counters().pages_prefetched, 0);
        assert!(r.time > SimDuration::ZERO);
    }

    #[test]
    fn stock_prefetch_pulls_big_page() {
        let cfg = DriverConfig {
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, 8 * VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        push_fault(&mut buf, 100, false, 0); // big page 6: pages 96..112
        let r = d.process_pass(&mut buf, now());
        assert_eq!(r.pages_migrated, 16);
        assert_eq!(d.counters().pages_prefetched, 15);
        let resident = d.space().resident(VaBlockIdx(0));
        assert!(resident.get(96) && resident.get(111));
    }

    #[test]
    fn write_fault_marks_dirty() {
        let cfg = DriverConfig {
            prefetch: PrefetchPolicy::Disabled,
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        push_fault(&mut buf, 3, true, 0);
        push_fault(&mut buf, 4, false, 0);
        d.process_pass(&mut buf, now());
        let dirty = d.space().dirty(VaBlockIdx(0));
        assert!(dirty.get(3));
        assert!(!dirty.get(4));
    }

    #[test]
    fn batch_flush_discards_unfetched_entries() {
        let cfg = DriverConfig {
            batch_size: 4,
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, 8 * VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        for p in 0..10 {
            push_fault(&mut buf, p * 600, false, (p % 4) as u32);
        }
        let r = d.process_pass(&mut buf, now());
        assert_eq!(r.fetched, 4);
        assert!(buf.is_empty(), "BatchFlush empties the buffer");
        assert_eq!(d.counters().buffer_flushes, 1);
    }

    #[test]
    fn batch_policy_leaves_entries() {
        let cfg = DriverConfig {
            batch_size: 4,
            replay_policy: ReplayPolicy::Batch,
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, 8 * VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        for p in 0..10 {
            push_fault(&mut buf, p * 600, false, (p % 4) as u32);
        }
        let r = d.process_pass(&mut buf, now());
        assert_eq!(r.fetched, 4);
        assert_eq!(buf.len(), 6, "Batch policy does not flush");
        assert_eq!(r.replays, 1);
        assert_eq!(d.counters().buffer_flushes, 0);
    }

    #[test]
    fn once_policy_replays_only_when_drained() {
        let cfg = DriverConfig {
            batch_size: 4,
            replay_policy: ReplayPolicy::Once,
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, 8 * VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        for p in 0..6 {
            push_fault(&mut buf, p * 600, false, 0);
        }
        let r1 = d.process_pass(&mut buf, now());
        assert_eq!(r1.replays, 0, "buffer still has entries");
        let r2 = d.process_pass(&mut buf, now());
        assert_eq!(r2.replays, 1, "buffer drained");
    }

    #[test]
    fn block_policy_replays_per_group() {
        let cfg = DriverConfig {
            replay_policy: ReplayPolicy::Block,
            prefetch: PrefetchPolicy::Disabled,
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, 8 * VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        push_fault(&mut buf, 0, false, 0); // block 0
        push_fault(&mut buf, 600, false, 1); // block 1
        push_fault(&mut buf, 1100, false, 2); // block 2
        let r = d.process_pass(&mut buf, now());
        assert_eq!(r.replays, 3);
    }

    #[test]
    fn eviction_frees_lru_block() {
        // GPU memory of exactly 2 VABlocks; fault 3 blocks in turn.
        let cfg = DriverConfig {
            prefetch: PrefetchPolicy::Disabled,
            gpu_memory_bytes: 2 * VABLOCK_SIZE,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, 4 * VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        push_fault(&mut buf, 0, true, 0);
        d.process_pass(&mut buf, now());
        push_fault(&mut buf, 512, false, 0);
        d.process_pass(&mut buf, now());
        assert_eq!(d.counters().evictions, 0);
        push_fault(&mut buf, 1024, false, 0);
        d.process_pass(&mut buf, now());
        assert_eq!(d.counters().evictions, 1);
        assert!(
            d.space().resident(VaBlockIdx(0)).is_empty(),
            "block 0 was LRU and evicted"
        );
        assert_eq!(d.space().eviction_count(VaBlockIdx(0)), 1);
        // The write-faulted page was written back.
        assert_eq!(d.counters().pages_evicted_migrated, 1);
        assert!(d.transfer_log().d2h_bytes > 0);
    }

    #[test]
    fn eviction_never_picks_the_faulting_block() {
        let cfg = DriverConfig {
            prefetch: PrefetchPolicy::Disabled,
            gpu_memory_bytes: VABLOCK_SIZE,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, 4 * VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        push_fault(&mut buf, 0, false, 0);
        d.process_pass(&mut buf, now());
        // Re-fault the same block alongside a new one; servicing block 0's
        // new page must not evict block 0 itself mid-service... fault a
        // page in block 1, which must evict block 0 (the only other).
        push_fault(&mut buf, 513, false, 0);
        d.process_pass(&mut buf, now());
        assert!(d.space().resident(VaBlockIdx(1)).get(1));
        assert!(d.space().resident(VaBlockIdx(0)).is_empty());
    }

    #[test]
    fn lazy_granularity_backs_only_touched_units() {
        let cfg = DriverConfig {
            prefetch: PrefetchPolicy::Disabled,
            alloc_granularity_pages: 16,
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        push_fault(&mut buf, 0, false, 0);
        d.process_pass(&mut buf, now());
        assert_eq!(d.space().backed_pages(VaBlockIdx(0)), 16);
        assert_eq!(d.gpu_memory_in_use(), 16 * PAGE_SIZE);
        // Stock granularity backs the whole block.
        let cfg = DriverConfig {
            prefetch: PrefetchPolicy::Disabled,
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        push_fault(&mut buf, 0, false, 0);
        d.process_pass(&mut buf, now());
        assert_eq!(d.space().backed_pages(VaBlockIdx(0)), 512);
    }

    #[test]
    fn access_counter_policy_refreshes_lru() {
        let cfg = DriverConfig {
            prefetch: PrefetchPolicy::Disabled,
            eviction: EvictionPolicy::AccessCounterLru,
            gpu_memory_bytes: 2 * VABLOCK_SIZE,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, 4 * VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        push_fault(&mut buf, 0, false, 0);
        d.process_pass(&mut buf, now());
        push_fault(&mut buf, 512, false, 0);
        d.process_pass(&mut buf, now());
        // GPU keeps touching block 0 without faulting: the access
        // counters notify the driver about region 0.
        let t = d.note_access_notifications(
            &[gpu_model::AccessNotification {
                region: 0,
                count: 256,
            }],
            512,
            now(),
        );
        assert!(t > SimDuration::ZERO);
        // A third block faults: block 1 (not 0) must be evicted.
        push_fault(&mut buf, 1024, false, 0);
        d.process_pass(&mut buf, now());
        assert!(!d.space().resident(VaBlockIdx(0)).is_empty());
        assert!(d.space().resident(VaBlockIdx(1)).is_empty());
    }

    #[test]
    fn adaptive_prefetch_disables_when_oversubscribed() {
        let cfg = DriverConfig {
            prefetch: PrefetchPolicy::Adaptive {
                undersubscribed_threshold: 1,
            },
            gpu_memory_bytes: 2 * VABLOCK_SIZE,
            ..DriverConfig::default()
        };
        let d = driver_with(cfg, 4 * VABLOCK_SIZE);
        assert_eq!(d.resolved_prefetch(), ResolvedPrefetch::Disabled);
        let cfg = DriverConfig {
            prefetch: PrefetchPolicy::Adaptive {
                undersubscribed_threshold: 1,
            },
            gpu_memory_bytes: 8 * VABLOCK_SIZE,
            ..DriverConfig::default()
        };
        let d = driver_with(cfg, 4 * VABLOCK_SIZE);
        assert!(matches!(
            d.resolved_prefetch(),
            ResolvedPrefetch::Density { threshold: 1, .. }
        ));
    }

    #[test]
    fn sequential_policy_prefetches_following_pages() {
        let cfg = DriverConfig {
            prefetch: PrefetchPolicy::Sequential { degree: 8 },
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        push_fault(&mut buf, 100, false, 0);
        let r = d.process_pass(&mut buf, now());
        assert_eq!(r.pages_migrated, 9, "fault + next 8");
        let resident = d.space().resident(VaBlockIdx(0));
        assert!(resident.get(100) && resident.get(108));
        assert!(!resident.get(99) && !resident.get(109));
        assert_eq!(d.counters().pages_prefetched, 8);
    }

    #[test]
    fn first_pass_charges_first_touch_overhead() {
        let cfg = DriverConfig {
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        push_fault(&mut buf, 0, false, 0);
        let r1 = d.process_pass(&mut buf, now());
        push_fault(&mut buf, 200, false, 0);
        let r2 = d.process_pass(&mut buf, now());
        assert!(
            r1.time > r2.time,
            "first pass pays one-time init: {} vs {}",
            r1.time,
            r2.time
        );
    }

    #[test]
    fn trace_captures_faults_prefetches_evictions() {
        let cfg = DriverConfig {
            capture_trace: true,
            gpu_memory_bytes: 2 * VABLOCK_SIZE,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, 4 * VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        for b in 0..3 {
            push_fault(&mut buf, b * 512, false, 0);
            d.process_pass(&mut buf, now());
        }
        let kinds: Vec<EventKind> = d.trace().events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::Fault));
        assert!(kinds.contains(&EventKind::Prefetch));
        assert!(kinds.contains(&EventKind::Eviction));
    }

    #[test]
    fn spans_reconcile_with_timers_and_balance() {
        use metrics::SpanPhase;
        // Small memory forces evictions; prefetch + thrash stress every
        // span site on the fault path.
        let cfg = DriverConfig {
            record_spans: true,
            gpu_memory_bytes: 2 * VABLOCK_SIZE,
            thrash: ThrashConfig {
                enabled: true,
                ..ThrashConfig::default()
            },
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, 8 * VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        let mut clock = now();
        for round in 0..6u64 {
            push_fault(&mut buf, (round % 4) * 512, round % 2 == 0, 0);
            let r = d.process_pass(&mut buf, clock);
            clock += r.time;
        }
        clock += d.prefetch_range(
            &VaRange {
                name: "hint".into(),
                start_page: 4 * 512,
                num_pages: 512,
            },
            clock,
        );
        d.host_access_range(
            &VaRange {
                name: "host".into(),
                start_page: 0,
                num_pages: 512,
            },
            clock,
        );
        let trace = d.spans().to_trace();
        assert!(trace.dropped == 0, "default capacity fits this run");
        assert_eq!(
            trace.reconciled_totals(),
            *d.timers(),
            "leaf spans must sum to the driver timers per category"
        );
        let begins = trace.events.iter().filter(|e| e.phase == SpanPhase::Begin).count();
        let ends = trace.events.iter().filter(|e| e.phase == SpanPhase::End).count();
        assert_eq!(begins, ends);
        assert!(trace.events.iter().any(|e| e.kind == SpanKind::Evict));
    }

    #[test]
    fn spans_off_by_default_records_nothing() {
        let cfg = DriverConfig {
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        push_fault(&mut buf, 0, false, 0);
        d.process_pass(&mut buf, now());
        assert!(!d.spans().is_enabled());
        assert!(d.spans().is_empty());
    }

    #[test]
    fn empty_pass_still_replays() {
        let cfg = DriverConfig {
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        let r = d.process_pass(&mut buf, now());
        assert_eq!(r.fetched, 0);
        assert_eq!(r.replays, 1, "overflow path: replay to re-raise faults");
    }

    #[test]
    fn worker_count_does_not_change_simulation() {
        // 12 faulting blocks per pass (≥ the inline threshold, so four
        // workers genuinely run the pool) under memory pressure, so plans,
        // evictions, replans and RNG draws are all exercised.
        let run = |workers: usize| {
            let cfg = DriverConfig {
                gpu_memory_bytes: 4 * VABLOCK_SIZE,
                service_workers: workers,
                ..DriverConfig::default()
            };
            let mut d = driver_with(cfg, 16 * VABLOCK_SIZE);
            let mut buf = FaultBuffer::new(FaultBufferConfig::default());
            let mut clock = now();
            let mut results = Vec::new();
            for round in 0..8u64 {
                for b in 0..12u64 {
                    push_fault(&mut buf, b * 512 + (round * 7) % 512, b % 3 == 0, 0);
                }
                let r = d.process_pass(&mut buf, clock);
                clock += r.time;
                results.push(r);
            }
            let resid: Vec<u64> = (0..16)
                .map(|b| d.space().resident(VaBlockIdx(b)).count() as u64)
                .collect();
            (
                results,
                *d.timers(),
                *d.counters(),
                resid,
                *d.attribution(),
                d.top_offenders(8),
            )
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.0, parallel.0, "pass results diverged");
        assert_eq!(serial.1, parallel.1, "timers diverged");
        assert_eq!(serial.2, parallel.2, "counters diverged");
        assert_eq!(serial.3, parallel.3, "residency diverged");
        assert_eq!(serial.4, parallel.4, "attribution diverged");
        assert_eq!(serial.5, parallel.5, "offender table diverged");
    }

    #[test]
    fn sampling_off_by_default_yields_empty_stream() {
        let cfg = DriverConfig {
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        push_fault(&mut buf, 0, false, 0);
        d.process_pass(&mut buf, now());
        d.finalize_timeseries(now());
        let ts = d.take_timeseries();
        assert!(ts.samples.is_empty());
        assert_eq!(ts.compactions, 0);
    }

    /// Drive several passes of eviction-pressured faults with sampling on.
    fn sampled_run(workers: usize) -> (UvmDriver, SimTime) {
        let cfg = DriverConfig {
            gpu_memory_bytes: 4 * VABLOCK_SIZE,
            service_workers: workers,
            timeseries: TimeseriesConfig {
                enabled: true,
                interval_ns: 1_000,
                capacity: 16,
            },
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, 16 * VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        let mut clock = now();
        for round in 0..8u64 {
            for b in 0..12u64 {
                push_fault(&mut buf, b * 512 + (round * 7) % 512, b % 3 == 0, 0);
            }
            let r = d.process_pass(&mut buf, clock);
            clock += r.time;
        }
        (d, clock)
    }

    #[test]
    fn forced_final_sample_reconciles_with_totals() {
        let (mut d, clock) = sampled_run(1);
        d.finalize_timeseries(clock);
        let c = *d.counters();
        let xfer = *d.transfer_log();
        let attribution = *d.attribution();
        let resident = d.gpu_memory_in_use() / PAGE_SIZE;
        let ts = d.take_timeseries();
        assert!(!ts.samples.is_empty());
        let last = *ts.last().expect("finalized stream has a tail");
        assert_eq!(last.t_ns, clock.as_nanos());
        assert_eq!(last.faults_fetched, c.faults_fetched);
        assert_eq!(last.pages_faulted_in, c.pages_faulted_in);
        assert_eq!(last.pages_prefetched, c.pages_prefetched);
        assert_eq!(last.migrated_bytes_h2d, xfer.h2d_bytes);
        assert_eq!(last.migrated_bytes_d2h, xfer.d2h_bytes);
        assert_eq!(last.evictions, c.evictions);
        assert_eq!(last.pages_evicted, c.pages_evicted_total());
        assert_eq!(last.replays, c.replays);
        assert_eq!(last.batches, c.batches);
        assert_eq!(last.resident_pages, resident);
        assert_eq!(
            last.prefetch_coverage_bp,
            Sample::coverage_bp(c.pages_prefetched, c.pages_migrated_h2d())
        );
        let a = attribution;
        assert_eq!(last.attr_cold_faults, a.cold_faults);
        assert_eq!(last.attr_refault_used_faults, a.refault_used_faults);
        assert_eq!(last.attr_refault_unused_faults, a.refault_unused_faults);
        assert_eq!(last.attr_prefetch_hit_faults, a.prefetch_hit_faults);
        assert_eq!(last.attr_replay_dup_faults, a.replay_dup_faults);
        assert_eq!(last.attr_prefetch_evicted_pages, a.prefetch_evicted_pages);
        assert_eq!(last.attr_evicted_used_pages, a.evicted_used_pages);
    }

    #[test]
    fn sampled_stream_identical_across_worker_counts() {
        let run = |workers: usize| {
            let (mut d, clock) = sampled_run(workers);
            d.finalize_timeseries(clock);
            d.take_timeseries()
        };
        let serial = run(1);
        let parallel = run(4);
        assert!(!serial.samples.is_empty());
        assert_eq!(serial, parallel, "sample streams diverged across workers");
    }

    #[test]
    fn sampling_compacts_instead_of_truncating() {
        // Capacity 16 with a 1 µs grid across 8 eviction-heavy passes
        // overflows the buffer; compaction must keep first-to-last
        // coverage rather than dropping the tail.
        let (mut d, clock) = sampled_run(1);
        d.finalize_timeseries(clock);
        let ts = d.take_timeseries();
        if ts.compactions > 0 {
            assert_eq!(ts.interval_ns, ts.base_interval_ns << ts.compactions);
        }
        assert!(ts.samples.len() <= 16);
        assert_eq!(ts.last().unwrap().t_ns, clock.as_nanos());
    }

    #[test]
    fn stale_plan_replans_after_intra_batch_eviction() {
        // Memory for two blocks; the pool must be engaged (workers > 1,
        // ≥ MIN_PARALLEL_GROUPS groups), since the fused serial path plans
        // against current state and never goes stale. Blocks 8 and 9
        // become resident first, so they head the LRU. The next batch
        // faults blocks 0..=7 and a fresh page of 9: backing blocks 0 and
        // 1 evicts 8 then 9, so block 9's group — planned against the
        // pre-eviction snapshot, committed last — must be recomputed.
        let cfg = DriverConfig {
            prefetch: PrefetchPolicy::Disabled,
            gpu_memory_bytes: 2 * VABLOCK_SIZE,
            service_workers: 4,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, 10 * VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        push_fault(&mut buf, 8 * 512, false, 0);
        push_fault(&mut buf, 9 * 512, false, 0);
        d.process_pass(&mut buf, now());
        assert_eq!(d.service_phase_wall().plan_replans, 0);
        for b in 0..=7u64 {
            push_fault(&mut buf, b * 512 + 1, false, 0);
        }
        push_fault(&mut buf, 9 * 512 + 1, false, 0);
        d.process_pass(&mut buf, now());
        assert!(
            d.service_phase_wall().plan_replans >= 1,
            "block 9's plan went stale: {} replans",
            d.service_phase_wall().plan_replans
        );
        // The replanned service still landed the freshly faulted page,
        // and not the evicted batch-start residency.
        assert!(d.space().resident(VaBlockIdx(9)).get(1));
        assert!(!d.space().resident(VaBlockIdx(9)).get(0));
    }

    #[test]
    fn drop_flushes_phase_wall_to_global_totals() {
        let cfg = DriverConfig {
            gpu_memory_bytes: 64 * MIB,
            service_workers: 2,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, 8 * VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        // 8 distinct blocks ≥ MIN_PARALLEL_GROUPS, so the batch goes
        // through the pool and counts as planned groups.
        for b in 0..8u64 {
            push_fault(&mut buf, b * 512, false, 0);
        }
        d.process_pass(&mut buf, now());
        assert_eq!(d.service_phase_wall().planned_groups, 8);
        assert_eq!(d.service_phase_wall().parallel_batches, 1);
        assert_eq!(d.service_workers(), 2);
        drop(d);
        let g = metrics::phase::take();
        assert!(g.planned_groups >= 8, "drop published the accumulator");
        assert!(g.workers >= 2);
    }

    #[test]
    fn attribution_reconciles_across_every_migration_path() {
        // Exercise all five fault causes and all byte paths: density
        // prefetch + tight memory (evictions, refaults, prefetch-evicted
        // pages), a hint prefetch, a host access, and write faults for
        // dirty write-backs.
        let cfg = DriverConfig {
            gpu_memory_bytes: 4 * VABLOCK_SIZE,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, 16 * VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        let mut clock = now();
        clock += d.prefetch_range(
            &VaRange {
                name: "hint".into(),
                start_page: 14 * 512,
                num_pages: 512,
            },
            clock,
        );
        for round in 0..10u64 {
            for b in 0..12u64 {
                push_fault(&mut buf, b * 512 + (round * 11) % 512, b % 2 == 0, 0);
            }
            let r = d.process_pass(&mut buf, clock);
            clock += r.time;
        }
        clock += d.host_access_range(
            &VaRange {
                name: "host".into(),
                start_page: 0,
                num_pages: 2 * 512,
            },
            clock,
        );
        // One more faulting round so post-host-migration pages refault
        // as cold (history was reset).
        for b in 0..4u64 {
            push_fault(&mut buf, b * 512 + 7, false, 0);
        }
        let r = d.process_pass(&mut buf, clock);
        clock += r.time;

        let a = *d.attribution();
        let c = *d.counters();
        let xfer = *d.transfer_log();
        assert!(c.evictions > 0, "run must hit eviction pressure");
        assert!(a.refault_used_faults + a.refault_unused_faults > 0, "run must refault");
        assert!(a.prefetch_evicted_pages > 0, "run must evict prefetched-unused pages");
        a.reconcile(&c, xfer.h2d_bytes, xfer.d2h_bytes)
            .unwrap_or_else(|(what, attr, obs)| {
                panic!("partition violated: {what}: {attr} != {obs}")
            });
        // Offenders: every listed block must have nonzero badness, in
        // descending order.
        let top = d.top_offenders(4);
        assert!(!top.is_empty());
        for w in top.windows(2) {
            assert!(w[0].stats.badness() >= w[1].stats.badness());
        }
    }

    #[test]
    fn refault_split_tracks_evict_before_use() {
        // Two blocks of memory, no prefetcher: fault one page of block 0
        // (touched), force its eviction, then refault it — a *used*
        // refault. Then hint-prefetch block 3 (untouched), force its
        // eviction, and fault one of its pages — an *evict-before-use*
        // refault.
        let cfg = DriverConfig {
            prefetch: PrefetchPolicy::Disabled,
            gpu_memory_bytes: 2 * VABLOCK_SIZE,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, 6 * VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        let mut clock = now();
        push_fault(&mut buf, 0, false, 0); // block 0, touched
        clock += d.process_pass(&mut buf, clock).time;
        clock += d.prefetch_range(
            // block 3 arrives untouched
            &VaRange {
                name: "hint".into(),
                start_page: 3 * 512,
                num_pages: 512,
            },
            clock,
        );
        // Memory is now full (blocks 0 and 3). Fault two fresh blocks:
        // the first pushes out block 0 (LRU, touched), the second pushes
        // out block 3 (untouched).
        push_fault(&mut buf, 4 * 512, false, 0);
        clock += d.process_pass(&mut buf, clock).time;
        assert_eq!(d.counters().evictions, 1);
        assert_eq!(d.attribution().evicted_used_pages, 1);
        push_fault(&mut buf, 5 * 512, false, 0);
        clock += d.process_pass(&mut buf, clock).time;
        assert_eq!(d.attribution().prefetch_evicted_pages, 512);
        // Refault block 0's page: it was touched before eviction.
        push_fault(&mut buf, 0, false, 0);
        clock += d.process_pass(&mut buf, clock).time;
        assert_eq!(d.attribution().refault_used_faults, 1);
        // Refault a block-3 page: evicted before any use.
        push_fault(&mut buf, 3 * 512 + 5, false, 0);
        clock += d.process_pass(&mut buf, clock).time;
        assert_eq!(d.attribution().refault_unused_faults, 1);
        let a = d.attribution();
        let c = d.counters();
        let x = d.transfer_log();
        a.reconcile(c, x.h2d_bytes, x.d2h_bytes).expect("partitions hold");
    }

    #[test]
    #[should_panic(expected = "no evictable VABlock")]
    fn exhaustion_with_no_victim_panics() {
        // GPU memory of one 16-page unit; the only backed block is the one
        // being serviced, so there is no eviction victim.
        let cfg = DriverConfig {
            prefetch: PrefetchPolicy::Disabled,
            alloc_granularity_pages: 16,
            gpu_memory_bytes: 16 * PAGE_SIZE,
            ..DriverConfig::default()
        };
        let mut d = driver_with(cfg, VABLOCK_SIZE);
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        push_fault(&mut buf, 0, false, 0);
        d.process_pass(&mut buf, now());
        // A second unit of the same block cannot be backed.
        push_fault(&mut buf, 100, false, 0);
        d.process_pass(&mut buf, now());
    }
}
