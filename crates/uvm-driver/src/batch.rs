//! Fault-batch pre-processing (paper §III-C).
//!
//! Per pass, the driver fetches up to a batch (default 256) of fault
//! entries from the hardware buffer, performs bookkeeping and logical
//! checks (dropping duplicates and faults for pages that are already
//! resident — stale entries left by non-flushing replay policies), and
//! sorts the survivors into their VABlock bins so servicing can coalesce
//! per-block work.
//!
//! Binning is sort-then-group over a [`BatchArena`] the driver owns:
//! entries are sorted by page id (equivalently `(vablock, offset)`), so
//! each block's faults form one contiguous run and the groups come out in
//! ascending block order with no per-batch map allocation. Once the
//! arena's buffers have grown to the workload's high-water mark, a batch
//! performs zero heap allocations.

use crate::address_space::ManagedSpace;
use gpu_model::{AccessType, FaultBuffer, FaultEntry, PageMask, ServicePlan, VaBlockIdx};
use sim_engine::SimTime;

/// The de-duplicated faults of one VABlock within a batch.
#[derive(Debug, Clone)]
pub struct FaultGroup {
    /// The VABlock.
    pub block: VaBlockIdx,
    /// New (non-duplicate, non-resident) faulted pages.
    pub fault_mask: PageMask,
    /// Subset of `fault_mask` faulted with write access.
    pub write_mask: PageMask,
    /// Raw entries that contributed (before deduplication).
    pub num_entries: u64,
}

/// One pre-processed batch.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    /// Per-VABlock fault groups in ascending block order (the sort).
    pub groups: Vec<FaultGroup>,
    /// Entries fetched from the buffer.
    pub fetched: u64,
    /// Entries dropped as duplicates or already-resident.
    pub duplicates: u64,
    /// Subset of `duplicates` absorbed by a resident page the prefetcher
    /// had migrated but the GPU had not yet touched — the fault-side
    /// `PrefetchHit` signal (the prefetch arrived in time). The rest of
    /// `duplicates` are `ReplayDuplicate`s.
    pub prefetch_hits: u64,
    /// Polling iterations on not-yet-ready entries.
    pub polls: u64,
}

impl Batch {
    /// Total new faulted pages across all groups.
    pub fn new_fault_pages(&self) -> u64 {
        self.groups
            .iter()
            .map(|g| g.fault_mask.count() as u64)
            .sum()
    }
}

/// Reusable batch pre-processing buffers, held by the driver across
/// passes. `entries` is the fetch staging area; `batch` keeps its group
/// vector's capacity between batches.
#[derive(Debug, Clone, Default)]
pub struct BatchArena {
    entries: Vec<FaultEntry>,
    /// The most recently gathered batch.
    pub batch: Batch,
    /// Per-group service plans, parallel to `batch.groups` (filled by the
    /// planning phase, consumed by the ordered commit). Kept here so its
    /// capacity is reused across passes.
    pub plans: Vec<ServicePlan>,
}

/// Fetch and pre-process one batch of faults into `arena.batch`,
/// reusing the arena's buffers (allocation-free at steady state).
///
/// Takes the space mutably because stale entries on resident pages mark
/// the page *touched* — a fault entry absorbed by a prefetched,
/// not-yet-accessed page is the provenance ledger's `PrefetchHit`, and
/// the first such absorption proves the GPU has now used the page.
pub fn gather_into(
    buffer: &mut FaultBuffer,
    batch_size: usize,
    now: SimTime,
    space: &mut ManagedSpace,
    arena: &mut BatchArena,
) {
    arena.entries.clear();
    let polls = buffer.fetch_into(&mut arena.entries, batch_size, now);
    let batch = &mut arena.batch;
    batch.groups.clear();
    batch.fetched = arena.entries.len() as u64;
    batch.duplicates = 0;
    batch.prefetch_hits = 0;
    batch.polls = polls;

    // Sort by raw page id — identical to (vablock, offset) order — so each
    // block's faults form one contiguous run. Masks and entry counts are
    // order-insensitive, so an unstable sort changes nothing observable.
    arena.entries.sort_unstable_by_key(|e| e.page.0);

    for e in &arena.entries {
        let vb = e.page.vablock();
        let off = e.page.offset_in_vablock();
        debug_assert!(space.valid(vb).get(off), "fault outside any allocation");
        if !space.valid(vb).get(off) {
            // Release-mode hardening: a malformed trace faulting outside
            // any allocation is dropped as spurious rather than allowed
            // to corrupt residency bookkeeping.
            batch.duplicates += 1;
            continue;
        }
        if space.resident(vb).get(off) {
            // Stale entry: the page was serviced by an earlier batch (the
            // Batch/Block policies leave such entries behind) — or, if the
            // page arrived via prefetch and was never accessed, the
            // prefetcher beat the fault: a PrefetchHit. `touched` is not
            // part of the dense residency index, so no sync is needed.
            batch.duplicates += 1;
            if !space.touched(vb).get(off) {
                batch.prefetch_hits += 1;
                space.touched_mut(vb).set(off);
            }
            continue;
        }
        if batch.groups.last().map(|g| g.block) != Some(vb) {
            batch.groups.push(FaultGroup {
                block: vb,
                fault_mask: PageMask::EMPTY,
                write_mask: PageMask::EMPTY,
                num_entries: 0,
            });
        }
        let group = batch.groups.last_mut().expect("group pushed above");
        group.num_entries += 1;
        if !group.fault_mask.set(off) {
            // Same page faulted from two µTLBs within this batch.
            batch.duplicates += 1;
        }
        if matches!(e.access, AccessType::Write) {
            group.write_mask.set(off);
        }
    }
}

/// Fetch and pre-process one batch of faults (convenience wrapper over
/// [`gather_into`] with a throwaway arena).
pub fn gather(
    buffer: &mut FaultBuffer,
    batch_size: usize,
    now: SimTime,
    space: &mut ManagedSpace,
) -> Batch {
    let mut arena = BatchArena::default();
    gather_into(buffer, batch_size, now, space, &mut arena);
    arena.batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_model::{FaultBufferConfig, FaultEntry, GlobalPage};
    use sim_engine::units::VABLOCK_SIZE;
    use sim_engine::SimDuration;

    fn setup(pages: &[(u64, AccessType)]) -> (FaultBuffer, ManagedSpace) {
        let mut buf = FaultBuffer::new(FaultBufferConfig::default());
        for (i, &(p, a)) in pages.iter().enumerate() {
            buf.push(FaultEntry {
                page: GlobalPage(p),
                access: a,
                timestamp: SimTime::ZERO,
                utlb: (i % 4) as u32,
            });
        }
        let mut space = ManagedSpace::new();
        space.alloc(8 * VABLOCK_SIZE, "data");
        (buf, space)
    }

    fn late() -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(1)
    }

    #[test]
    fn groups_sorted_by_vablock() {
        let (mut buf, mut space) = setup(&[
            (1024, AccessType::Read), // block 2
            (3, AccessType::Read),    // block 0
            (600, AccessType::Read),  // block 1
        ]);
        let b = gather(&mut buf, 256, late(), &mut space);
        assert_eq!(b.fetched, 3);
        let blocks: Vec<u64> = b.groups.iter().map(|g| g.block.0).collect();
        assert_eq!(blocks, vec![0, 1, 2]);
        assert_eq!(b.new_fault_pages(), 3);
    }

    #[test]
    fn same_page_two_utlbs_dedups() {
        let (mut buf, mut space) = setup(&[(7, AccessType::Read), (7, AccessType::Read)]);
        let b = gather(&mut buf, 256, late(), &mut space);
        assert_eq!(b.fetched, 2);
        assert_eq!(b.duplicates, 1);
        assert_eq!(b.new_fault_pages(), 1);
        assert_eq!(b.groups[0].num_entries, 2);
    }

    #[test]
    fn resident_pages_are_stale_duplicates() {
        let (mut buf, mut space) = setup(&[(7, AccessType::Read), (9, AccessType::Read)]);
        space.resident_mut(VaBlockIdx(0)).set(7);
        let b = gather(&mut buf, 256, late(), &mut space);
        assert_eq!(b.duplicates, 1);
        assert_eq!(b.new_fault_pages(), 1);
        assert!(b.groups[0].fault_mask.get(9));
        assert!(!b.groups[0].fault_mask.get(7));
    }

    #[test]
    fn stale_entry_on_untouched_page_is_a_prefetch_hit_and_marks_touched() {
        // Page 7 resident but untouched: the prefetcher brought it in and
        // the GPU's fault raced the migration — a PrefetchHit, after which
        // the page counts as touched.
        let (mut buf, mut space) = setup(&[(7, AccessType::Read)]);
        space.resident_mut(VaBlockIdx(0)).set(7);
        let b = gather(&mut buf, 256, late(), &mut space);
        assert_eq!(b.duplicates, 1);
        assert_eq!(b.prefetch_hits, 1);
        assert!(space.touched(VaBlockIdx(0)).get(7));
    }

    #[test]
    fn stale_entry_on_touched_page_is_a_replay_duplicate() {
        let (mut buf, mut space) = setup(&[(7, AccessType::Read)]);
        space.resident_mut(VaBlockIdx(0)).set(7);
        space.touched_mut(VaBlockIdx(0)).set(7);
        let b = gather(&mut buf, 256, late(), &mut space);
        assert_eq!(b.duplicates, 1);
        assert_eq!(b.prefetch_hits, 0, "already-touched page is a replay duplicate");
    }

    #[test]
    fn in_batch_same_page_duplicate_is_not_a_prefetch_hit() {
        let (mut buf, mut space) = setup(&[(7, AccessType::Read), (7, AccessType::Read)]);
        let b = gather(&mut buf, 256, late(), &mut space);
        assert_eq!(b.duplicates, 1);
        assert_eq!(b.prefetch_hits, 0);
    }

    #[test]
    fn write_faults_populate_write_mask() {
        let (mut buf, mut space) = setup(&[(3, AccessType::Write), (4, AccessType::Read)]);
        let b = gather(&mut buf, 256, late(), &mut space);
        let g = &b.groups[0];
        assert!(g.write_mask.get(3));
        assert!(!g.write_mask.get(4));
    }

    #[test]
    fn batch_size_bounds_fetch() {
        let pages: Vec<(u64, AccessType)> = (0..300).map(|i| (i, AccessType::Read)).collect();
        let (mut buf, mut space) = setup(&pages);
        let b = gather(&mut buf, 256, late(), &mut space);
        assert_eq!(b.fetched, 256);
        assert_eq!(buf.len(), 44);
    }

    #[test]
    fn empty_buffer_empty_batch() {
        let (mut buf, mut space) = setup(&[]);
        let b = gather(&mut buf, 256, late(), &mut space);
        assert_eq!(b.fetched, 0);
        assert!(b.groups.is_empty());
        assert_eq!(b.new_fault_pages(), 0);
    }
}
