//! Thrashing detection and mitigation (the real driver ships this as
//! `uvm_perf_thrashing`; the paper's §VI-B4 suggests the driver "infer
//! from the fault/eviction load" and adapt).
//!
//! A VABlock that faults again after having been evicted is *refaulting*;
//! enough refaults mark it thrashing, and the mitigation *pins* it — the
//! eviction path skips pinned blocks for a number of batches, so data in
//! an active reuse window stops bouncing across the interconnect.

use gpu_model::VaBlockIdx;
use serde::{Deserialize, Serialize};

/// Thrashing-mitigation configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThrashConfig {
    /// Enable detection + pinning (stock-driver default here: off, so the
    /// baseline reproduces the paper's unmitigated behaviour).
    pub enabled: bool,
    /// Refaults (fault on a previously-evicted block) before a block is
    /// considered thrashing and pinned.
    pub refault_threshold: u32,
    /// How many batches a pin lasts.
    pub pin_duration_batches: u64,
}

impl Default for ThrashConfig {
    fn default() -> Self {
        ThrashConfig {
            enabled: false,
            refault_threshold: 2,
            pin_duration_batches: 64,
        }
    }
}

/// Per-VABlock refault scoring and pin bookkeeping.
#[derive(Debug, Clone)]
pub struct ThrashDetector {
    cfg: ThrashConfig,
    scores: Vec<u32>,
    pinned_until: Vec<u64>,
    batch_no: u64,
    pins: u64,
    skips: u64,
    refaults: u64,
}

impl ThrashDetector {
    /// A detector over `num_blocks` VABlocks.
    pub fn new(cfg: ThrashConfig, num_blocks: usize) -> Self {
        assert!(cfg.refault_threshold > 0, "threshold must be nonzero");
        ThrashDetector {
            cfg,
            scores: vec![0; num_blocks],
            pinned_until: vec![0; num_blocks],
            batch_no: 0,
            pins: 0,
            skips: 0,
            refaults: 0,
        }
    }

    /// True if mitigation is active.
    pub fn is_enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Advance the batch clock (call once per driver pass).
    pub fn on_batch(&mut self) {
        self.batch_no += 1;
    }

    /// Record a refault (a fault for a block that has been evicted
    /// before). Returns true if the block just became pinned.
    ///
    /// Refaults are counted even with mitigation disabled — the count is
    /// the evict-before-reuse thrash signal the telemetry timeseries
    /// samples, and it must not change when pinning is switched on.
    pub fn note_refault(&mut self, block: VaBlockIdx) -> bool {
        self.refaults += 1;
        if !self.cfg.enabled {
            return false;
        }
        let i = block.0 as usize;
        self.scores[i] += 1;
        if self.scores[i] >= self.cfg.refault_threshold && !self.is_pinned(block) {
            self.pinned_until[i] = self.batch_no + self.cfg.pin_duration_batches;
            self.scores[i] = 0;
            self.pins += 1;
            return true;
        }
        false
    }

    /// True if `block` is currently pinned against eviction.
    pub fn is_pinned(&self, block: VaBlockIdx) -> bool {
        self.cfg.enabled && self.pinned_until[block.0 as usize] > self.batch_no
    }

    /// Total pins ever applied.
    pub fn pins(&self) -> u64 {
        self.pins
    }

    /// Record that the eviction path skipped a pinned victim.
    pub fn note_skip(&mut self) {
        self.skips += 1;
    }

    /// Eviction victims skipped thanks to pins.
    pub fn skips(&self) -> u64 {
        self.skips
    }

    /// Total refaults observed (faults on previously-evicted blocks),
    /// counted whether or not mitigation is enabled.
    pub fn refaults(&self) -> u64 {
        self.refaults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> VaBlockIdx {
        VaBlockIdx(i)
    }

    fn enabled() -> ThrashDetector {
        ThrashDetector::new(
            ThrashConfig {
                enabled: true,
                refault_threshold: 2,
                pin_duration_batches: 3,
            },
            8,
        )
    }

    #[test]
    fn disabled_never_pins() {
        let mut d = ThrashDetector::new(ThrashConfig::default(), 8);
        for _ in 0..10 {
            assert!(!d.note_refault(b(0)));
        }
        assert!(!d.is_pinned(b(0)));
        assert_eq!(d.pins(), 0);
        assert_eq!(d.refaults(), 10, "refaults counted even when disabled");
    }

    #[test]
    fn threshold_refaults_pin() {
        let mut d = enabled();
        assert!(!d.note_refault(b(3)), "first refault only scores");
        assert!(!d.is_pinned(b(3)));
        assert!(d.note_refault(b(3)), "second refault pins");
        assert!(d.is_pinned(b(3)));
        assert!(!d.is_pinned(b(4)));
        assert_eq!(d.pins(), 1);
    }

    #[test]
    fn pins_expire_after_duration() {
        let mut d = enabled();
        d.note_refault(b(0));
        d.note_refault(b(0));
        assert!(d.is_pinned(b(0)));
        for _ in 0..3 {
            d.on_batch();
        }
        assert!(!d.is_pinned(b(0)), "pin expired");
        // A fresh pair of refaults re-pins.
        d.note_refault(b(0));
        d.note_refault(b(0));
        assert!(d.is_pinned(b(0)));
        assert_eq!(d.pins(), 2);
    }

    #[test]
    fn refaults_while_pinned_do_not_repin() {
        let mut d = enabled();
        d.note_refault(b(1));
        d.note_refault(b(1));
        assert_eq!(d.pins(), 1);
        assert!(!d.note_refault(b(1)), "already pinned");
        assert!(!d.note_refault(b(1)));
        assert_eq!(d.pins(), 1);
    }

    #[test]
    #[should_panic(expected = "threshold must be nonzero")]
    fn zero_threshold_rejected() {
        let _ = ThrashDetector::new(
            ThrashConfig {
                refault_threshold: 0,
                ..ThrashConfig::default()
            },
            1,
        );
    }
}
