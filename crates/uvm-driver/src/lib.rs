//! # uvm-driver
//!
//! A faithful behavioural model of NVIDIA's Unified Virtual Memory (UVM)
//! kernel driver — the object of study of Allen & Ge, *"Demystifying GPU
//! UVM Cost with Deep Runtime and Workload Analysis"* (IPDPS 2021).
//!
//! The module structure mirrors the driver's functional decomposition as
//! the paper describes it:
//!
//! * [`address_space`] — the four-level hierarchy: address space → VA
//!   ranges (`cudaMallocManaged` allocations) → 2 MB VABlocks → 4 KB pages.
//! * [`batch`] — fault-batch *pre-processing*: fetch, poll, de-duplicate,
//!   sort into VABlock bins (paper §III-C).
//! * [`pma`] — the physical memory allocator with over-provisioned chunk
//!   caching (paper §III-D).
//! * [`prefetch`] — the two-stage prefetcher: 64 KB big-page upgrade plus
//!   the 9-level density tree with its load-time threshold (paper §IV).
//! * [`policy`] — the four replay policies (Block / Batch / BatchFlush /
//!   Once, paper §III-E) and eviction-aging policies.
//! * [`lru`] — the fault-driven VABlock LRU eviction list with the
//!   hot-data pathologies the paper highlights (§V-A, §VI-A).
//! * [`thrash`] — refault-driven thrashing detection with eviction
//!   pinning (the real driver's `uvm_perf_thrashing` analog; §VI-B4).
//! * [`driver`] — the top-level loop tying everything together and
//!   charging virtual time to the paper's instrumentation categories.
//!
//! ```
//! use uvm_driver::{DriverConfig, ManagedSpace, UvmDriver};
//! use sim_engine::{CostModel, SimRng};
//!
//! let mut space = ManagedSpace::new();
//! space.alloc(64 * 1024 * 1024, "buffer");
//! let driver = UvmDriver::new(
//!     DriverConfig::default(),
//!     CostModel::default(),
//!     space,
//!     SimRng::from_seed(42),
//! );
//! assert_eq!(driver.counters().faults_fetched, 0);
//! ```

#![warn(missing_docs)]

pub mod address_space;
pub mod batch;
pub mod driver;
pub mod lru;
pub mod pma;
pub mod policy;
pub mod prefetch;
pub(crate) mod service;
pub mod thrash;

pub use address_space::{ManagedSpace, VaRange};
pub use batch::{Batch, BatchArena, FaultGroup};
pub use driver::{DriverConfig, PassResult, UvmDriver};
pub use lru::LruList;
pub use pma::{Pma, PmaExhausted, PmaGrant};
pub use policy::{EvictionPolicy, ReplayPolicy};
pub use prefetch::{PrefetchPolicy, ResolvedPrefetch, DEFAULT_THRESHOLD};
pub use thrash::{ThrashConfig, ThrashDetector};
