//! The parallel half of batch service: per-VABlock service-window
//! *planning*, fanned out over a persistent bounded worker pool.
//!
//! A pass splits into a serial front half (fetch/sort/group, replay
//! policy, and the ordered commit walk that owns the PMA, LRU, RNG and
//! eviction) and a planning half that computes each fault group's
//! [`ServicePlan`] — faulted/prefetch masks, density-tree resolution,
//! allocation-unit scan, per-page migration/zero/map costs — from a
//! read-only snapshot of block state. Planning is pure: plans land in
//! disjoint output slots indexed by group, and the commit half reduces
//! them in sorted VABlock order, so timers, spans, counters, RNG draws
//! and traces are bit-identical for every worker count.
//!
//! Workers are long-lived OS threads parked on a condvar between passes
//! (spawning per batch would dwarf the work); each owns a reusable
//! [`DensityTree`] scratch, keeping the steady state allocation-free.
//! Plans are validated at commit time against the block's
//! `eviction_count`: if an earlier group's eviction perturbed the block,
//! the committer re-plans that one group serially against current state.

use crate::address_space::ManagedSpace;
use crate::batch::FaultGroup;
use crate::prefetch::{compute_prefetch_seeded, DensityTree, ResolvedPrefetch};
use gpu_model::{PageMask, ServicePlan};
use sim_engine::units::PAGES_PER_VABLOCK;
use sim_engine::CostModel;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Below this many groups a pass plans inline on the driver thread even
/// when workers exist: waking the pool costs more than the plans.
pub(crate) const MIN_PARALLEL_GROUPS: usize = 8;

/// Compute one fault group's service plan from the current (snapshot)
/// state of its block. Pure with respect to the driver: reads `space` and
/// the block's persistent density tree, writes only `plan` and `scratch`.
pub(crate) fn plan_group(
    space: &ManagedSpace,
    trees: &[DensityTree],
    policy: ResolvedPrefetch,
    cost: &CostModel,
    granularity: usize,
    group: &FaultGroup,
    scratch: &mut DensityTree,
    plan: &mut ServicePlan,
) {
    let vb = group.block;
    // SoA: pull exactly the three hot masks planning reads; the cold
    // provenance arrays are never touched on this path.
    let valid = space.valid(vb);
    let resident = space.resident(vb);
    let backed = space.backed(vb);
    // Slots are reused across batches without re-initialisation, so every
    // field the commit half can read is (re)written here. A noop plan
    // only needs `faulted` (what `is_noop` checks) and the epoch — the
    // commit half reads nothing else from it.
    plan.eviction_epoch = space.eviction_count(vb);
    plan.faulted = group.fault_mask.intersect(valid).difference(resident);
    if plan.faulted.is_empty() {
        return;
    }
    plan.prefetch = compute_prefetch_seeded(
        policy,
        resident,
        &plan.faulted,
        valid,
        &trees[vb.0 as usize],
        scratch,
    );
    plan.to_migrate = plan.faulted.union(&plan.prefetch);
    plan.units_to_back = PageMask::EMPTY;
    for (unit, unit_start) in (0..PAGES_PER_VABLOCK).step_by(granularity).enumerate() {
        if plan.to_migrate.count_range(unit_start, granularity) > 0
            && backed.count_range(unit_start, granularity) == 0
        {
            plan.units_to_back.set(unit);
        }
    }
    plan.pages = plan.to_migrate.count() as u64;
    plan.zero_cost = cost.page_zero(granularity as u64);
    plan.migrate_cost = cost.migrate_h2d(plan.pages);
    plan.map_cost = cost.map_pages(plan.pages) + cost.lru_update();
}

/// Borrowed inputs of one pass's planning phase.
pub(crate) struct PlanRequest<'a> {
    pub space: &'a ManagedSpace,
    pub trees: &'a [DensityTree],
    pub policy: ResolvedPrefetch,
    pub cost: &'a CostModel,
    pub granularity: usize,
    pub groups: &'a [FaultGroup],
}

/// The lifetime-erased job the pool threads execute. Lives on the
/// dispatching thread's stack for the duration of `plan_all`, which does
/// not return until every worker has bumped `done` — the pointers never
/// dangle.
struct JobCtx {
    space: *const ManagedSpace,
    trees: *const DensityTree,
    trees_len: usize,
    policy: ResolvedPrefetch,
    cost: *const CostModel,
    granularity: usize,
    groups: *const FaultGroup,
    plans: *mut ServicePlan,
    len: usize,
    /// Next unclaimed group index.
    next: AtomicUsize,
    /// Planning nanoseconds summed over participants (utilisation).
    busy_ns: AtomicU64,
    panicked: AtomicBool,
}

/// Claim and plan groups until the shared index runs out.
///
/// # Safety
/// `ctx` must point to a live `JobCtx` whose borrowed pointers outlive
/// the call, and every claimed index yields exclusive access to its
/// `plans` slot (guaranteed by the `fetch_add` claim protocol).
unsafe fn run_claims(ctx: *const JobCtx, scratch: &mut DensityTree) {
    let ctx = unsafe { &*ctx };
    let t0 = Instant::now();
    let space = unsafe { &*ctx.space };
    let trees = unsafe { std::slice::from_raw_parts(ctx.trees, ctx.trees_len) };
    let cost = unsafe { &*ctx.cost };
    let groups = unsafe { std::slice::from_raw_parts(ctx.groups, ctx.len) };
    loop {
        let i = ctx.next.fetch_add(1, Ordering::Relaxed);
        if i >= ctx.len {
            break;
        }
        let plan = unsafe { &mut *ctx.plans.add(i) };
        plan_group(
            space,
            trees,
            ctx.policy,
            cost,
            ctx.granularity,
            &groups[i],
            scratch,
            plan,
        );
    }
    ctx.busy_ns
        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
}

/// A published job: a raw pointer to the dispatcher's `JobCtx`.
#[derive(Clone, Copy)]
struct Job(*const JobCtx);
// SAFETY: the dispatcher blocks until every worker finishes the job, so
// the pointed-to context (and everything it borrows) stays alive and the
// claim protocol hands each index to exactly one thread.
unsafe impl Send for Job {}

struct PoolState {
    epoch: u64,
    job: Option<Job>,
    done: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// Persistent planning pool: `workers` total participants (the driver
/// thread counts as one), so `workers - 1` parked OS threads.
pub(crate) struct ServicePool {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for ServicePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServicePool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl ServicePool {
    /// A pool of `workers` total participants (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                done: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let threads = (1..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        ServicePool {
            shared,
            threads,
            workers,
        }
    }

    /// Total participants (1 = serial, no pool threads).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Fill `plans[i]` for every group of `req`, in disjoint slots.
    /// Returns `(busy_ns, ran_parallel)`: summed participant planning
    /// time and whether the pool was woken. Output is independent of the
    /// worker count; only wall time changes.
    pub fn plan_all(
        &self,
        req: &PlanRequest<'_>,
        plans: &mut [ServicePlan],
        scratch: &mut DensityTree,
    ) -> (u64, bool) {
        assert_eq!(req.groups.len(), plans.len());
        let ctx = JobCtx {
            space: req.space,
            trees: req.trees.as_ptr(),
            trees_len: req.trees.len(),
            policy: req.policy,
            cost: req.cost,
            granularity: req.granularity,
            groups: req.groups.as_ptr(),
            plans: plans.as_mut_ptr(),
            len: req.groups.len(),
            next: AtomicUsize::new(0),
            busy_ns: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
        };
        let parallel = self.workers > 1 && ctx.len >= MIN_PARALLEL_GROUPS;
        if parallel {
            {
                let mut st = self.shared.state.lock().unwrap();
                st.job = Some(Job(&ctx));
                st.epoch += 1;
                st.done = 0;
            }
            self.shared.work_cv.notify_all();
        }
        // The driver thread always participates.
        unsafe { run_claims(&ctx, scratch) };
        if parallel {
            let mut st = self.shared.state.lock().unwrap();
            while st.done < self.workers - 1 {
                st = self.shared.done_cv.wait(st).unwrap();
            }
            st.job = None;
            drop(st);
            if ctx.panicked.load(Ordering::Relaxed) {
                panic!("service worker panicked while planning a batch");
            }
        }
        (ctx.busy_ns.load(Ordering::Relaxed), parallel)
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut scratch = DensityTree::new_empty();
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(job) = st.job {
                        seen_epoch = st.epoch;
                        break job;
                    }
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        let res = catch_unwind(AssertUnwindSafe(|| unsafe {
            run_claims(job.0, &mut scratch)
        }));
        if res.is_err() {
            // Record and keep the protocol alive: the dispatcher re-panics.
            unsafe { &*job.0 }.panicked.store(true, Ordering::Relaxed);
        }
        let mut st = shared.state.lock().unwrap();
        st.done += 1;
        drop(st);
        // Wake the dispatcher; it re-checks the exact count itself.
        shared.done_cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_model::{PageMask, VaBlockIdx};
    use sim_engine::units::VABLOCK_SIZE;

    fn fixture(blocks: u64) -> (ManagedSpace, Vec<DensityTree>, CostModel) {
        let mut space = ManagedSpace::new();
        space.alloc(blocks * VABLOCK_SIZE, "plan");
        let trees = vec![DensityTree::new_empty(); space.num_blocks()];
        (space, trees, CostModel::default())
    }

    fn group_of(block: u64, pages: &[usize]) -> FaultGroup {
        let mut fault_mask = PageMask::EMPTY;
        for &p in pages {
            fault_mask.set(p);
        }
        FaultGroup {
            block: VaBlockIdx(block),
            fault_mask,
            write_mask: PageMask::EMPTY,
            num_entries: pages.len() as u64,
        }
    }

    #[test]
    fn plan_matches_block_state() {
        let (mut space, mut trees, cost) = fixture(4);
        // Page 5 already resident: only page 6 faults, whole block unbacked.
        space.resident_mut(VaBlockIdx(1)).set(5);
        space.backed_mut(VaBlockIdx(1)).set(5);
        space.sync_block_residency(VaBlockIdx(1));
        trees[1].add_mask(space.resident(VaBlockIdx(1)));
        let group = group_of(1, &[5, 6]);
        let mut scratch = DensityTree::new_empty();
        let mut plan = ServicePlan::default();
        plan_group(
            &space,
            &trees,
            ResolvedPrefetch::Disabled,
            &cost,
            16,
            &group,
            &mut scratch,
            &mut plan,
        );
        assert!(plan.faulted.get(6) && !plan.faulted.get(5));
        assert_eq!(plan.pages, 1);
        // Unit 0 (pages 0..16) holds both the fault and the already-backed
        // page 5 — no fresh backing needed for it.
        assert!(plan.units_to_back.is_empty());
        assert_eq!(plan.eviction_epoch, 0);
    }

    #[test]
    fn pool_fills_all_slots_any_worker_count() {
        let (space, trees, cost) = fixture(8);
        let groups: Vec<FaultGroup> = (0..8).map(|b| group_of(b, &[(b as usize) * 3])).collect();
        let mut golden: Option<Vec<ServicePlan>> = None;
        for workers in [1usize, 4] {
            let pool = ServicePool::new(workers);
            let mut plans = vec![ServicePlan::default(); groups.len()];
            let mut scratch = DensityTree::new_empty();
            let req = PlanRequest {
                space: &space,
                trees: &trees,
                policy: ResolvedPrefetch::Density {
                    threshold: 51,
                    big_pages: true,
                },
                cost: &cost,
                granularity: PAGES_PER_VABLOCK,
                groups: &groups,
            };
            let (busy, parallel) = pool.plan_all(&req, &mut plans, &mut scratch);
            assert!(busy > 0 || groups.is_empty());
            assert_eq!(parallel, workers > 1 && groups.len() >= MIN_PARALLEL_GROUPS);
            for (i, p) in plans.iter().enumerate() {
                assert!(p.faulted.get(i * 3), "slot {i} planned");
                assert_eq!(p.pages, p.to_migrate.count() as u64);
            }
            match &golden {
                None => golden = Some(plans),
                Some(g) => assert_eq!(g, &plans, "{workers} workers diverged"),
            }
        }
    }

    #[test]
    fn small_batches_stay_inline() {
        let (space, trees, cost) = fixture(2);
        let groups = vec![group_of(0, &[1])];
        let pool = ServicePool::new(4);
        let mut plans = vec![ServicePlan::default(); 1];
        let mut scratch = DensityTree::new_empty();
        let req = PlanRequest {
            space: &space,
            trees: &trees,
            policy: ResolvedPrefetch::Disabled,
            cost: &cost,
            granularity: PAGES_PER_VABLOCK,
            groups: &groups,
        };
        let (_, parallel) = pool.plan_all(&req, &mut plans, &mut scratch);
        assert!(!parallel, "one group never wakes the pool");
        assert!(plans[0].faulted.get(1));
    }

    #[test]
    fn pool_survives_many_epochs() {
        let (space, trees, cost) = fixture(16);
        let groups: Vec<FaultGroup> = (0..16).map(|b| group_of(b, &[0, 1, 2])).collect();
        let pool = ServicePool::new(3);
        let mut scratch = DensityTree::new_empty();
        for _ in 0..50 {
            let mut plans = vec![ServicePlan::default(); groups.len()];
            let req = PlanRequest {
                space: &space,
                trees: &trees,
                policy: ResolvedPrefetch::Disabled,
                cost: &cost,
                granularity: PAGES_PER_VABLOCK,
                groups: &groups,
            };
            pool.plan_all(&req, &mut plans, &mut scratch);
            assert!(plans.iter().all(|p| p.pages == 3));
        }
    }
}
