//! The UVM four-level memory hierarchy (paper §III-A): an address space is
//! composed of VA *ranges* (one per `cudaMallocManaged` allocation), each
//! broken into 2 MB *VABlocks*, each composed of 4 KB pages.
//!
//! [`ManagedSpace`] is the single source of truth for page residency: the
//! GPU engine queries it through the [`Residency`] trait on every access,
//! and the driver mutates it while servicing faults and evicting blocks.

use gpu_model::{GlobalPage, PageMask, Residency, VaBlockIdx};
use serde::{Deserialize, Serialize};
use sim_engine::units::{pages_for_bytes, PAGES_PER_VABLOCK};

/// One managed allocation (`cudaMallocManaged`), VABlock-aligned.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VaRange {
    /// Human-readable label (e.g. "A", "B", "C" for SGEMM's matrices).
    pub name: String,
    /// First page of the range (always VABlock-aligned).
    pub start_page: u64,
    /// Number of valid pages (the actual allocation size).
    pub num_pages: u64,
}

impl VaRange {
    /// Page at `offset` within the range.
    #[inline]
    pub fn page(&self, offset: u64) -> GlobalPage {
        debug_assert!(offset < self.num_pages, "offset beyond allocation");
        GlobalPage(self.start_page + offset)
    }

    /// One past the last valid page.
    #[inline]
    pub fn end_page(&self) -> u64 {
        self.start_page + self.num_pages
    }
}

/// Driver-side state of one VABlock.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VaBlockState {
    /// Pages of this block that belong to a live allocation (a range's
    /// final block may be partial).
    pub valid: PageMask,
    /// Pages currently resident (mapped) on the GPU.
    pub resident: PageMask,
    /// Pages dirtied by write faults (must be written back on eviction).
    pub dirty: PageMask,
    /// Pages with physical backing allocated on the GPU.
    pub backed: PageMask,
    /// Pages that were ever brought in by the prefetcher (fault-path
    /// density prefetch or explicit hints) rather than by their own
    /// fault. Never cleared by eviction — feeds the prefetch-waste
    /// analysis (paper §VI-A: prefetched data may be evicted unused).
    pub prefetched_ever: PageMask,
    /// Pages the GPU actually accessed during their *current* residency:
    /// set when a page's own fault establishes residency, or when a
    /// resident page absorbs a stale fault entry at gather. Cleared on
    /// eviction and on migration back to the host. `resident ∖ touched`
    /// is exactly "arrived via prefetch, never used yet", which is what
    /// classifies `PrefetchEvicted` at eviction time — no separate
    /// prefetch mask is needed.
    pub touched: PageMask,
    /// Pages evicted at least once since allocation (or since a host
    /// migration reset their history). A faulting page in this mask is
    /// an `EvictionRefault`, not a `ColdFirstTouch`.
    pub evicted_ever: PageMask,
    /// Per-page verdict of the *most recent* eviction: set if the page
    /// was evicted untouched (evict-before-use), cleared if it had been
    /// used. Refaults landing in this mask close the paper's
    /// prefetch→evict-unused→refault antagonism loop.
    pub evicted_unused: PageMask,
    /// Times this block has been evicted — the eviction *generation
    /// stamp*: the provenance masks above describe history as of
    /// generation `eviction_count`, and the service path uses the same
    /// counter as its staleness epoch.
    pub eviction_count: u32,
}

impl VaBlockState {
    /// Bytes of GPU physical memory this block currently holds.
    pub fn backed_pages(&self) -> usize {
        self.backed.count()
    }

    /// True if the block holds no GPU physical memory.
    pub fn is_unbacked(&self) -> bool {
        self.backed.is_empty()
    }
}

/// Words of the dense residency index covering one VABlock (512 pages).
const WORDS_PER_BLOCK: usize = PAGES_PER_VABLOCK / 64;

/// The managed virtual address space: ranges, VABlocks, residency.
#[derive(Debug, Clone, Default)]
pub struct ManagedSpace {
    ranges: Vec<VaRange>,
    blocks: Vec<VaBlockState>,
    /// Dense residency index: one bit per page of the whole space, kept in
    /// sync with the per-block `resident` masks by
    /// [`sync_block_residency`](Self::sync_block_residency). The engine
    /// queries residency on every page access of every replay retry, and
    /// this flat array keeps that hot read inside a few cache lines
    /// instead of striding across the 300-byte block states.
    resident_bits: Vec<u64>,
}

impl ManagedSpace {
    /// An empty space with no allocations.
    pub fn new() -> Self {
        ManagedSpace::default()
    }

    /// Allocate a managed range of `bytes`, VABlock-aligned, returning its
    /// descriptor. Mirrors `cudaMallocManaged`.
    pub fn alloc(&mut self, bytes: u64, name: impl Into<String>) -> VaRange {
        assert!(bytes > 0, "zero-byte allocation");
        let num_pages = pages_for_bytes(bytes);
        let start_page = (self.blocks.len() * PAGES_PER_VABLOCK) as u64;
        let num_blocks = num_pages.div_ceil(PAGES_PER_VABLOCK as u64);
        for b in 0..num_blocks {
            let mut st = VaBlockState::default();
            let first = b * PAGES_PER_VABLOCK as u64;
            let valid_in_block = (num_pages - first).min(PAGES_PER_VABLOCK as u64) as usize;
            if valid_in_block == PAGES_PER_VABLOCK {
                st.valid = PageMask::FULL;
            } else {
                for i in 0..valid_in_block {
                    st.valid.set(i);
                }
            }
            self.blocks.push(st);
        }
        self.resident_bits
            .resize(self.blocks.len() * WORDS_PER_BLOCK, 0);
        let range = VaRange {
            name: name.into(),
            start_page,
            num_pages,
        };
        self.ranges.push(range.clone());
        range
    }

    /// All allocated ranges.
    pub fn ranges(&self) -> &[VaRange] {
        &self.ranges
    }

    /// Number of VABlocks in the space.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total valid pages across all ranges.
    pub fn total_pages(&self) -> u64 {
        self.ranges.iter().map(|r| r.num_pages).sum()
    }

    /// Borrow a block's state.
    pub fn block(&self, idx: VaBlockIdx) -> &VaBlockState {
        &self.blocks[idx.0 as usize]
    }

    /// Mutably borrow a block's state.
    pub fn block_mut(&mut self, idx: VaBlockIdx) -> &mut VaBlockState {
        &mut self.blocks[idx.0 as usize]
    }

    /// Count of currently resident pages across the space (diagnostic).
    pub fn resident_pages(&self) -> u64 {
        self.blocks.iter().map(|b| b.resident.count() as u64).sum()
    }

    /// Refresh the dense residency index for `idx` from its block's
    /// `resident` mask. Must be called after every mutation of a block's
    /// residency (fault service, eviction, hint prefetch, host access).
    #[inline]
    pub fn sync_block_residency(&mut self, idx: VaBlockIdx) {
        let w0 = idx.0 as usize * WORDS_PER_BLOCK;
        self.resident_bits[w0..w0 + WORDS_PER_BLOCK]
            .copy_from_slice(self.blocks[idx.0 as usize].resident.words());
    }

    /// True if `page` belongs to some allocation.
    pub fn is_valid(&self, page: GlobalPage) -> bool {
        let vb = page.vablock().0 as usize;
        vb < self.blocks.len() && self.blocks[vb].valid.get(page.offset_in_vablock())
    }
}

impl Residency for ManagedSpace {
    #[inline]
    fn is_resident(&self, page: GlobalPage) -> bool {
        let w = page.0 as usize / 64;
        debug_assert!(w < self.resident_bits.len(), "access outside managed space");
        let hit = self.resident_bits[w] & (1u64 << (page.0 % 64)) != 0;
        // The dense index must mirror the per-block masks; a mismatch
        // means a mutation site forgot to call `sync_block_residency`.
        debug_assert_eq!(
            hit,
            self.blocks[page.vablock().0 as usize]
                .resident
                .get(page.offset_in_vablock()),
            "dense residency index out of sync for page {}",
            page.0
        );
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::units::{MIB, PAGE_SIZE, VABLOCK_SIZE};

    #[test]
    fn alloc_is_vablock_aligned_and_sized() {
        let mut s = ManagedSpace::new();
        let a = s.alloc(3 * MIB, "a"); // 1.5 VABlocks -> 2 blocks
        assert_eq!(a.start_page, 0);
        assert_eq!(a.num_pages, 768);
        assert_eq!(s.num_blocks(), 2);
        let b = s.alloc(VABLOCK_SIZE, "b");
        assert_eq!(
            b.start_page,
            2 * 512,
            "next range starts on a fresh VABlock"
        );
        assert_eq!(s.num_blocks(), 3);
        assert_eq!(s.total_pages(), 768 + 512);
    }

    #[test]
    fn partial_final_block_valid_mask() {
        let mut s = ManagedSpace::new();
        s.alloc(VABLOCK_SIZE + PAGE_SIZE, "a"); // 513 pages
        assert_eq!(s.num_blocks(), 2);
        assert!(s.block(VaBlockIdx(0)).valid.is_full());
        assert_eq!(s.block(VaBlockIdx(1)).valid.count(), 1);
        assert!(s.is_valid(GlobalPage(512)));
        assert!(!s.is_valid(GlobalPage(513)));
    }

    #[test]
    fn residency_tracks_block_masks() {
        let mut s = ManagedSpace::new();
        s.alloc(VABLOCK_SIZE, "a");
        let p = GlobalPage(37);
        assert!(!s.is_resident(p));
        s.block_mut(VaBlockIdx(0)).resident.set(37);
        s.sync_block_residency(VaBlockIdx(0));
        assert!(s.is_resident(p));
        assert_eq!(s.resident_pages(), 1);
    }

    #[test]
    fn range_page_helper() {
        let mut s = ManagedSpace::new();
        let _ = s.alloc(VABLOCK_SIZE, "a");
        let b = s.alloc(VABLOCK_SIZE, "b");
        assert_eq!(b.page(0), GlobalPage(512));
        assert_eq!(b.page(5), GlobalPage(517));
        assert_eq!(b.end_page(), 1024);
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_alloc_panics() {
        ManagedSpace::new().alloc(0, "zero");
    }
}
