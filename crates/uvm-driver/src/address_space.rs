//! The UVM four-level memory hierarchy (paper §III-A): an address space is
//! composed of VA *ranges* (one per `cudaMallocManaged` allocation), each
//! broken into 2 MB *VABlocks*, each composed of 4 KB pages.
//!
//! [`ManagedSpace`] is the single source of truth for page residency: the
//! GPU engine queries it through the [`Residency`] trait on every access,
//! and the driver mutates it while servicing faults and evicting blocks.
//!
//! ## Layout: structure-of-arrays
//!
//! Per-VABlock state is stored as parallel arrays keyed by block index,
//! not as one ~300-byte struct per block. The hot paths each read a small,
//! disjoint subset of the fields — gather probes `valid`/`resident`/
//! `touched`, service planning reads `valid`/`resident`/`backed`, the
//! eviction scan walks `resident`/`dirty`/`touched`/`backed` — so splitting
//! the fields keeps each pass striding contiguous 64-byte masks of just
//! the arrays it needs instead of dragging the cold provenance masks
//! (`prefetched_ever`, `evicted_*`) through the cache on every fault.

use gpu_model::{GlobalPage, PageMask, Residency, VaBlockIdx};
use serde::{Deserialize, Serialize};
use sim_engine::units::{pages_for_bytes, PAGES_PER_VABLOCK};

/// One managed allocation (`cudaMallocManaged`), VABlock-aligned.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VaRange {
    /// Human-readable label (e.g. "A", "B", "C" for SGEMM's matrices).
    pub name: String,
    /// First page of the range (always VABlock-aligned).
    pub start_page: u64,
    /// Number of valid pages (the actual allocation size).
    pub num_pages: u64,
}

impl VaRange {
    /// Page at `offset` within the range.
    #[inline]
    pub fn page(&self, offset: u64) -> GlobalPage {
        debug_assert!(offset < self.num_pages, "offset beyond allocation");
        GlobalPage(self.start_page + offset)
    }

    /// One past the last valid page.
    #[inline]
    pub fn end_page(&self) -> u64 {
        self.start_page + self.num_pages
    }
}

/// Words of the dense residency index covering one VABlock (512 pages).
const WORDS_PER_BLOCK: usize = PAGES_PER_VABLOCK / 64;

/// The managed virtual address space: ranges, per-VABlock state in SoA
/// form, and the dense residency index.
#[derive(Debug, Clone, Default)]
pub struct ManagedSpace {
    ranges: Vec<VaRange>,
    // Hot arrays — touched on every fault batch.
    /// Pages of each block that belong to a live allocation (a range's
    /// final block may be partial).
    valid: Vec<PageMask>,
    /// Pages currently resident (mapped) on the GPU.
    resident: Vec<PageMask>,
    /// Pages dirtied by write faults (must be written back on eviction).
    dirty: Vec<PageMask>,
    /// Pages with physical backing allocated on the GPU.
    backed: Vec<PageMask>,
    /// Pages the GPU actually accessed during their *current* residency:
    /// set when a page's own fault establishes residency, or when a
    /// resident page absorbs a stale fault entry at gather. Cleared on
    /// eviction and on migration back to the host. `resident ∖ touched`
    /// is exactly "arrived via prefetch, never used yet", which is what
    /// classifies `PrefetchEvicted` at eviction time — no separate
    /// prefetch mask is needed.
    touched: Vec<PageMask>,
    // Cold arrays — provenance bookkeeping read only at eviction/commit
    // attribution and end-of-run analysis.
    /// Pages that were ever brought in by the prefetcher (fault-path
    /// density prefetch or explicit hints) rather than by their own
    /// fault. Never cleared by eviction — feeds the prefetch-waste
    /// analysis (paper §VI-A: prefetched data may be evicted unused).
    prefetched_ever: Vec<PageMask>,
    /// Pages evicted at least once since allocation (or since a host
    /// migration reset their history). A faulting page in this mask is
    /// an `EvictionRefault`, not a `ColdFirstTouch`.
    evicted_ever: Vec<PageMask>,
    /// Per-page verdict of the *most recent* eviction: set if the page
    /// was evicted untouched (evict-before-use), cleared if it had been
    /// used. Refaults landing in this mask close the paper's
    /// prefetch→evict-unused→refault antagonism loop.
    evicted_unused: Vec<PageMask>,
    /// Times each block has been evicted — the eviction *generation
    /// stamp*: the provenance masks above describe history as of
    /// generation `eviction_count`, and the service path uses the same
    /// counter as its staleness epoch.
    eviction_count: Vec<u32>,
    /// Dense residency index: one bit per page of the whole space, kept in
    /// sync with the per-block `resident` masks by
    /// [`sync_block_residency`](Self::sync_block_residency). The engine
    /// queries residency on every page access of every replay retry, and
    /// this flat array keeps that hot read inside a few cache lines.
    resident_bits: Vec<u64>,
}

impl ManagedSpace {
    /// An empty space with no allocations.
    pub fn new() -> Self {
        ManagedSpace::default()
    }

    /// Allocate a managed range of `bytes`, VABlock-aligned, returning its
    /// descriptor. Mirrors `cudaMallocManaged`.
    pub fn alloc(&mut self, bytes: u64, name: impl Into<String>) -> VaRange {
        assert!(bytes > 0, "zero-byte allocation");
        let num_pages = pages_for_bytes(bytes);
        let start_page = (self.num_blocks() * PAGES_PER_VABLOCK) as u64;
        let num_blocks = num_pages.div_ceil(PAGES_PER_VABLOCK as u64);
        for b in 0..num_blocks {
            let first = b * PAGES_PER_VABLOCK as u64;
            let valid_in_block = (num_pages - first).min(PAGES_PER_VABLOCK as u64) as usize;
            let valid = if valid_in_block == PAGES_PER_VABLOCK {
                PageMask::FULL
            } else {
                let mut m = PageMask::EMPTY;
                m.set_span(0, valid_in_block);
                m
            };
            self.valid.push(valid);
            self.resident.push(PageMask::EMPTY);
            self.dirty.push(PageMask::EMPTY);
            self.backed.push(PageMask::EMPTY);
            self.touched.push(PageMask::EMPTY);
            self.prefetched_ever.push(PageMask::EMPTY);
            self.evicted_ever.push(PageMask::EMPTY);
            self.evicted_unused.push(PageMask::EMPTY);
            self.eviction_count.push(0);
        }
        self.resident_bits
            .resize(self.num_blocks() * WORDS_PER_BLOCK, 0);
        let range = VaRange {
            name: name.into(),
            start_page,
            num_pages,
        };
        self.ranges.push(range.clone());
        range
    }

    /// All allocated ranges.
    pub fn ranges(&self) -> &[VaRange] {
        &self.ranges
    }

    /// Number of VABlocks in the space.
    pub fn num_blocks(&self) -> usize {
        self.valid.len()
    }

    /// Total valid pages across all ranges.
    pub fn total_pages(&self) -> u64 {
        self.ranges.iter().map(|r| r.num_pages).sum()
    }

    /// A block's valid-page mask (immutable for the block's lifetime).
    #[inline]
    pub fn valid(&self, idx: VaBlockIdx) -> &PageMask {
        &self.valid[idx.0 as usize]
    }

    /// A block's resident-page mask.
    #[inline]
    pub fn resident(&self, idx: VaBlockIdx) -> &PageMask {
        &self.resident[idx.0 as usize]
    }

    /// Mutable resident mask. Callers must
    /// [`sync_block_residency`](Self::sync_block_residency) afterwards.
    #[inline]
    pub fn resident_mut(&mut self, idx: VaBlockIdx) -> &mut PageMask {
        &mut self.resident[idx.0 as usize]
    }

    /// A block's dirty-page mask.
    #[inline]
    pub fn dirty(&self, idx: VaBlockIdx) -> &PageMask {
        &self.dirty[idx.0 as usize]
    }

    /// Mutable dirty mask.
    #[inline]
    pub fn dirty_mut(&mut self, idx: VaBlockIdx) -> &mut PageMask {
        &mut self.dirty[idx.0 as usize]
    }

    /// A block's physically-backed mask.
    #[inline]
    pub fn backed(&self, idx: VaBlockIdx) -> &PageMask {
        &self.backed[idx.0 as usize]
    }

    /// Mutable backed mask.
    #[inline]
    pub fn backed_mut(&mut self, idx: VaBlockIdx) -> &mut PageMask {
        &mut self.backed[idx.0 as usize]
    }

    /// A block's touched-during-residency mask.
    #[inline]
    pub fn touched(&self, idx: VaBlockIdx) -> &PageMask {
        &self.touched[idx.0 as usize]
    }

    /// Mutable touched mask.
    #[inline]
    pub fn touched_mut(&mut self, idx: VaBlockIdx) -> &mut PageMask {
        &mut self.touched[idx.0 as usize]
    }

    /// A block's ever-prefetched mask.
    #[inline]
    pub fn prefetched_ever(&self, idx: VaBlockIdx) -> &PageMask {
        &self.prefetched_ever[idx.0 as usize]
    }

    /// Mutable ever-prefetched mask.
    #[inline]
    pub fn prefetched_ever_mut(&mut self, idx: VaBlockIdx) -> &mut PageMask {
        &mut self.prefetched_ever[idx.0 as usize]
    }

    /// A block's ever-evicted mask.
    #[inline]
    pub fn evicted_ever(&self, idx: VaBlockIdx) -> &PageMask {
        &self.evicted_ever[idx.0 as usize]
    }

    /// Mutable ever-evicted mask.
    #[inline]
    pub fn evicted_ever_mut(&mut self, idx: VaBlockIdx) -> &mut PageMask {
        &mut self.evicted_ever[idx.0 as usize]
    }

    /// A block's evicted-unused mask (most recent eviction's verdict).
    #[inline]
    pub fn evicted_unused(&self, idx: VaBlockIdx) -> &PageMask {
        &self.evicted_unused[idx.0 as usize]
    }

    /// Mutable evicted-unused mask.
    #[inline]
    pub fn evicted_unused_mut(&mut self, idx: VaBlockIdx) -> &mut PageMask {
        &mut self.evicted_unused[idx.0 as usize]
    }

    /// The block's eviction generation stamp.
    #[inline]
    pub fn eviction_count(&self, idx: VaBlockIdx) -> u32 {
        self.eviction_count[idx.0 as usize]
    }

    /// Advance the block's eviction generation stamp by one.
    #[inline]
    pub fn bump_eviction_count(&mut self, idx: VaBlockIdx) {
        self.eviction_count[idx.0 as usize] += 1;
    }

    /// Pages of GPU physical memory this block currently holds.
    #[inline]
    pub fn backed_pages(&self, idx: VaBlockIdx) -> usize {
        self.backed[idx.0 as usize].count()
    }

    /// True if the block holds no GPU physical memory.
    #[inline]
    pub fn is_unbacked(&self, idx: VaBlockIdx) -> bool {
        self.backed[idx.0 as usize].is_empty()
    }

    /// Clear the block's hot residency state (`resident`, `dirty`,
    /// `touched`, `backed`) in one stride — the eviction/unmap reset.
    /// Callers must [`sync_block_residency`](Self::sync_block_residency)
    /// afterwards.
    #[inline]
    pub fn clear_block_hot(&mut self, idx: VaBlockIdx) {
        let i = idx.0 as usize;
        self.resident[i] = PageMask::EMPTY;
        self.dirty[i] = PageMask::EMPTY;
        self.touched[i] = PageMask::EMPTY;
        self.backed[i] = PageMask::EMPTY;
    }

    /// Count of currently resident pages across the space (diagnostic).
    pub fn resident_pages(&self) -> u64 {
        self.resident.iter().map(|m| m.count() as u64).sum()
    }

    /// Refresh the dense residency index for `idx` from its block's
    /// `resident` mask. Must be called after every mutation of a block's
    /// residency (fault service, eviction, hint prefetch, host access).
    #[inline]
    pub fn sync_block_residency(&mut self, idx: VaBlockIdx) {
        let w0 = idx.0 as usize * WORDS_PER_BLOCK;
        self.resident_bits[w0..w0 + WORDS_PER_BLOCK]
            .copy_from_slice(self.resident[idx.0 as usize].words());
    }

    /// True if `page` belongs to some allocation.
    pub fn is_valid(&self, page: GlobalPage) -> bool {
        let vb = page.vablock().0 as usize;
        vb < self.valid.len() && self.valid[vb].get(page.offset_in_vablock())
    }
}

impl Residency for ManagedSpace {
    #[inline]
    fn is_resident(&self, page: GlobalPage) -> bool {
        let w = page.0 as usize / 64;
        debug_assert!(w < self.resident_bits.len(), "access outside managed space");
        let hit = self.resident_bits[w] & (1u64 << (page.0 % 64)) != 0;
        // The dense index must mirror the per-block masks; a mismatch
        // means a mutation site forgot to call `sync_block_residency`.
        debug_assert_eq!(
            hit,
            self.resident[page.vablock().0 as usize].get(page.offset_in_vablock()),
            "dense residency index out of sync for page {}",
            page.0
        );
        hit
    }

    #[inline]
    fn resident_word(&self, page: GlobalPage) -> u64 {
        let w = page.0 as usize / 64;
        debug_assert!(w < self.resident_bits.len(), "access outside managed space");
        self.resident_bits[w]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::units::{MIB, PAGE_SIZE, VABLOCK_SIZE};

    #[test]
    fn alloc_is_vablock_aligned_and_sized() {
        let mut s = ManagedSpace::new();
        let a = s.alloc(3 * MIB, "a"); // 1.5 VABlocks -> 2 blocks
        assert_eq!(a.start_page, 0);
        assert_eq!(a.num_pages, 768);
        assert_eq!(s.num_blocks(), 2);
        let b = s.alloc(VABLOCK_SIZE, "b");
        assert_eq!(
            b.start_page,
            2 * 512,
            "next range starts on a fresh VABlock"
        );
        assert_eq!(s.num_blocks(), 3);
        assert_eq!(s.total_pages(), 768 + 512);
    }

    #[test]
    fn partial_final_block_valid_mask() {
        let mut s = ManagedSpace::new();
        s.alloc(VABLOCK_SIZE + PAGE_SIZE, "a"); // 513 pages
        assert_eq!(s.num_blocks(), 2);
        assert!(s.valid(VaBlockIdx(0)).is_full());
        assert_eq!(s.valid(VaBlockIdx(1)).count(), 1);
        assert!(s.is_valid(GlobalPage(512)));
        assert!(!s.is_valid(GlobalPage(513)));
    }

    #[test]
    fn residency_tracks_block_masks() {
        let mut s = ManagedSpace::new();
        s.alloc(VABLOCK_SIZE, "a");
        let p = GlobalPage(37);
        assert!(!s.is_resident(p));
        s.resident_mut(VaBlockIdx(0)).set(37);
        s.sync_block_residency(VaBlockIdx(0));
        assert!(s.is_resident(p));
        assert_eq!(s.resident_pages(), 1);
    }

    #[test]
    fn soa_accessors_cover_all_fields() {
        let mut s = ManagedSpace::new();
        s.alloc(VABLOCK_SIZE, "a");
        let vb = VaBlockIdx(0);
        s.resident_mut(vb).set(1);
        s.dirty_mut(vb).set(1);
        s.touched_mut(vb).set(1);
        s.backed_mut(vb).set_range(0, 16);
        s.prefetched_ever_mut(vb).set(2);
        s.evicted_ever_mut(vb).set(3);
        s.evicted_unused_mut(vb).set(3);
        s.bump_eviction_count(vb);
        assert!(s.resident(vb).get(1) && s.dirty(vb).get(1) && s.touched(vb).get(1));
        assert_eq!(s.backed_pages(vb), 16);
        assert!(!s.is_unbacked(vb));
        assert!(s.prefetched_ever(vb).get(2));
        assert!(s.evicted_ever(vb).get(3) && s.evicted_unused(vb).get(3));
        assert_eq!(s.eviction_count(vb), 1);
        s.clear_block_hot(vb);
        s.sync_block_residency(vb);
        assert!(s.resident(vb).is_empty() && s.dirty(vb).is_empty());
        assert!(s.touched(vb).is_empty() && s.is_unbacked(vb));
        // Cold provenance arrays survive the hot-state reset.
        assert!(s.prefetched_ever(vb).get(2) && s.evicted_ever(vb).get(3));
        assert_eq!(s.eviction_count(vb), 1);
    }

    #[test]
    fn range_page_helper() {
        let mut s = ManagedSpace::new();
        let _ = s.alloc(VABLOCK_SIZE, "a");
        let b = s.alloc(VABLOCK_SIZE, "b");
        assert_eq!(b.page(0), GlobalPage(512));
        assert_eq!(b.page(5), GlobalPage(517));
        assert_eq!(b.end_page(), 1024);
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_alloc_panics() {
        ManagedSpace::new().alloc(0, "zero");
    }
}
