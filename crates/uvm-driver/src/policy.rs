//! Replay and eviction policy types (paper §III-E, §V-A, §VI-B3).

use serde::{Deserialize, Serialize};

/// When the driver notifies the GPU to replay far-faults (paper §III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ReplayPolicy {
    /// Replay as soon as each VABlock within a batch is serviced: earliest
    /// resume, most replays.
    Block,
    /// Replay once per serviced batch; the buffer is *not* flushed, so
    /// stale entries for resumed-but-unserviced warps linger and duplicate.
    Batch,
    /// Stock default: replay once per batch after flushing the fault
    /// buffer, preventing duplicates at the cost of remote queue
    /// management.
    #[default]
    BatchFlush,
    /// Replay only once every outstanding fault in the buffer has been
    /// serviced: simplest, longest latency.
    Once,
}

impl ReplayPolicy {
    /// True if the policy flushes the fault buffer before replaying.
    pub fn flushes(self) -> bool {
        matches!(self, ReplayPolicy::BatchFlush | ReplayPolicy::Once)
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ReplayPolicy::Block => "block",
            ReplayPolicy::Batch => "batch",
            ReplayPolicy::BatchFlush => "batch_flush",
            ReplayPolicy::Once => "once",
        }
    }
}

/// How eviction victims are aged (stock driver vs the paper's §VI-B3
/// access-counter suggestion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EvictionPolicy {
    /// Stock: LRU updated only by serviced faults.
    #[default]
    FaultLru,
    /// Extension: Volta-style access counters also refresh LRU position
    /// for blocks the GPU touches without faulting, fixing the
    /// hot-data-evicted-first pathology.
    AccessCounterLru,
}

impl EvictionPolicy {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            EvictionPolicy::FaultLru => "fault_lru",
            EvictionPolicy::AccessCounterLru => "access_counter_lru",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_stock_driver() {
        assert_eq!(ReplayPolicy::default(), ReplayPolicy::BatchFlush);
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::FaultLru);
    }

    #[test]
    fn flush_semantics() {
        assert!(ReplayPolicy::BatchFlush.flushes());
        assert!(ReplayPolicy::Once.flushes());
        assert!(!ReplayPolicy::Batch.flushes());
        assert!(!ReplayPolicy::Block.flushes());
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            ReplayPolicy::Block.label(),
            ReplayPolicy::Batch.label(),
            ReplayPolicy::BatchFlush.label(),
            ReplayPolicy::Once.label(),
        ];
        let mut dedup = labels.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
