//! VABlock-granularity LRU eviction list (paper §V-A1).
//!
//! The stock driver keeps an LRU list of VABlocks that is updated **only
//! when a fault is handled** from a block. This has the pathologies the
//! paper highlights: data that is reused on the GPU without faulting never
//! moves up, and fully-resident blocks sink to the tail until evicted and
//! re-faulted — the hottest data can be the most likely to be evicted.
//!
//! Implemented as an intrusive doubly-linked list over block indices:
//! O(1) touch, push, remove, and pop.

use gpu_model::VaBlockIdx;

const NONE: u32 = u32::MAX;

/// Intrusive LRU list over VABlock indices `0..capacity`.
#[derive(Debug, Clone)]
pub struct LruList {
    prev: Vec<u32>,
    next: Vec<u32>,
    /// Most-recently-used end.
    head: u32,
    /// Least-recently-used end.
    tail: u32,
    present: Vec<bool>,
    len: usize,
}

impl LruList {
    /// A list able to hold blocks `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        LruList {
            prev: vec![NONE; capacity],
            next: vec![NONE; capacity],
            head: NONE,
            tail: NONE,
            present: vec![false; capacity],
            len: 0,
        }
    }

    /// Number of blocks in the list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// [`len`](LruList::len) as the telemetry gauge value: the number of
    /// VABlocks currently eligible for (fault-driven) eviction aging.
    pub fn tracked_blocks(&self) -> u64 {
        self.len as u64
    }

    /// True if `block` is in the list.
    pub fn contains(&self, block: VaBlockIdx) -> bool {
        self.present[block.0 as usize]
    }

    fn unlink(&mut self, i: usize) {
        let (p, n) = (self.prev[i], self.next[i]);
        if p == NONE {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NONE {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.prev[i] = NONE;
        self.next[i] = NONE;
    }

    fn push_front(&mut self, i: usize) {
        self.prev[i] = NONE;
        self.next[i] = self.head;
        if self.head != NONE {
            self.prev[self.head as usize] = i as u32;
        }
        self.head = i as u32;
        if self.tail == NONE {
            self.tail = i as u32;
        }
    }

    /// Mark `block` most-recently-used, inserting it if absent. This is
    /// the *only* aging signal the stock driver has — called when a fault
    /// for the block is serviced.
    pub fn touch(&mut self, block: VaBlockIdx) {
        let i = block.0 as usize;
        if self.present[i] {
            if self.head == i as u32 {
                return;
            }
            self.unlink(i);
        } else {
            self.present[i] = true;
            self.len += 1;
        }
        self.push_front(i);
    }

    /// Remove and return the least-recently-used block.
    pub fn pop_lru(&mut self) -> Option<VaBlockIdx> {
        if self.tail == NONE {
            return None;
        }
        let i = self.tail as usize;
        self.unlink(i);
        self.present[i] = false;
        self.len -= 1;
        Some(VaBlockIdx(i as u64))
    }

    /// Remove a specific block (e.g. freed by the application).
    pub fn remove(&mut self, block: VaBlockIdx) -> bool {
        let i = block.0 as usize;
        if !self.present[i] {
            return false;
        }
        self.unlink(i);
        self.present[i] = false;
        self.len -= 1;
        true
    }

    /// Re-insert blocks that an eviction scan popped but skipped (pinned
    /// by the thrashing detector), restoring their relative recency: the
    /// slice is in pop order (LRU first), so reverse iteration touches
    /// the most-recently-used skip last and it lands at the head. Drains
    /// the vector so its capacity can be reused by the next scan.
    pub fn reinsert_skipped(&mut self, skipped: &mut Vec<VaBlockIdx>) {
        for v in skipped.drain(..).rev() {
            self.touch(v);
        }
    }

    /// Peek the least-recently-used block without removing it.
    pub fn peek_lru(&self) -> Option<VaBlockIdx> {
        (self.tail != NONE).then_some(VaBlockIdx(self.tail as u64))
    }

    /// Iterate from MRU to LRU (diagnostic).
    pub fn iter_mru(&self) -> impl Iterator<Item = VaBlockIdx> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NONE {
                None
            } else {
                let out = VaBlockIdx(cur as u64);
                cur = self.next[cur as usize];
                Some(out)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> VaBlockIdx {
        VaBlockIdx(i)
    }

    #[test]
    fn touch_inserts_and_orders() {
        let mut l = LruList::new(8);
        l.touch(b(0));
        l.touch(b(1));
        l.touch(b(2));
        assert_eq!(l.len(), 3);
        let order: Vec<u64> = l.iter_mru().map(|x| x.0).collect();
        assert_eq!(order, vec![2, 1, 0]);
        assert_eq!(l.peek_lru(), Some(b(0)));
    }

    #[test]
    fn touch_moves_to_front() {
        let mut l = LruList::new(8);
        for i in 0..4 {
            l.touch(b(i));
        }
        l.touch(b(0)); // re-fault block 0
        assert_eq!(l.pop_lru(), Some(b(1)));
        assert_eq!(l.pop_lru(), Some(b(2)));
        assert_eq!(l.pop_lru(), Some(b(3)));
        assert_eq!(l.pop_lru(), Some(b(0)));
        assert_eq!(l.pop_lru(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn touch_head_is_noop() {
        let mut l = LruList::new(4);
        l.touch(b(1));
        l.touch(b(1));
        assert_eq!(l.len(), 1);
        assert_eq!(l.pop_lru(), Some(b(1)));
    }

    #[test]
    fn remove_middle() {
        let mut l = LruList::new(8);
        for i in 0..3 {
            l.touch(b(i));
        }
        assert!(l.remove(b(1)));
        assert!(!l.remove(b(1)));
        let order: Vec<u64> = l.iter_mru().map(|x| x.0).collect();
        assert_eq!(order, vec![2, 0]);
        assert!(!l.contains(b(1)));
    }

    #[test]
    fn reinsert_skipped_restores_recency_order() {
        let mut l = LruList::new(8);
        for i in 0..4 {
            l.touch(b(i));
        }
        // An eviction scan pops 0 then 1 (both pinned, say), then takes 2.
        let mut skipped = vec![l.pop_lru().unwrap(), l.pop_lru().unwrap()];
        assert_eq!(skipped, vec![b(0), b(1)]);
        assert_eq!(l.pop_lru(), Some(b(2)));
        l.reinsert_skipped(&mut skipped);
        assert!(skipped.is_empty(), "drained for reuse");
        // Reverse-order touches: the scan's first pop (0) is touched
        // last and lands at the MRU head, 3 (never popped) stays LRU.
        let order: Vec<u64> = l.iter_mru().map(|x| x.0).collect();
        assert_eq!(order, vec![0, 1, 3]);
    }

    #[test]
    fn fault_only_aging_pathology() {
        // The paper's pathology: a hot block that stops faulting (fully
        // resident) sinks to LRU and is evicted before a cold block that
        // faulted more recently.
        let mut l = LruList::new(8);
        l.touch(b(0)); // hot block faults in first...
        for i in 1..5 {
            l.touch(b(i)); // ...cold blocks fault later
        }
        // The GPU hammers block 0 without faulting: no touch happens.
        assert_eq!(l.pop_lru(), Some(b(0)), "hottest block evicted first");
    }
}
