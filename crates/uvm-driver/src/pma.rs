//! Physical Memory Allocator (PMA) model.
//!
//! The UVM driver obtains GPU physical memory by calling into the
//! proprietary NVIDIA driver. The paper (§III-D) observes that these calls
//! are expensive and latency-sensitive, so the driver *over-provisions*:
//! each call reserves a large chunk which is cached and carved up by later
//! allocations, making allocation cost "relatively constant and negligible
//! at large sizes" while dominating at small sizes (Fig. 4).
//!
//! This model tracks three quantities: `capacity` (GPU memory size),
//! `reserved` (memory obtained from the proprietary driver so far — never
//! returned), and `in_use` (memory handed out to VABlock backings). Freed
//! backings return to the reserved cache and are reused without a new
//! proprietary call.

use serde::{Deserialize, Serialize};
use sim_engine::{CostModel, SimDuration, SimRng};

/// Result of a successful PMA allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmaGrant {
    /// Virtual time charged (zero when served from the cache).
    pub cost: SimDuration,
    /// Number of calls made into the proprietary driver (0 or more; a
    /// large request may need several chunk reservations).
    pub calls: u64,
}

/// Error: GPU memory exhausted — the caller must evict and retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmaExhausted {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes currently available (capacity − in_use).
    pub available: u64,
}

impl PmaExhausted {
    /// Bytes the caller must free for a retry of the same request to
    /// succeed — the batched eviction scan's target. `alloc` fails iff
    /// `requested > available`, so this is always positive.
    pub fn shortfall(&self) -> u64 {
        self.requested - self.available
    }
}

/// The physical memory allocator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pma {
    capacity: u64,
    reserved: u64,
    in_use: u64,
}

impl Pma {
    /// A PMA managing `capacity` bytes of GPU memory.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "GPU memory capacity must be nonzero");
        Pma {
            capacity,
            reserved: 0,
            in_use: 0,
        }
    }

    /// Attempt to allocate `bytes` of physical backing.
    ///
    /// Serves from the over-provisioned cache when possible; otherwise
    /// reserves one or more chunks from the proprietary driver, each
    /// charged at the (jittered) call cost. Fails with [`PmaExhausted`]
    /// when `in_use + bytes` would exceed capacity — the eviction trigger.
    pub fn alloc(
        &mut self,
        bytes: u64,
        cost: &CostModel,
        rng: &mut SimRng,
    ) -> Result<PmaGrant, PmaExhausted> {
        if self.in_use + bytes > self.capacity {
            return Err(PmaExhausted {
                requested: bytes,
                available: self.capacity - self.in_use,
            });
        }
        let mut charged = SimDuration::ZERO;
        let mut calls = 0;
        while self.reserved < self.in_use + bytes {
            let chunk = cost.pma_chunk_bytes().min(self.capacity - self.reserved);
            debug_assert!(chunk > 0, "reserved should never exceed capacity");
            self.reserved += chunk;
            charged += cost.pma_alloc_call(rng);
            calls += 1;
        }
        self.in_use += bytes;
        Ok(PmaGrant {
            cost: charged,
            calls,
        })
    }

    /// Return `bytes` of backing to the cache (eviction path). The memory
    /// stays reserved — later allocations reuse it without a call.
    pub fn free(&mut self, bytes: u64) {
        assert!(bytes <= self.in_use, "freeing more than allocated");
        self.in_use -= bytes;
    }

    /// Bytes currently backing VABlocks.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Bytes obtained from the proprietary driver so far.
    pub fn reserved(&self) -> u64 {
        self.reserved
    }

    /// Total GPU memory.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes still allocatable before eviction is needed.
    pub fn available(&self) -> u64 {
        self.capacity - self.in_use
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::units::{MIB, VABLOCK_SIZE};

    fn fixture() -> (Pma, CostModel, SimRng) {
        (
            Pma::new(64 * MIB),
            CostModel::default(),
            SimRng::from_seed(1),
        )
    }

    #[test]
    fn first_alloc_reserves_a_chunk() {
        let (mut pma, cost, mut rng) = fixture();
        let g = pma.alloc(VABLOCK_SIZE, &cost, &mut rng).unwrap();
        assert_eq!(g.calls, 1);
        assert!(g.cost > SimDuration::ZERO);
        assert_eq!(pma.in_use(), VABLOCK_SIZE);
        assert_eq!(pma.reserved(), 32 * MIB, "over-provisioned to chunk size");
    }

    #[test]
    fn cached_allocs_are_free() {
        let (mut pma, cost, mut rng) = fixture();
        pma.alloc(VABLOCK_SIZE, &cost, &mut rng).unwrap();
        // Next 15 VABlocks fit in the 32 MiB chunk: zero calls, zero cost.
        for _ in 0..15 {
            let g = pma.alloc(VABLOCK_SIZE, &cost, &mut rng).unwrap();
            assert_eq!(g.calls, 0);
            assert_eq!(g.cost, SimDuration::ZERO);
        }
        // The 17th VABlock needs a second chunk.
        let g = pma.alloc(VABLOCK_SIZE, &cost, &mut rng).unwrap();
        assert_eq!(g.calls, 1);
    }

    #[test]
    fn exhaustion_reports_available() {
        let (mut pma, cost, mut rng) = fixture();
        for _ in 0..32 {
            pma.alloc(VABLOCK_SIZE, &cost, &mut rng).unwrap();
        }
        let err = pma.alloc(VABLOCK_SIZE, &cost, &mut rng).unwrap_err();
        assert_eq!(err.requested, VABLOCK_SIZE);
        assert_eq!(err.available, 0);
    }

    #[test]
    fn shortfall_is_the_exact_deficit() {
        let (mut pma, cost, mut rng) = fixture();
        for _ in 0..31 {
            pma.alloc(VABLOCK_SIZE, &cost, &mut rng).unwrap();
        }
        // One VABlock still available; ask for two.
        let err = pma.alloc(2 * VABLOCK_SIZE, &cost, &mut rng).unwrap_err();
        assert_eq!(err.shortfall(), VABLOCK_SIZE);
        // Freeing exactly the shortfall makes the retry succeed.
        pma.free(VABLOCK_SIZE);
        assert!(pma.alloc(2 * VABLOCK_SIZE, &cost, &mut rng).is_ok());
    }

    #[test]
    fn freed_memory_is_reused_without_calls() {
        let (mut pma, cost, mut rng) = fixture();
        for _ in 0..32 {
            pma.alloc(VABLOCK_SIZE, &cost, &mut rng).unwrap();
        }
        pma.free(VABLOCK_SIZE);
        assert_eq!(pma.available(), VABLOCK_SIZE);
        let g = pma.alloc(VABLOCK_SIZE, &cost, &mut rng).unwrap();
        assert_eq!(g.calls, 0, "freed backing served from cache");
        assert_eq!(g.cost, SimDuration::ZERO);
    }

    #[test]
    fn chunk_clamped_to_capacity() {
        // Capacity smaller than one chunk: reservation clamps, no overflow.
        let mut pma = Pma::new(3 * MIB);
        let cost = CostModel::default();
        let mut rng = SimRng::from_seed(2);
        let g = pma.alloc(2 * MIB, &cost, &mut rng).unwrap();
        assert_eq!(g.calls, 1);
        assert_eq!(pma.reserved(), 3 * MIB);
        assert!(pma.alloc(2 * MIB, &cost, &mut rng).is_err());
    }

    #[test]
    #[should_panic(expected = "freeing more than allocated")]
    fn over_free_panics() {
        let (mut pma, _, _) = fixture();
        pma.free(1);
    }
}
