//! Property-based tests for the simulation substrate: event-queue
//! ordering against a sorted reference, time arithmetic, RNG laws, and
//! cost-model monotonicity.

use proptest::prelude::*;
use sim_engine::{CostModel, CostModelConfig, EventQueue, SimDuration, SimRng, SimTime};

proptest! {
    #[test]
    fn event_queue_matches_stable_sort(times in proptest::collection::vec(0u64..1_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|e| (e.at.as_nanos(), e.payload))).collect();
        let mut want: Vec<(u64, usize)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i))
            .collect();
        want.sort_by_key(|&(t, _)| t); // stable: FIFO ties preserved
        prop_assert_eq!(got, want);
    }

    #[test]
    fn queue_clock_is_monotone(times in proptest::collection::vec(0u64..1_000, 1..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_nanos(t), ());
        }
        let mut last = SimTime::ZERO;
        while let Some(e) = q.pop() {
            prop_assert!(e.at >= last);
            prop_assert_eq!(q.now(), e.at);
            last = e.at;
        }
    }

    #[test]
    fn duration_addition_is_associative_and_commutative(
        a in 0u64..u64::MAX / 4,
        b in 0u64..u64::MAX / 4,
        c in 0u64..u64::MAX / 4,
    ) {
        let (da, db, dc) = (
            SimDuration::from_nanos(a),
            SimDuration::from_nanos(b),
            SimDuration::from_nanos(c),
        );
        prop_assert_eq!(da + db, db + da);
        prop_assert_eq!((da + db) + dc, da + (db + dc));
    }

    #[test]
    fn time_plus_duration_roundtrips(t in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 4) {
        let start = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        let end = start + dur;
        prop_assert_eq!(end - start, dur);
        prop_assert_eq!(end.saturating_since(start), dur);
        prop_assert_eq!(start.saturating_since(end), SimDuration::ZERO);
    }

    #[test]
    fn rng_shuffle_is_permutation(seed in any::<u64>(), n in 1usize..500) {
        let mut rng = SimRng::from_seed(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), stream in any::<u64>()) {
        let parent = SimRng::from_seed(seed);
        let mut a = parent.derive(stream);
        let mut b = parent.derive(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn transfer_cost_is_monotone_in_bytes(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let m = CostModel::default();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(m.h2d_transfer(lo) <= m.h2d_transfer(hi));
        prop_assert!(m.d2h_transfer(lo) <= m.d2h_transfer(hi));
        prop_assert!(m.explicit_transfer(lo) <= m.explicit_transfer(hi));
    }

    #[test]
    fn per_page_costs_are_linear(pages in 0u64..100_000) {
        let m = CostModel::default();
        let map_one = m.map_pages(1) - m.map_pages(0);
        prop_assert_eq!(m.map_pages(pages), m.map_pages(0) + map_one * pages);
        prop_assert_eq!(m.staging(pages), m.staging(1) * pages);
        prop_assert_eq!(m.page_zero(pages), m.page_zero(1) * pages);
        prop_assert_eq!(m.unmap_pages(pages), m.unmap_pages(1) * pages);
    }

    #[test]
    fn bandwidth_config_scales_wire_time(gbps in 1.0f64..100.0) {
        let cfg = CostModelConfig {
            h2d_bandwidth_gbps: gbps,
            ..CostModelConfig::default()
        };
        let m = CostModel::new(cfg);
        let t = m.h2d_wire(1_000_000_000);
        let expect_ns = 1_000_000_000.0 / gbps;
        let err = (t.as_nanos() as f64 - expect_ns).abs() / expect_ns;
        prop_assert!(err < 1e-6, "wire time {} vs expected {}", t.as_nanos(), expect_ns);
    }
}
