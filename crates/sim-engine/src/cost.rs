//! Calibrated cost model for every operation the simulated GPU and UVM
//! driver perform.
//!
//! The paper reports magnitudes, not a cost table, so the constants here
//! are calibrated to reproduce those magnitudes on the paper's platform
//! (Titan V, PCIe 3.0 x16, CUDA 11.0, driver 450.51.05):
//!
//! * a far-fault costs **30–45 µs** end to end (paper §I, citing Zheng et
//!   al.), realised here as the sum of per-batch and per-fault costs,
//! * small UVM kernels show a **400–600 µs base overhead** (paper §III-C),
//!   realised by the one-time first-touch cost plus first-batch handling,
//! * the host–device interconnect moves **~12 GB/s** each direction,
//! * physical memory allocation (PMA) calls into the proprietary driver
//!   are expensive and "subject to system latency" (paper §III-D), so they
//!   carry jitter and are amortised by over-provisioned chunk allocation.
//!
//! Everything is configurable through [`CostModelConfig`] so ablation
//! benches can explore sensitivity.

use crate::rng::SimRng;
use crate::time::SimDuration;
use crate::units::PAGE_SIZE;
use serde::{Deserialize, Serialize};

/// Tunable constants for the cost model. All `_us` fields are microseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModelConfig {
    // ---- Host–device interconnect ----
    /// Host-to-device bandwidth in GB/s (PCIe 3.0 x16 effective).
    pub h2d_bandwidth_gbps: f64,
    /// Device-to-host bandwidth in GB/s.
    pub d2h_bandwidth_gbps: f64,
    /// Fixed setup latency per DMA transfer operation (µs).
    pub dma_setup_us: f64,
    /// Host-side staging copy cost per 4 KB page (µs).
    pub staging_page_us: f64,

    // ---- Driver: batch pre/post-processing ----
    /// Driver wakeup cost per processed batch: interrupt + context (µs).
    pub interrupt_wake_us: f64,
    /// Cost to read one fault entry out of the fault buffer (µs).
    pub fault_fetch_us: f64,
    /// Cost of one polling iteration when a fault entry is not ready (µs).
    pub fault_poll_us: f64,
    /// Cost to sort/bin one batch of faults into VABlocks (µs); roughly
    /// constant because batches are bounded (paper §III-C).
    pub batch_sort_us: f64,
    /// Cost to flush the device fault buffer (remote queue management, µs).
    pub buffer_flush_us: f64,
    /// Cost to issue one replay notification to the GPU (µs).
    pub replay_issue_us: f64,

    // ---- Driver: fault service ----
    /// Bookkeeping cost per VABlock visited in a batch (µs).
    pub vablock_setup_us: f64,
    /// Cost of one PMA allocation call into the proprietary driver (µs).
    pub pma_alloc_call_us: f64,
    /// Relative jitter on PMA calls (0.0–1.0), modelling system-latency
    /// sensitivity observed in the paper.
    pub pma_alloc_jitter: f64,
    /// Over-provisioning granularity of the PMA cache (bytes). Each call
    /// reserves this much, amortising later allocations.
    pub pma_chunk_bytes: u64,
    /// Cost to zero one newly allocated GPU page (µs).
    pub page_zero_us: f64,
    /// Cost to map one page into GPU page tables (µs).
    pub page_map_us: f64,
    /// Cost of TLB invalidate + membar per VABlock mapping operation (µs).
    pub membar_us: f64,
    /// Cost to unmap one page (µs).
    pub unmap_page_us: f64,

    // ---- Eviction ----
    /// Fixed cost per eviction: lock drop/retake and fault-path restart (µs).
    pub evict_fixed_us: f64,
    /// Cost to update the LRU list on a fault (µs).
    pub lru_update_us: f64,
    /// Cost to process one access-counter notification (µs).
    pub access_notif_us: f64,

    // ---- GPU side ----
    /// GPU time for one resident-page access (ns).
    pub gpu_access_ns: u64,
    /// GPU hardware cost to raise one fault into the buffer (µs).
    pub fault_raise_us: f64,
    /// Latency from replay issue until stalled warps retry (µs).
    pub replay_latency_us: f64,
    /// Kernel launch overhead (µs).
    pub kernel_launch_us: f64,
    /// One-time UVM first-touch overhead: VA-space setup, driver init (µs).
    pub uvm_first_touch_us: f64,
    /// Setup cost for one explicit `cudaMemcpy`-style transfer (µs).
    pub explicit_copy_setup_us: f64,
}

impl Default for CostModelConfig {
    fn default() -> Self {
        CostModelConfig {
            h2d_bandwidth_gbps: 12.0,
            d2h_bandwidth_gbps: 12.0,
            dma_setup_us: 6.0,
            staging_page_us: 0.35,

            interrupt_wake_us: 10.0,
            fault_fetch_us: 0.15,
            fault_poll_us: 1.0,
            batch_sort_us: 4.0,
            buffer_flush_us: 30.0,
            replay_issue_us: 6.0,

            vablock_setup_us: 2.0,
            pma_alloc_call_us: 35.0,
            pma_alloc_jitter: 0.4,
            pma_chunk_bytes: 32 * 1024 * 1024,
            page_zero_us: 0.05,
            page_map_us: 0.08,
            membar_us: 3.0,
            unmap_page_us: 0.05,

            evict_fixed_us: 25.0,
            lru_update_us: 0.2,
            access_notif_us: 0.5,

            gpu_access_ns: 20,
            fault_raise_us: 0.3,
            replay_latency_us: 10.0,
            kernel_launch_us: 15.0,
            uvm_first_touch_us: 350.0,
            explicit_copy_setup_us: 10.0,
        }
    }
}

impl CostModelConfig {
    /// The paper's platform: PCIe 3.0 x16 (~12 GB/s effective).
    pub fn pcie3() -> Self {
        CostModelConfig::default()
    }

    /// PCIe 4.0 x16 (~24 GB/s effective), same software costs.
    pub fn pcie4() -> Self {
        CostModelConfig {
            h2d_bandwidth_gbps: 24.0,
            d2h_bandwidth_gbps: 24.0,
            ..CostModelConfig::default()
        }
    }

    /// NVLink 2.0 (Power9-class hosts, ~70 GB/s effective and lower
    /// per-transfer setup). The paper's related work (ref. 14, Gayatri et
    /// al.) compares exactly this platform split; software fault costs
    /// are host-side and stay put.
    pub fn nvlink2() -> Self {
        CostModelConfig {
            h2d_bandwidth_gbps: 70.0,
            d2h_bandwidth_gbps: 70.0,
            dma_setup_us: 3.0,
            ..CostModelConfig::default()
        }
    }
}

/// The compiled cost model: turns configuration constants into
/// [`SimDuration`] charges. Cheap to clone; immutable after construction.
#[derive(Debug, Clone)]
pub struct CostModel {
    cfg: CostModelConfig,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new(CostModelConfig::default())
    }
}

#[inline]
fn us(v: f64) -> SimDuration {
    SimDuration::from_micros_f64(v)
}

impl CostModel {
    /// Compile a cost model from its configuration.
    pub fn new(cfg: CostModelConfig) -> Self {
        assert!(
            cfg.h2d_bandwidth_gbps > 0.0,
            "h2d bandwidth must be positive"
        );
        assert!(
            cfg.d2h_bandwidth_gbps > 0.0,
            "d2h bandwidth must be positive"
        );
        assert!(
            (0.0..1.0).contains(&cfg.pma_alloc_jitter),
            "pma jitter must be in [0,1)"
        );
        CostModel { cfg }
    }

    /// Borrow the underlying configuration.
    pub fn config(&self) -> &CostModelConfig {
        &self.cfg
    }

    // ---- Interconnect ----

    /// Pure wire time to move `bytes` host→device (no setup latency).
    /// 1 GB/s == 1 byte/ns, so ns = bytes / GBps.
    #[inline]
    pub fn h2d_wire(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos((bytes as f64 / self.cfg.h2d_bandwidth_gbps).round() as u64)
    }

    /// Pure wire time to move `bytes` device→host.
    #[inline]
    pub fn d2h_wire(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos((bytes as f64 / self.cfg.d2h_bandwidth_gbps).round() as u64)
    }

    /// One host→device DMA transfer of `bytes`: setup + wire time.
    #[inline]
    pub fn h2d_transfer(&self, bytes: u64) -> SimDuration {
        us(self.cfg.dma_setup_us) + self.h2d_wire(bytes)
    }

    /// One device→host DMA transfer of `bytes`: setup + wire time.
    #[inline]
    pub fn d2h_transfer(&self, bytes: u64) -> SimDuration {
        us(self.cfg.dma_setup_us) + self.d2h_wire(bytes)
    }

    /// Host staging-copy cost for `pages` 4 KB pages.
    #[inline]
    pub fn staging(&self, pages: u64) -> SimDuration {
        us(self.cfg.staging_page_us) * pages
    }

    /// An explicit (`cudaMemcpy`-style) bulk transfer of `bytes`.
    #[inline]
    pub fn explicit_transfer(&self, bytes: u64) -> SimDuration {
        us(self.cfg.explicit_copy_setup_us) + self.h2d_wire(bytes)
    }

    // ---- Batch pre/post-processing ----

    /// Driver wakeup per batch.
    #[inline]
    pub fn interrupt_wake(&self) -> SimDuration {
        us(self.cfg.interrupt_wake_us)
    }

    /// Reading `n` fault entries from the buffer.
    #[inline]
    pub fn fault_fetch(&self, n: u64) -> SimDuration {
        us(self.cfg.fault_fetch_us) * n
    }

    /// `n` polling iterations on not-yet-ready fault entries.
    #[inline]
    pub fn fault_poll(&self, n: u64) -> SimDuration {
        us(self.cfg.fault_poll_us) * n
    }

    /// Sorting/binning one batch.
    #[inline]
    pub fn batch_sort(&self) -> SimDuration {
        us(self.cfg.batch_sort_us)
    }

    /// Flushing the device fault buffer.
    #[inline]
    pub fn buffer_flush(&self) -> SimDuration {
        us(self.cfg.buffer_flush_us)
    }

    /// Issuing one replay notification.
    #[inline]
    pub fn replay_issue(&self) -> SimDuration {
        us(self.cfg.replay_issue_us)
    }

    // ---- Service ----

    /// Per-VABlock bookkeeping in a batch.
    #[inline]
    pub fn vablock_setup(&self) -> SimDuration {
        us(self.cfg.vablock_setup_us)
    }

    /// One PMA allocation call (jittered; models system-latency noise).
    #[inline]
    pub fn pma_alloc_call(&self, rng: &mut SimRng) -> SimDuration {
        us(rng.jitter(self.cfg.pma_alloc_call_us, self.cfg.pma_alloc_jitter))
    }

    /// The over-provisioning chunk size of the PMA cache.
    #[inline]
    pub fn pma_chunk_bytes(&self) -> u64 {
        self.cfg.pma_chunk_bytes
    }

    /// Zeroing `pages` newly allocated GPU pages.
    #[inline]
    pub fn page_zero(&self, pages: u64) -> SimDuration {
        us(self.cfg.page_zero_us) * pages
    }

    /// Mapping `pages` pages plus one membar/TLB-invalidate.
    #[inline]
    pub fn map_pages(&self, pages: u64) -> SimDuration {
        us(self.cfg.page_map_us) * pages + us(self.cfg.membar_us)
    }

    /// Unmapping `pages` pages.
    #[inline]
    pub fn unmap_pages(&self, pages: u64) -> SimDuration {
        us(self.cfg.unmap_page_us) * pages
    }

    /// Migrating `pages` pages host→device: staging + one coalesced DMA.
    #[inline]
    pub fn migrate_h2d(&self, pages: u64) -> SimDuration {
        self.staging(pages) + self.h2d_transfer(pages * PAGE_SIZE)
    }

    /// Writing back `pages` dirty pages device→host during eviction.
    #[inline]
    pub fn writeback_d2h(&self, pages: u64) -> SimDuration {
        self.d2h_transfer(pages * PAGE_SIZE)
    }

    // ---- Eviction ----

    /// Fixed eviction overhead (lock drop/retake, fault-path restart).
    #[inline]
    pub fn evict_fixed(&self) -> SimDuration {
        us(self.cfg.evict_fixed_us)
    }

    /// LRU list update on fault.
    #[inline]
    pub fn lru_update(&self) -> SimDuration {
        us(self.cfg.lru_update_us)
    }

    /// Processing `n` access-counter notifications.
    #[inline]
    pub fn access_notifications(&self, n: u64) -> SimDuration {
        us(self.cfg.access_notif_us) * n
    }

    // ---- GPU side ----

    /// GPU time for one resident access.
    #[inline]
    pub fn gpu_access(&self) -> SimDuration {
        SimDuration::from_nanos(self.cfg.gpu_access_ns)
    }

    /// GPU hardware cost to raise one fault.
    #[inline]
    pub fn fault_raise(&self) -> SimDuration {
        us(self.cfg.fault_raise_us)
    }

    /// Replay propagation latency on the device.
    #[inline]
    pub fn replay_latency(&self) -> SimDuration {
        us(self.cfg.replay_latency_us)
    }

    /// Kernel launch overhead.
    #[inline]
    pub fn kernel_launch(&self) -> SimDuration {
        us(self.cfg.kernel_launch_us)
    }

    /// One-time UVM first-touch overhead.
    #[inline]
    pub fn uvm_first_touch(&self) -> SimDuration {
        us(self.cfg.uvm_first_touch_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{GIB, MIB};

    #[test]
    fn wire_time_matches_bandwidth() {
        let m = CostModel::default();
        // 12 GB at 12 GB/s = 1 s.
        assert_eq!(m.h2d_wire(12 * GIB).as_secs_f64().round() as u64, 1);
        // Wire time is linear in bytes (up to sub-ns rounding).
        let one = m.h2d_wire(MIB).as_nanos() as i64;
        let four = m.h2d_wire(4 * MIB).as_nanos() as i64;
        assert!(
            (four - 4 * one).abs() <= 4,
            "wire time not linear: {one} vs {four}"
        );
    }

    #[test]
    fn transfer_includes_setup() {
        let m = CostModel::default();
        assert!(m.h2d_transfer(0) > SimDuration::ZERO);
        assert_eq!(
            m.h2d_transfer(MIB),
            SimDuration::from_micros_f64(m.config().dma_setup_us) + m.h2d_wire(MIB)
        );
    }

    #[test]
    fn far_fault_cost_is_in_the_papers_band() {
        // A single isolated fault: wake + fetch + sort + VABlock setup +
        // migrate one 64KB region + map + replay. Should land in the
        // 30–60 µs class the paper reports (§I: 30–45 µs plus batching).
        let m = CostModel::default();
        let total = m.interrupt_wake()
            + m.fault_fetch(1)
            + m.batch_sort()
            + m.vablock_setup()
            + m.migrate_h2d(16)
            + m.map_pages(16)
            + m.replay_issue();
        let usec = total.as_micros_f64();
        assert!(
            (25.0..90.0).contains(&usec),
            "single-fault cost {usec:.1}us out of calibration band"
        );
    }

    #[test]
    fn pma_jitter_is_bounded_and_deterministic() {
        let m = CostModel::default();
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(1);
        for _ in 0..100 {
            let x = m.pma_alloc_call(&mut a);
            let y = m.pma_alloc_call(&mut b);
            assert_eq!(x, y);
            let us = x.as_micros_f64();
            let base = m.config().pma_alloc_call_us;
            let spread = m.config().pma_alloc_jitter;
            assert!(us >= base * (1.0 - spread) - 1e-6);
            assert!(us <= base * (1.0 + spread) + 1e-6);
        }
    }

    #[test]
    fn map_pages_scales_linearly_plus_membar() {
        let m = CostModel::default();
        let one = m.map_pages(1);
        let many = m.map_pages(101);
        let per_page = SimDuration::from_micros_f64(m.config().page_map_us);
        assert_eq!(many - one, per_page * 100);
    }

    #[test]
    fn interconnect_presets_scale_wire_time_only() {
        let pcie3 = CostModel::new(CostModelConfig::pcie3());
        let pcie4 = CostModel::new(CostModelConfig::pcie4());
        let nvlink = CostModel::new(CostModelConfig::nvlink2());
        let bytes = 1 << 30;
        assert!(pcie4.h2d_wire(bytes) < pcie3.h2d_wire(bytes));
        assert!(nvlink.h2d_wire(bytes) < pcie4.h2d_wire(bytes));
        // Software costs are identical across links.
        assert_eq!(pcie3.interrupt_wake(), nvlink.interrupt_wake());
        assert_eq!(pcie3.batch_sort(), nvlink.batch_sort());
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let cfg = CostModelConfig {
            h2d_bandwidth_gbps: 0.0,
            ..CostModelConfig::default()
        };
        let _ = CostModel::new(cfg);
    }
}
