//! Virtual time: nanosecond-resolution simulated clock types.
//!
//! All durations charged by the cost model and all timestamps observed by
//! the simulated GPU and UVM driver use these types. They are thin wrappers
//! over `u64` nanoseconds with checked arithmetic in debug builds and
//! convenient constructors for the units that appear in the paper
//! (microseconds for fault costs, milliseconds for kernel times).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, measured in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Timestamp as fractional microseconds since simulation start — the
    /// unit the Chrome-trace/Perfetto `ts` field uses. Exact for any
    /// simulated timeline shorter than ~104 days (2^53 ns).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time elapsed since `earlier`. Returns `SimDuration::ZERO` if
    /// `earlier` is in the future (saturating).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional microseconds (cost-model constants are
    /// naturally expressed in µs).
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0, "negative duration");
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_micros(40);
        assert_eq!(t.as_nanos(), 40_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(40));
        assert_eq!(t.as_micros_f64(), 40.0);
        assert_eq!(SimTime::from_nanos(1_500).as_micros_f64(), 1.5);
    }

    #[test]
    fn duration_units_are_consistent() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn duration_display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_nanos(10));
    }

    #[test]
    fn duration_sum_and_scale() {
        let total: SimDuration = (0..4).map(|_| SimDuration::from_micros(5)).sum();
        assert_eq!(total, SimDuration::from_micros(20));
        assert_eq!(total * 2, SimDuration::from_micros(40));
        assert_eq!(total / 4, SimDuration::from_micros(5));
    }
}
