//! Byte-size and page-geometry constants shared across the workspace.
//!
//! The geometry mirrors NVIDIA UVM on an x86 host as analysed in the paper:
//! 4 KB OS pages, 64 KB "big pages" (the Power9-emulation prefetch upgrade
//! granularity), and 2 MB virtual address blocks (VABlocks) — the unit of
//! GPU physical allocation and eviction.

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// Size of an OS page (x86): 4 KB.
pub const PAGE_SIZE: u64 = 4 * KIB;

/// Size of a UVM "big page" (prefetch stage-1 upgrade granularity): 64 KB.
pub const BIG_PAGE_SIZE: u64 = 64 * KIB;

/// Size of a UVM virtual address block (VABlock): 2 MB.
pub const VABLOCK_SIZE: u64 = 2 * MIB;

/// Number of 4 KB pages per VABlock: 512.
pub const PAGES_PER_VABLOCK: usize = (VABLOCK_SIZE / PAGE_SIZE) as usize;

/// Number of 4 KB pages per big page: 16.
pub const PAGES_PER_BIG_PAGE: usize = (BIG_PAGE_SIZE / PAGE_SIZE) as usize;

/// Number of big pages per VABlock: 32.
pub const BIG_PAGES_PER_VABLOCK: usize = PAGES_PER_VABLOCK / PAGES_PER_BIG_PAGE;

/// Depth of the density-prefetch binary tree: log2(2MB / 4KB) = 9 levels of
/// edges, i.e. the tree has levels 0 (leaves, 512 nodes) through 9 (root).
pub const PREFETCH_TREE_LEVELS: usize = 9;

/// Number of pages needed to hold `bytes`, rounding up.
#[inline]
pub const fn pages_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

/// Number of VABlocks needed to hold `bytes`, rounding up.
#[inline]
pub const fn vablocks_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(VABLOCK_SIZE)
}

/// Render a byte count human-readably (e.g. `1.50GiB`).
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= GIB {
        format!("{:.2}GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.2}MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.2}KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_the_paper() {
        assert_eq!(PAGE_SIZE, 4096);
        assert_eq!(BIG_PAGE_SIZE, 65536);
        assert_eq!(VABLOCK_SIZE, 2 * 1024 * 1024);
        assert_eq!(PAGES_PER_VABLOCK, 512);
        assert_eq!(PAGES_PER_BIG_PAGE, 16);
        assert_eq!(BIG_PAGES_PER_VABLOCK, 32);
        // log2(512) = 9 — the paper's "9-level binary tree".
        assert_eq!(1usize << PREFETCH_TREE_LEVELS, PAGES_PER_VABLOCK);
    }

    #[test]
    fn rounding_helpers() {
        assert_eq!(pages_for_bytes(0), 0);
        assert_eq!(pages_for_bytes(1), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE + 1), 2);
        assert_eq!(vablocks_for_bytes(VABLOCK_SIZE + 1), 2);
        assert_eq!(vablocks_for_bytes(VABLOCK_SIZE), 1);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.00KiB");
        assert_eq!(fmt_bytes(3 * MIB), "3.00MiB");
        assert_eq!(fmt_bytes(GIB + GIB / 2), "1.50GiB");
    }
}
