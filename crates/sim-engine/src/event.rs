//! A generic discrete-event queue keyed by virtual time.
//!
//! Events scheduled at the same instant are delivered in FIFO order
//! (deterministic tie-breaking via a monotone sequence number), which keeps
//! whole-simulation runs bit-for-bit reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of payload type `T` scheduled at a virtual instant.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<T> {
    /// When the event fires.
    pub at: SimTime,
    seq: u64,
    /// The event payload.
    pub payload: T,
}

impl<T> PartialEq for ScheduledEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for ScheduledEvent<T> {}

impl<T> PartialOrd for ScheduledEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for ScheduledEvent<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want min-time first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<ScheduledEvent<T>>,
    next_seq: u64,
    now: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current virtual time (the timestamp of the last popped event, or
    /// zero before any event has fired).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` to fire at `at`.
    ///
    /// # Panics
    /// In debug builds, panics if `at` is before the current virtual time
    /// (causality violation).
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, payload });
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        let ev = self.heap.pop()?;
        self.now = ev.at;
        Some(ev)
    }

    /// Peek at the earliest event without firing it.
    pub fn peek(&self) -> Option<&ScheduledEvent<T>> {
        self.heap.peek()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO + SimDuration::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7_000));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }
}
