//! Deterministic random-number plumbing.
//!
//! Every stochastic decision in the simulator (GPU warp interleaving,
//! random-access workload page orders, allocation jitter) draws from a
//! [`SimRng`] seeded from the experiment configuration, so identical
//! configurations produce identical fault traces, figures, and tables.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seedable, fast, deterministic RNG used throughout the simulator.
///
/// Wraps [`SmallRng`]; the wrapper exists so the algorithm can be swapped
/// in one place and so derived streams can be split off reproducibly.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    base_seed: u64,
}

impl SimRng {
    /// Create an RNG from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            base_seed: seed,
        }
    }

    /// Split off an independent child stream, labelled by `stream`.
    ///
    /// Children with distinct labels are statistically independent, and the
    /// parent's own stream is unaffected, so adding a new consumer of
    /// randomness does not perturb existing ones.
    pub fn derive(&self, stream: u64) -> SimRng {
        // SplitMix64-style mixing of (label, base seed) — cheap and good
        // enough for decorrelating simulation streams.
        let mut z = stream
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.base_seed);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::from_seed(z ^ (z >> 31))
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.random_range(0..n)
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Jittered value: `base * uniform(1 - spread, 1 + spread)`.
    ///
    /// Used to model system-latency sensitivity (e.g. PMA allocation calls,
    /// which the paper observes are "subject to system latency").
    pub fn jitter(&mut self, base: f64, spread: f64) -> f64 {
        debug_assert!((0.0..1.0).contains(&spread));
        base * (1.0 + spread * (2.0 * self.next_f64() - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(42);
        let mut b = SimRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn derive_is_deterministic_and_independent() {
        let parent = SimRng::from_seed(7);
        let mut c1 = parent.derive(1);
        let mut c2 = parent.derive(1);
        let mut c3 = parent.derive(2);
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn derive_does_not_perturb_parent() {
        let mut a = SimRng::from_seed(11);
        let mut b = SimRng::from_seed(11);
        let _child = b.derive(99);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::from_seed(9);
        let mut v: Vec<u32> = (0..1000).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..1000).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn jitter_stays_in_bounds() {
        let mut rng = SimRng::from_seed(3);
        for _ in 0..1000 {
            let x = rng.jitter(100.0, 0.25);
            assert!((75.0..=125.0).contains(&x));
        }
    }

    #[test]
    fn index_covers_range() {
        let mut rng = SimRng::from_seed(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
