//! # sim-engine
//!
//! Discrete-event simulation substrate for the `uvm-sim` workspace.
//!
//! This crate provides the building blocks every other crate in the
//! workspace rests on:
//!
//! * [`time`] — a nanosecond-resolution virtual clock ([`SimTime`],
//!   [`SimDuration`]) that is advanced explicitly by the simulation, never
//!   by the host OS.
//! * [`event`] — a generic discrete-event queue keyed by virtual time with
//!   deterministic FIFO tie-breaking.
//! * [`cost`] — the calibrated latency/bandwidth cost model used to charge
//!   virtual time for every operation the simulated UVM driver and GPU
//!   perform. The constants are calibrated to the magnitudes reported in
//!   Allen & Ge, *"Demystifying GPU UVM Cost with Deep Runtime and Workload
//!   Analysis"* (IPDPS 2021): a far-fault costs 30–45 µs end to end, the
//!   host–device interconnect is PCIe 3.0 x16 class (~12 GB/s), and small
//!   UVM kernels exhibit a 400–600 µs base overhead.
//! * [`rng`] — deterministic, seedable random-number plumbing so every
//!   simulation run (and thus every regenerated figure/table) is exactly
//!   reproducible.
//! * [`units`] — byte/page size helpers shared by the whole workspace.

#![warn(missing_docs)]

pub mod cost;
pub mod event;
pub mod rng;
pub mod time;
pub mod units;

pub use cost::{CostModel, CostModelConfig};
pub use event::{EventQueue, ScheduledEvent};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
