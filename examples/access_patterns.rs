//! Dump the driver-visible page access pattern of a workload — the
//! tooling behind the paper's Figure 7/8 scatter plots.
//!
//! Writes `<workload>_pattern.csv` with one row per driver-processed
//! fault (plus evictions when oversubscribed) and prints a terminal
//! scatter preview: fault occurrence order (x) vs page index (y).
//!
//! ```text
//! cargo run --release --example access_patterns [workload] [ratio_pct]
//! ```

use uvm_sim::{run, EventKind, PrefetchPolicy, SimConfig, Workload, WorkloadKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kind = match args.first().map(String::as_str) {
        None | Some("sgemm") => WorkloadKind::Sgemm,
        Some("regular") => WorkloadKind::Regular,
        Some("random") => WorkloadKind::Random,
        Some("stream") => WorkloadKind::Stream,
        Some("cufft") => WorkloadKind::Cufft,
        Some("tealeaf") => WorkloadKind::Tealeaf,
        Some("hpgmg") => WorkloadKind::Hpgmg,
        Some("cusparse") => WorkloadKind::Cusparse,
        Some(other) => {
            eprintln!("unknown workload {other}");
            std::process::exit(2);
        }
    };
    let ratio_pct: u64 = match args.get(1) {
        None => 40,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("ratio must be a percentage, got {v:?}");
            std::process::exit(2);
        }),
    };

    let mut config = SimConfig::scaled(1.0 / 64.0);
    config.driver.capture_trace = true;
    if ratio_pct <= 100 {
        // Match the paper's Fig. 7 setup: prefetching disabled so the raw
        // pattern is visible.
        config.driver.prefetch = PrefetchPolicy::Disabled;
    }
    let workload = Workload::with_footprint(kind, config.driver.gpu_memory_bytes * ratio_pct / 100);
    let report = run(&config, &workload);

    // CSV artifact.
    let path = format!("{}_pattern.csv", workload.name());
    let mut csv = String::from("order,page,kind\n");
    for e in &report.trace {
        let kind = match e.kind {
            EventKind::Fault => "fault",
            EventKind::Prefetch => continue,
            EventKind::Eviction => "evict",
        };
        csv.push_str(&format!("{},{},{kind}\n", e.order, e.page));
    }
    std::fs::write(&path, &csv).expect("write CSV");

    // Terminal scatter preview (faults only).
    const W: usize = 100;
    const H: usize = 28;
    let faults: Vec<(u64, u64)> = report
        .trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Fault))
        .map(|e| (e.order, e.page))
        .collect();
    let max_order = faults.iter().map(|&(o, _)| o).max().unwrap_or(1).max(1);
    let max_page = faults.iter().map(|&(_, p)| p).max().unwrap_or(1).max(1);
    let mut grid = vec![[false; W]; H];
    for &(o, p) in &faults {
        let x = (o as usize * (W - 1)) / max_order as usize;
        let y = (p as usize * (H - 1)) / max_page as usize;
        grid[H - 1 - y][x] = true;
    }
    println!(
        "{}: {} faults over {} pages ({}% of GPU memory), prefetch {}",
        workload.name(),
        faults.len(),
        max_page + 1,
        ratio_pct,
        if ratio_pct <= 100 { "off" } else { "on" },
    );
    println!("page index ^ / fault occurrence ->");
    for row in &grid {
        let line: String = row.iter().map(|&b| if b { '*' } else { ' ' }).collect();
        println!("|{line}|");
    }
    println!("wrote {path} ({} events)", report.trace.len());
}
