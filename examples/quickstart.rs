//! Quickstart: simulate one UVM-managed kernel and print where the time
//! went.
//!
//! ```text
//! cargo run --release --example quickstart [workload] [footprint_mib]
//! ```
//!
//! `workload` is one of: regular random sgemm stream cufft tealeaf hpgmg
//! cusparse (default: regular). The platform is a 1/16-scale Titan V
//! (768 MiB of GPU memory), so footprints beyond ~768 MiB oversubscribe.

use uvm_sim::{run, Category, SimConfig, Workload, WorkloadKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kind = match args.first().map(String::as_str) {
        None | Some("regular") => WorkloadKind::Regular,
        Some("random") => WorkloadKind::Random,
        Some("sgemm") => WorkloadKind::Sgemm,
        Some("stream") => WorkloadKind::Stream,
        Some("cufft") => WorkloadKind::Cufft,
        Some("tealeaf") => WorkloadKind::Tealeaf,
        Some("hpgmg") => WorkloadKind::Hpgmg,
        Some("cusparse") => WorkloadKind::Cusparse,
        Some(other) => {
            eprintln!("unknown workload {other}");
            std::process::exit(2);
        }
    };
    let footprint_mib: u64 = match args.get(1) {
        None => 256,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("footprint must be a number of MiB, got {v:?}");
            std::process::exit(2);
        }),
    };

    let config = SimConfig::scaled(1.0 / 16.0);
    let workload = Workload::with_footprint(kind, footprint_mib << 20);

    println!(
        "simulating {} with a {} MiB footprint on {} MiB of GPU memory...",
        workload.name(),
        workload.footprint_bytes() >> 20,
        config.driver.gpu_memory_bytes >> 20
    );
    let report = run(&config, &workload);

    println!();
    println!("subscription ratio : {:.2}", report.subscription_ratio);
    println!("kernel time (UVM)  : {}", report.total_time);
    println!("explicit baseline  : {}", report.explicit_time);
    println!("ideal compute time : {}", report.compute_time);
    println!();
    println!("driver time by category:");
    print!("{}", report.timers);
    println!();
    println!();
    println!("faults observed    : {}", report.total_faults());
    println!("  duplicates       : {}", report.counters.duplicate_faults);
    println!("pages faulted in   : {}", report.counters.pages_faulted_in);
    println!("pages prefetched   : {}", report.counters.pages_prefetched);
    println!("evictions          : {}", report.counters.evictions);
    println!(
        "data moved         : {} MiB h2d, {} MiB d2h",
        report.transfers.h2d_bytes >> 20,
        report.transfers.d2h_bytes >> 20
    );
    println!(
        "eviction time share: {:.1}%",
        100.0 * report.timers.fraction(Category::Eviction)
    );
}
