//! Tuning the UVM prefetcher for an application (paper §IV-C and §VI-B4).
//!
//! Runs one workload under every prefetch policy — disabled, the stock
//! density prefetcher at several thresholds, and the adaptive mode — and
//! prints the fault coverage and kernel time of each, under- and
//! over-subscribed. Shows why threshold 1 "rivals explicit transfer" when
//! data fits, and why aggressive prefetching backfires once it doesn't.
//!
//! ```text
//! cargo run --release --example prefetch_tuning [workload]
//! ```

use uvm_sim::{run, PrefetchPolicy, SimConfig, SimReport, Workload, WorkloadKind};

fn policy_name(p: &PrefetchPolicy) -> String {
    match p {
        PrefetchPolicy::Disabled => "disabled".into(),
        PrefetchPolicy::Density { threshold, .. } => format!("density({threshold})"),
        PrefetchPolicy::Sequential { degree } => format!("sequential({degree})"),
        PrefetchPolicy::Adaptive { .. } => "adaptive".into(),
    }
}

fn header() {
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>11} {:>10}",
        "policy", "kernel_ms", "faults", "prefetched", "moved_mib", "evictions"
    );
}

fn row(p: &PrefetchPolicy, r: &SimReport) {
    println!(
        "{:<14} {:>10.2} {:>10} {:>12} {:>11} {:>10}",
        policy_name(p),
        r.total_time.as_millis_f64(),
        r.total_faults(),
        r.counters.pages_prefetched,
        r.bytes_moved() >> 20,
        r.counters.evictions
    );
}

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        None | Some("regular") => WorkloadKind::Regular,
        Some("random") => WorkloadKind::Random,
        Some("stream") => WorkloadKind::Stream,
        Some("tealeaf") => WorkloadKind::Tealeaf,
        Some(other) => {
            eprintln!("unsupported workload {other} (try regular/random/stream/tealeaf)");
            std::process::exit(2);
        }
    };

    let policies = [
        PrefetchPolicy::Disabled,
        PrefetchPolicy::Density {
            threshold: 1,
            big_pages: true,
        },
        PrefetchPolicy::Density {
            threshold: 51,
            big_pages: true,
        },
        PrefetchPolicy::Density {
            threshold: 90,
            big_pages: true,
        },
        PrefetchPolicy::Sequential { degree: 16 },
        PrefetchPolicy::Adaptive {
            undersubscribed_threshold: 1,
        },
    ];

    let base = SimConfig::scaled(1.0 / 32.0);
    let gpu = base.driver.gpu_memory_bytes;

    for (label, footprint) in [
        ("undersubscribed (60%)", gpu * 6 / 10),
        ("oversubscribed (130%)", gpu * 13 / 10),
    ] {
        let workload = Workload::with_footprint(kind, footprint);
        println!(
            "== {} {label}: {} MiB on {} MiB ==",
            workload.name(),
            workload.footprint_bytes() >> 20,
            gpu >> 20
        );
        header();
        let mut explicit = None;
        for p in &policies {
            let mut cfg = base.clone();
            cfg.driver.prefetch = *p;
            let r = run(&cfg, &workload);
            explicit.get_or_insert(r.explicit_time);
            row(p, &r);
        }
        println!(
            "{:<14} {:>10.2}   (one bulk copy of the footprint)",
            "explicit",
            explicit.unwrap().as_millis_f64()
        );
        println!();
    }
}
