//! A domain scientist's scenario: an SGEMM whose matrices slowly outgrow
//! GPU memory — the situation UVM oversubscription exists for (paper §V).
//!
//! Sweeps the problem size across the memory boundary and prints how
//! kernel time, eviction traffic, and the effective compute rate respond,
//! reproducing the Figure 10 / Table II cliff interactively.
//!
//! ```text
//! cargo run --release --example oversubscription_cliff
//! ```

use metrics::Category;
use uvm_sim::{run, GpuConfig, SimConfig, Workload};
use workloads::SgemmParams;

fn main() {
    // 1/32-scale Titan V: 384 MiB of GPU memory; compute rate scaled
    // alongside so the compute/transfer balance matches the real card.
    let fraction = 1.0 / 32.0;
    let mut config = SimConfig::scaled(fraction);
    // Fat GEMM tiles limit occupancy: ~2 blocks per SM.
    config.gpu = GpuConfig {
        max_blocks_resident: 160,
        ..GpuConfig::default()
    };
    let gpu_flops = workloads::common::GPU_FLOPS * fraction;

    // n where 3 * 4 * n^2 exactly fills GPU memory.
    let n_full = ((config.driver.gpu_memory_bytes as f64 / 12.0).sqrt() as usize / 512) * 512;

    println!(
        "GPU memory: {} MiB; memory-full n = {n_full}",
        config.driver.gpu_memory_bytes >> 20
    );
    println!();
    println!(
        "{:>6} {:>7} {:>12} {:>9} {:>10} {:>12} {:>10}",
        "n", "ratio", "kernel_ms", "gflops", "evictions", "moved_mib", "evict_ms"
    );

    for k in -3i64..=4 {
        let n = (n_full as i64 + k * 512).max(512) as usize;
        let workload = Workload::Sgemm(SgemmParams {
            n,
            tile: 256,
            gpu_flops,
        });
        let report = run(&config, &workload);
        let flops = 2.0 * (n as f64).powi(3);
        println!(
            "{:>6} {:>7.2} {:>12.1} {:>9.1} {:>10} {:>12} {:>10.1}",
            n,
            report.subscription_ratio,
            report.total_time.as_millis_f64(),
            report.compute_rate(flops) / 1e9,
            report.counters.evictions,
            report.bytes_moved() >> 20,
            report.timers.get(Category::Eviction).as_millis_f64(),
        );
    }

    println!();
    println!("note how data moved outpaces the footprint and the compute rate");
    println!("sags once the ratio passes ~1.1 — the paper's Figure 10 cliff.");
}
