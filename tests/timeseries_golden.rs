//! Golden determinism for the telemetry timeseries: the sample stream is
//! a pure function of `(config, workload)`. Samples are taken on the
//! *simulated* clock from simulated state only, so neither the rayon
//! thread count driving a sweep nor the intra-point service-worker pool
//! may change a single bit — the whole [`Timeseries`] (grid, compaction
//! count, every integer field of every sample) must compare equal.

use bench::experiments::Scale;
use metrics::{Timeseries, TimeseriesConfig};
use uvm_sim::{PrefetchPolicy, SimConfig, Workload, WorkloadKind};

/// Figure-1-style points at the `repro --scale 16` platform: streaming
/// and random kernels, under- and over-subscribed (the over-subscribed
/// ones evict and thrash, exercising every sampled signal), with and
/// without the prefetcher. The small capacity forces in-place compaction
/// so the interval-doubling path is part of the golden surface too.
fn sampled_points() -> Vec<(SimConfig, Workload)> {
    let scale = Scale::DEFAULT;
    let mut points = Vec::new();
    for (kind, ratio, prefetch) in [
        (WorkloadKind::Regular, 0.25, true),
        (WorkloadKind::Regular, 1.2, true),
        (WorkloadKind::Random, 0.25, false),
        (WorkloadKind::Random, 1.2, false),
    ] {
        let mut cfg = scale.config();
        if !prefetch {
            cfg.driver.prefetch = PrefetchPolicy::Disabled;
        }
        cfg.driver.timeseries = TimeseriesConfig {
            enabled: true,
            interval_ns: 50_000,
            capacity: 256,
        };
        points.push((cfg, scale.workload(kind, ratio)));
    }
    points
}

#[test]
fn sample_streams_identical_across_thread_counts() {
    let mut golden: Option<Vec<Timeseries>> = None;
    for threads in [1usize, 4] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("configure thread pool");
        let reports = uvm_sim::run_sweep(sampled_points());
        assert!(
            reports.iter().all(|r| !r.timeseries.samples.is_empty()),
            "every sampled point produced samples"
        );
        let streams: Vec<Timeseries> = reports.into_iter().map(|r| r.timeseries).collect();
        match &golden {
            None => golden = Some(streams),
            Some(g) => assert_eq!(*g, streams, "sample stream diverged at {threads} threads"),
        }
    }
}

#[test]
fn sample_streams_identical_across_service_workers() {
    // 0 = auto (the simulator resolves to the rayon pool size) vs a
    // pinned pool of 4: the planning pool must be invisible in sampled
    // output, exactly like every other simulated artefact.
    let mut golden: Option<Vec<Timeseries>> = None;
    for workers in [0usize, 4] {
        let mut points = sampled_points();
        for (cfg, _) in points.iter_mut() {
            cfg.driver.service_workers = workers;
        }
        let reports = uvm_sim::run_sweep(points);
        let streams: Vec<Timeseries> = reports.into_iter().map(|r| r.timeseries).collect();
        match &golden {
            None => golden = Some(streams),
            Some(g) => assert_eq!(
                *g, streams,
                "sample stream diverged at {workers} service workers"
            ),
        }
    }
}

#[test]
fn final_sample_and_csv_reconcile_at_default_scale() {
    // The forced end-of-run sample must carry exactly the report's
    // counters/transfers, stamped at the end of the driver's critical
    // path (`driver_time`; `total_time` additionally includes the
    // engine's compute time, which the driver clock never sees). The
    // exported CSV must both validate against the schema and round-trip
    // those totals in its last row.
    for (cfg, w) in sampled_points() {
        let r = uvm_sim::run(&cfg, &w);
        let last = *r.timeseries.last().expect("run produced samples");
        assert_eq!(last.t_ns, r.driver_time.as_nanos(), "{}", r.workload);
        assert_eq!(last.faults_fetched, r.counters.faults_fetched);
        assert_eq!(last.pages_faulted_in, r.counters.pages_faulted_in);
        assert_eq!(last.pages_prefetched, r.counters.pages_prefetched);
        assert_eq!(last.evictions, r.counters.evictions);
        assert_eq!(last.pages_evicted, r.counters.pages_evicted_total());
        assert_eq!(last.thrash_pins, r.counters.thrash_pins);
        assert_eq!(last.migrated_bytes_h2d, r.transfers.h2d_bytes);
        assert_eq!(last.migrated_bytes_d2h, r.transfers.d2h_bytes);

        let csv = r.timeseries.to_csv();
        let stats = metrics::timeseries::validate_csv(&csv).expect("CSV validates");
        assert_eq!(stats.rows, r.timeseries.samples.len());
        let last_row = csv.lines().last().expect("CSV has rows");
        let cells: Vec<u64> = last_row.split(',').map(|c| c.parse().unwrap()).collect();
        assert_eq!(cells[0], r.driver_time.as_nanos());
        assert_eq!(cells[1], r.counters.faults_fetched);
    }
}

#[test]
fn compaction_engages_at_default_scale() {
    // The thrashing point produces far more grid hits than the 256-slot
    // buffer holds; the stream must compact (doubling its interval)
    // rather than truncate, and still cover the whole run.
    let (cfg, w) = sampled_points().swap_remove(3);
    let r = uvm_sim::run(&cfg, &w);
    let ts = &r.timeseries;
    assert!(ts.compactions > 0, "expected compaction at 256 samples");
    assert_eq!(ts.interval_ns, ts.base_interval_ns << ts.compactions);
    assert!(ts.samples.len() <= 256);
    assert_eq!(ts.last().unwrap().t_ns, r.driver_time.as_nanos());
}
