//! Cross-crate integration tests asserting the *shapes* of the paper's
//! results — who wins, by roughly what factor, where crossovers fall —
//! at a quick scale so CI stays fast. EXPERIMENTS.md records the
//! full-scale numbers.

use bench::experiments::{ablations, figures, tables, Scale};
use metrics::report::Table;

const SCALE: Scale = Scale::QUICK;

/// Parse a rendered table's CSV into rows of cells.
fn rows(table: &Table) -> Vec<Vec<String>> {
    table
        .to_csv()
        .lines()
        .skip(1)
        .map(|l| l.split(',').map(|c| c.to_string()).collect())
        .collect()
}

fn num(cell: &str) -> f64 {
    cell.parse()
        .unwrap_or_else(|_| panic!("not a number: {cell}"))
}

#[test]
fn table1_prefetch_reduces_faults_for_every_workload() {
    let t = tables::table1(SCALE);
    let rows = rows(&t.table);
    assert_eq!(rows.len(), 8);
    for row in &rows {
        let reduction = num(&row[3]);
        assert!(
            reduction >= 40.0,
            "{}: reduction {reduction}% below paper band",
            row[0]
        );
    }
    // Random is among the best-covered workloads (paper: 97.95%).
    let random = rows.iter().find(|r| r[0] == "random").unwrap();
    assert!(num(&random[3]) >= 90.0);
    // hpgmg is among the worst (paper: 64.06%).
    let hpgmg = rows.iter().find(|r| r[0] == "hpgmg").unwrap();
    assert!(num(&hpgmg[3]) <= num(&random[3]));
}

#[test]
fn fig1_ordering_explicit_prefetch_noprefetch() {
    let t = figures::fig1(SCALE);
    for row in rows(&t.table) {
        let (ratio, explicit, nopf, pf) = (num(&row[1]), num(&row[3]), num(&row[4]), num(&row[5]));
        assert!(explicit < nopf, "explicit always beats UVM-no-prefetch");
        if ratio < 1.0 {
            assert!(pf <= nopf * 1.05, "prefetch helps when undersubscribed");
        }
    }
    // Oversubscription costs an order of magnitude for random access.
    let rows = rows(&t.table);
    let random_under = rows
        .iter()
        .find(|r| r[0] == "random" && num(&r[1]) == 0.75)
        .unwrap();
    let random_over = rows
        .iter()
        .find(|r| r[0] == "random" && num(&r[1]) == 1.5)
        .unwrap();
    assert!(
        num(&random_over[4]) > 5.0 * num(&random_under[4]),
        "oversubscribed random at least 5x worse: {} vs {}",
        random_over[4],
        random_under[4]
    );
}

#[test]
fn fig3_base_overhead_and_random_penalty() {
    let t = figures::fig3(SCALE);
    let rows = rows(&t.table);
    // Tiny sizes: constant base overhead in the paper's 400-600us class.
    let tiny = rows.iter().find(|r| r[0] == "regular").unwrap();
    let kernel_ms = num(&tiny[2]);
    assert!(
        (0.3..0.8).contains(&kernel_ms),
        "base overhead {kernel_ms}ms out of the 400-600us class"
    );
    // Largest size: random service cost exceeds regular's.
    let last_reg = rows.iter().rfind(|r| r[0] == "regular").unwrap();
    let last_rnd = rows.iter().rfind(|r| r[0] == "random").unwrap();
    assert!(
        num(&last_rnd[5]) > 1.3 * num(&last_reg[5]),
        "random service {} vs regular {}",
        last_rnd[5],
        last_reg[5]
    );
}

#[test]
fn fig4_pma_share_amortises_with_size() {
    let t = figures::fig4(SCALE);
    let rows = rows(&t.table);
    let first = num(&rows.first().unwrap()[2]);
    let last = num(&rows.last().unwrap()[2]);
    assert!(
        first > 3.0 * last,
        "PMA share must fall with size: {first}% -> {last}%"
    );
    assert!(first > 25.0, "PMA dominates tiny sizes ({first}%)");
}

#[test]
fn fig5_batch_policy_trades_replay_cost_for_preprocessing() {
    let f3 = figures::fig3(SCALE);
    let f5 = figures::fig5(SCALE);
    let r3 = rows(&f3.table);
    let r5 = rows(&f5.table);
    // Compare the largest regular size in both.
    let big3 = r3.iter().rfind(|r| r[0] == "regular").unwrap();
    let big5 = r5.iter().rfind(|r| r[0] == "regular").unwrap();
    let (pre3, replay3) = (num(&big3[4]), num(&big3[6]));
    let (pre5, replay5) = (num(&big5[4]), num(&big5[6]));
    assert!(
        pre5 > 1.5 * pre3,
        "Batch policy inflates preprocessing: {pre3} -> {pre5}"
    );
    assert!(
        replay5 < replay3,
        "Batch policy shrinks replay-policy cost: {replay3} -> {replay5}"
    );
    // Duplicate faults appear only without flushing.
    assert!(
        num(&big5[7]) > num(&big3[7]),
        "stale duplicates inflate fetched faults"
    );
}

#[test]
fn fig9_random_an_order_of_magnitude_worse_oversubscribed() {
    let t = figures::fig9(SCALE);
    let rows = rows(&t.table);
    let reg = rows
        .iter()
        .find(|r| r[0] == "regular" && num(&r[1]) > 1.4)
        .unwrap();
    let rnd = rows
        .iter()
        .find(|r| r[0] == "random" && num(&r[1]) > 1.4)
        .unwrap();
    assert!(
        num(&rnd[2]) > 5.0 * num(&reg[2]),
        "random {} vs regular {} oversubscribed",
        rnd[2],
        reg[2]
    );
    // Data amplification: random moves several times its footprint.
    let footprint_mib = SCALE.gpu_bytes() as f64 / (1 << 20) as f64 * 1.5;
    assert!(num(&rnd[6]) > 3.0 * footprint_mib);
}

#[test]
fn table2_evictions_per_fault_rise_past_full_memory() {
    let t = tables::table2(SCALE);
    let rows = rows(&t.table);
    let mut prev_epf = -1.0;
    for row in &rows {
        let (ratio, evicted, epf) = (num(&row[1]), num(&row[3]), num(&row[4]));
        if ratio <= 1.0 {
            assert_eq!(evicted, 0.0, "no evictions while undersubscribed");
        }
        assert!(epf >= prev_epf - 0.05, "evictions/fault roughly monotone");
        prev_epf = epf;
    }
    let last = rows.last().unwrap();
    assert!(num(&last[4]) > 0.5, "deep oversubscription evicts heavily");
}

#[test]
fn fig10_compute_rate_degrades_past_the_cliff() {
    let t = figures::fig10(SCALE);
    let rows = rows(&t.table);
    let peak = rows
        .iter()
        .filter(|r| num(&r[1]) <= 1.2)
        .map(|r| num(&r[3]))
        .fold(0.0f64, f64::max);
    let deepest = rows.last().unwrap();
    assert!(
        num(&deepest[3]) < peak,
        "rate at ratio {} ({} GFLOPs) must fall below the peak {peak}",
        deepest[1],
        deepest[3]
    );
    // Data moved grows superlinearly past the boundary.
    assert!(num(&deepest[4]) > 1.2 * num(&deepest[5]));
}

#[test]
fn granularity_ablation_favours_fine_allocation_for_random() {
    let t = ablations::ablation_granularity(SCALE);
    let rows = rows(&t.table);
    let fine = num(&rows.first().unwrap()[1]);
    let coarse = num(&rows.last().unwrap()[1]);
    assert!(
        fine < coarse / 2.0,
        "64KiB granularity should at least halve the random oversubscribed time: {fine} vs {coarse}"
    );
}

#[test]
fn threshold_ablation_aggressive_prefetch_wins_undersubscribed() {
    let t = ablations::ablation_threshold(SCALE);
    let rows = rows(&t.table);
    let aggressive = num(&rows.first().unwrap()[1]);
    let conservative = num(&rows.last().unwrap()[1]);
    assert!(aggressive <= conservative * 1.02);
    // Fewer faults with the aggressive threshold.
    assert!(num(&rows.first().unwrap()[3]) <= num(&rows.last().unwrap()[3]));
}

#[test]
fn fig7_traces_cover_workload_pages() {
    let t = figures::fig7(SCALE);
    assert_eq!(t.csvs.len(), 6, "one CSV per plotted workload");
    for (name, csv) in &t.csvs {
        assert!(csv.lines().count() > 10, "{name} trace too small");
        assert!(csv.starts_with("order,page\n"));
    }
}

#[test]
fn fig8_shows_evictions_and_refaults() {
    // Needs a slightly larger platform than QUICK: with a grid smaller
    // than the resident-block window, sgemm executes in one wave and the
    // cross-wave refault pathology cannot appear.
    let t = figures::fig8(Scale {
        fraction: 1.0 / 64.0,
    });
    let rows = rows(&t.table);
    let row = &rows[0];
    assert!(num(&row[2]) > 0.0, "evictions present");
    assert!(num(&row[4]) > 0.0, "evict-then-refault present");
    let (_, csv) = &t.csvs[0];
    assert!(csv.contains("evict"), "evictions plotted on the timeline");
}
