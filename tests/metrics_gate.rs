//! End-to-end checks of the `repro` metrics surface through the real
//! binary: `--metrics-out` artefact emission + reconciliation against the
//! perf report, `check-metrics`/`report` consumption, and the
//! `regress`/`trend-import` CI gate (including the non-zero exit on a
//! doctored baseline).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

/// Fresh scratch dir under the target tmpdir, namespaced per test.
fn scratch(test: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(test);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Every value of a `name{...} value` family in an exposition, in order.
fn prom_values(text: &str, family: &str) -> Vec<u64> {
    text.lines()
        .filter(|l| l.starts_with(&format!("{family}{{")))
        .map(|l| {
            let v = l.rsplit(' ').next().unwrap();
            v.parse::<f64>().unwrap() as u64
        })
        .collect()
}

#[test]
fn metrics_out_reconciles_with_perf_report() {
    let dir = scratch("metrics_out");
    let metrics_dir = dir.join("metrics");
    let out_dir = dir.join("out");
    let run = repro(&[
        "fig1",
        "--scale",
        "16",
        "--no-progress",
        "--json",
        "--metrics-out",
        metrics_dir.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    assert!(run.status.success(), "repro failed: {}", stderr(&run));

    // The emitted artefacts re-validate through the CLI.
    let check = repro(&["check-metrics", metrics_dir.to_str().unwrap()]);
    assert!(check.status.success(), "check-metrics: {}", stderr(&check));
    assert!(stdout(&check).contains("0 failure(s)"));

    // Exposition totals reconcile exactly with the perf report's
    // simulated-work counters: both sides are sums of the same driver
    // counters, so equality is bitwise, not approximate.
    let prom = std::fs::read_to_string(metrics_dir.join("fig1/metrics.prom")).unwrap();
    let prom_faults: u64 = prom_values(&prom, "uvm_faults_fetched_total").iter().sum();
    let bench = std::fs::read_to_string(out_dir.join("BENCH_hotpaths.json")).unwrap();
    let root: serde::Value = serde_json::from_str(&bench).unwrap();
    let serde::Value::Map(keys) = &root else {
        panic!("perf report is not an object")
    };
    let Some((_, serde::Value::Seq(experiments))) =
        keys.iter().find(|(k, _)| k == "experiments")
    else {
        panic!("no experiments array")
    };
    let serde::Value::Map(fig1) = &experiments[0] else {
        panic!("experiment is not an object")
    };
    let sim_faults = fig1
        .iter()
        .find_map(|(k, v)| match (k.as_str(), v) {
            ("sim_faults", serde::Value::U64(n)) => Some(*n),
            _ => None,
        })
        .expect("sim_faults in perf report");
    assert_eq!(prom_faults, sim_faults, "exposition vs perf report faults");

    // And with the sample CSVs: summed final-row faults match the perf
    // report, and the per-point fault totals match the exposition's
    // labelled series one-for-one.
    let mut csv_faults = 0u64;
    let mut csv_point_faults = Vec::new();
    let mut csvs: Vec<_> = std::fs::read_dir(metrics_dir.join("fig1"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "csv"))
        .collect();
    csvs.sort();
    assert!(csvs.len() > 10, "fig1 sweeps many points");
    for path in &csvs {
        let text = std::fs::read_to_string(path).unwrap();
        metrics::timeseries::validate_csv(&text).expect("sample CSV validates");
        let last: Vec<u64> = text
            .lines()
            .last()
            .unwrap()
            .split(',')
            .map(|c| c.parse().unwrap())
            .collect();
        csv_point_faults.push(last[1]);
        csv_faults += last[1];
    }
    assert_eq!(csv_faults, sim_faults, "sample CSVs vs perf report faults");
    let mut prom_point_faults = prom_values(&prom, "uvm_faults_fetched_total");
    prom_point_faults.sort_unstable();
    csv_point_faults.sort_unstable();
    assert_eq!(
        prom_point_faults, csv_point_faults,
        "per-point fault totals, CSV vs exposition"
    );

    // The report renderer consumes the same directory.
    let report = repro(&["report", metrics_dir.to_str().unwrap()]);
    assert!(report.status.success(), "report: {}", stderr(&report));
    let text = stdout(&report);
    assert!(text.contains("per-run cost decomposition"));
    assert!(text.contains("fault/eviction timeline"));
}

#[test]
fn regress_gate_passes_then_fails_on_doctored_baseline() {
    let dir = scratch("regress_gate");
    let bench_json = dir.join("BENCH_hotpaths.json");
    let trend = dir.join("trend.json");

    // A perf report shaped like `repro --json` output, with two steady
    // runs' worth of history imported into the trend file.
    let mk_bench = |wall: f64, rate: f64, epf: f64, cov: f64| {
        format!(
            r#"{{"experiments": [{{"name": "fig1", "wall_seconds": {wall},
                 "sim_faults": 1000, "faults_per_sec": {rate},
                 "evictions_per_fault": {epf}, "coverage_pct": {cov}}}]}}"#
        )
    };
    for (wall, rate) in [(10.0, 1000.0), (10.3, 990.0)] {
        std::fs::write(&bench_json, mk_bench(wall, rate, 0.5, 88.0)).unwrap();
        let import = repro(&[
            "trend-import",
            trend.to_str().unwrap(),
            bench_json.to_str().unwrap(),
            "fig1",
        ]);
        assert!(import.status.success(), "trend-import: {}", stderr(&import));
    }

    // A third run consistent with history: the gate passes.
    std::fs::write(&bench_json, mk_bench(10.1, 1005.0, 0.5, 88.0)).unwrap();
    let import = repro(&[
        "trend-import",
        trend.to_str().unwrap(),
        bench_json.to_str().unwrap(),
        "fig1",
    ]);
    assert!(import.status.success());
    let ok = repro(&["regress", trend.to_str().unwrap()]);
    assert!(ok.status.success(), "steady trend must pass: {}", stderr(&ok));
    assert!(stdout(&ok).contains("regress: OK"));

    // Doctor the baseline: the newest run's wall time +60%, throughput
    // −40%. The gate must exit non-zero with a readable diff naming the
    // series and metrics.
    std::fs::write(&bench_json, mk_bench(16.0, 600.0, 0.5, 88.0)).unwrap();
    let import = repro(&[
        "trend-import",
        trend.to_str().unwrap(),
        bench_json.to_str().unwrap(),
        "fig1",
    ]);
    assert!(import.status.success());
    let bad = repro(&["regress", trend.to_str().unwrap()]);
    assert!(!bad.status.success(), "doctored trend must fail the gate");
    assert_eq!(bad.status.code(), Some(1));
    let diff = stdout(&bad);
    assert!(diff.contains("REGRESSED"), "diff table flags the regression");
    let err = stderr(&bad);
    assert!(err.contains("fig1.wall_seconds"), "stderr names the series: {err}");
    assert!(err.contains("fig1.faults_per_sec"));

    // A tolerant threshold lets the same history pass.
    let loose = repro(&["regress", trend.to_str().unwrap(), "--threshold", "0.9"]);
    assert!(loose.status.success(), "90% threshold tolerates the jump");
}

#[test]
fn regress_rejects_unusable_input() {
    let dir = scratch("regress_bad_input");
    let path = dir.join("not-a-trend.json");
    std::fs::write(&path, r#"{"experiments": []}"#).unwrap();
    let run = repro(&["regress", path.to_str().unwrap()]);
    assert_eq!(run.status.code(), Some(2), "no ci_trend key is exit 2");
    assert!(stderr(&run).contains("ci_trend"));
}
