//! Cross-crate integration tests exercising the public API end to end:
//! manual driver/engine wiring, policy extensions, serde round-trips, and
//! failure-injection scenarios that span module boundaries.

use gpu_model::{
    BlockTrace, FaultBuffer, FaultBufferConfig, GlobalPage, GpuConfig, GpuEngine, Residency,
    VaBlockIdx, WorkloadTrace,
};
use sim_engine::units::{MIB, VABLOCK_SIZE};
use sim_engine::{CostModel, SimDuration, SimRng, SimTime};
use uvm_driver::{
    DriverConfig, EvictionPolicy, ManagedSpace, PrefetchPolicy, ReplayPolicy, UvmDriver,
};
use uvm_sim::{run, SimConfig, Workload, WorkloadKind};
use workloads::{RandomParams, RegularParams};

/// Drive a custom trace through engine + driver by hand (the same loop
/// `uvm_sim::run` uses) and return the driver afterwards.
fn drive_to_completion(
    mut space_setup: impl FnMut(&mut ManagedSpace) -> WorkloadTrace,
    driver_cfg: DriverConfig,
    gpu_cfg: GpuConfig,
) -> (UvmDriver, GpuEngine) {
    let mut space = ManagedSpace::new();
    let trace = space_setup(&mut space);
    let mut driver = UvmDriver::new(
        driver_cfg,
        CostModel::default(),
        space,
        SimRng::from_seed(3),
    );
    let mut engine = GpuEngine::launch(gpu_cfg, trace, SimRng::from_seed(4));
    let mut buffer = FaultBuffer::new(FaultBufferConfig::default());
    let mut clock = SimTime::ZERO;
    for _ in 0..100_000 {
        engine.run(driver.space(), &mut buffer, clock);
        if engine.is_done() {
            return (driver, engine);
        }
        loop {
            let pass = driver.process_pass(&mut buffer, clock);
            clock += pass.time;
            if pass.replays > 0 {
                break;
            }
        }
        engine.replay();
    }
    panic!("trace did not complete");
}

#[test]
fn manual_wiring_matches_residency_expectations() {
    let (driver, engine) = drive_to_completion(
        |space| {
            let range = space.alloc(4 * VABLOCK_SIZE, "buf");
            let mut bt = BlockTrace::new(SimDuration::ZERO);
            for p in [0u64, 700, 1500, 2047] {
                bt.push_step([range.page(p)], true);
            }
            WorkloadTrace {
                name: "manual".into(),
                blocks: vec![bt],
                footprint_pages: range.num_pages,
            }
        },
        DriverConfig {
            prefetch: PrefetchPolicy::Disabled,
            gpu_memory_bytes: 64 * MIB,
            ..DriverConfig::default()
        },
        GpuConfig::default(),
    );
    assert!(engine.is_done());
    // Exactly the touched pages are resident, and all are dirty (writes).
    assert_eq!(driver.space().resident_pages(), 4);
    for p in [0u64, 700, 1500, 2047] {
        assert!(driver.space().is_resident(GlobalPage(p)));
        let vb = GlobalPage(p).vablock();
        assert!(driver
            .space()
            .dirty(vb)
            .get(GlobalPage(p).offset_in_vablock()));
    }
    assert_eq!(driver.counters().pages_faulted_in, 4);
}

#[test]
fn fault_buffer_overflow_recovers_via_replay() {
    // A tiny fault buffer forces drops; the replay path must still drain
    // the whole workload.
    let mut cfg = SimConfig::default();
    cfg.driver.gpu_memory_bytes = 64 * MIB;
    cfg.fault_buffer.capacity = 64; // far below the fault storm size
    let w = Workload::Regular(RegularParams {
        bytes: 16 * MIB,
        warps_per_block: 8,
    });
    let r = run(&cfg, &w);
    assert!(
        r.engine.faults_dropped > 0,
        "the storm must overflow the buffer"
    );
    assert_eq!(
        r.counters.pages_migrated_h2d(),
        4096,
        "yet every page arrives"
    );
}

#[test]
fn utlb_throttling_bounds_outstanding_faults() {
    let mut cfg = SimConfig::default();
    cfg.driver.gpu_memory_bytes = 64 * MIB;
    cfg.gpu.max_outstanding_per_utlb = 2;
    cfg.gpu.num_utlbs = 4;
    let w = Workload::Random(RandomParams {
        bytes: 8 * MIB,
        warps_per_block: 8,
    });
    let r = run(&cfg, &w);
    assert!(r.engine.faults_throttled > 0, "tight uTLBs must throttle");
    assert_eq!(
        r.counters.pages_migrated_h2d(),
        2048,
        "completion unaffected"
    );
}

#[test]
fn access_counter_eviction_protects_hot_blocks_end_to_end() {
    // A workload with one hot VABlock (re-read every step) plus a cold
    // stream: stock fault-LRU evicts the hot block (the paper's
    // pathology); access-counter aging keeps it resident longer, so the
    // hot block refaults fewer times.
    let build = |space: &mut ManagedSpace| {
        let hot = space.alloc(VABLOCK_SIZE, "hot");
        let cold = space.alloc(8 * VABLOCK_SIZE, "cold");
        let mut blocks = Vec::new();
        for i in 0..cold.num_pages {
            let mut bt = BlockTrace::new(SimDuration::ZERO);
            bt.push_step_mixed([(hot.page(i % 512), false), (cold.page(i), false)]);
            blocks.push(bt);
        }
        WorkloadTrace {
            name: "hot-cold".into(),
            blocks,
            footprint_pages: hot.num_pages + cold.num_pages,
        }
    };
    let run_with = |eviction: EvictionPolicy| {
        let mut space = ManagedSpace::new();
        let trace = build(&mut space);
        let driver_cfg = DriverConfig {
            prefetch: PrefetchPolicy::Disabled,
            eviction,
            gpu_memory_bytes: 3 * VABLOCK_SIZE,
            ..DriverConfig::default()
        };
        let gpu_cfg = GpuConfig {
            access_counters: gpu_model::AccessCounterConfig {
                enabled: matches!(eviction, EvictionPolicy::AccessCounterLru),
                threshold: 1, // notify on every access for a crisp signal
                ..gpu_model::AccessCounterConfig::default()
            },
            max_blocks_resident: 16,
            ..GpuConfig::default()
        };
        let mut driver = UvmDriver::new(
            driver_cfg,
            CostModel::default(),
            space,
            SimRng::from_seed(3),
        );
        let mut engine = GpuEngine::launch(gpu_cfg, trace, SimRng::from_seed(4));
        let mut buffer = FaultBuffer::new(FaultBufferConfig::default());
        let mut clock = SimTime::ZERO;
        while !engine.is_done() {
            engine.run(driver.space(), &mut buffer, clock);
            if engine.is_done() {
                break;
            }
            let notifs = engine.drain_access_notifications();
            driver.note_access_notifications(&notifs, 512, clock);
            loop {
                let pass = driver.process_pass(&mut buffer, clock);
                clock += pass.time;
                if pass.replays > 0 {
                    break;
                }
            }
            engine.replay();
        }
        driver.space().eviction_count(VaBlockIdx(0))
    };
    let stock = run_with(EvictionPolicy::FaultLru);
    let counter = run_with(EvictionPolicy::AccessCounterLru);
    assert!(
        counter < stock,
        "access counters must reduce hot-block evictions: {counter} vs {stock}"
    );
}

#[test]
fn thrash_pinning_protects_faultless_hot_data() {
    // The hot/cold scenario where refault pinning binds: a hot VABlock is
    // read constantly but faults only after being evicted (fault-blind
    // hotness). Stock LRU evicts it over and over; the thrashing detector
    // pins it after its first refault, so later evictions fall on the
    // cold stream.
    let build = |space: &mut ManagedSpace| {
        let hot = space.alloc(VABLOCK_SIZE, "hot");
        let cold = space.alloc(16 * VABLOCK_SIZE, "cold");
        let mut blocks = Vec::new();
        for i in 0..cold.num_pages {
            let mut bt = BlockTrace::new(SimDuration::ZERO);
            bt.push_step_mixed([(hot.page(i % 512), false), (cold.page(i), false)]);
            blocks.push(bt);
        }
        WorkloadTrace {
            name: "hot-cold".into(),
            blocks,
            footprint_pages: hot.num_pages + cold.num_pages,
        }
    };
    let run_with = |thrash: uvm_driver::ThrashConfig| {
        let mut space = ManagedSpace::new();
        let trace = build(&mut space);
        let driver_cfg = DriverConfig {
            prefetch: PrefetchPolicy::Disabled,
            gpu_memory_bytes: 3 * VABLOCK_SIZE,
            thrash,
            ..DriverConfig::default()
        };
        let gpu_cfg = GpuConfig {
            max_blocks_resident: 16,
            ..GpuConfig::default()
        };
        let mut driver = UvmDriver::new(
            driver_cfg,
            CostModel::default(),
            space,
            SimRng::from_seed(3),
        );
        let mut engine = GpuEngine::launch(gpu_cfg, trace, SimRng::from_seed(4));
        let mut buffer = FaultBuffer::new(FaultBufferConfig::default());
        let mut clock = SimTime::ZERO;
        while !engine.is_done() {
            engine.run(driver.space(), &mut buffer, clock);
            if engine.is_done() {
                break;
            }
            loop {
                let pass = driver.process_pass(&mut buffer, clock);
                clock += pass.time;
                if pass.replays > 0 {
                    break;
                }
            }
            engine.replay();
        }
        (
            driver.space().eviction_count(VaBlockIdx(0)),
            driver.thrash_detector().pins(),
        )
    };
    let (stock_evictions, stock_pins) = run_with(uvm_driver::ThrashConfig::default());
    assert_eq!(stock_pins, 0);
    let (pinned_evictions, pins) = run_with(uvm_driver::ThrashConfig {
        enabled: true,
        refault_threshold: 1,
        pin_duration_batches: 100_000,
    });
    assert!(pins > 0);
    assert!(
        pinned_evictions < stock_evictions,
        "pinning must reduce hot-block evictions: {pinned_evictions} vs {stock_evictions}"
    );
}

#[test]
fn adaptive_prefetch_switches_modes_end_to_end() {
    let mk = |footprint_mib: u64| {
        let mut cfg = SimConfig::default();
        cfg.driver.gpu_memory_bytes = 32 * MIB;
        cfg.driver.prefetch = PrefetchPolicy::Adaptive {
            undersubscribed_threshold: 1,
        };
        let w = Workload::Regular(RegularParams {
            bytes: footprint_mib * MIB,
            warps_per_block: 8,
        });
        run(&cfg, &w)
    };
    let under = mk(16);
    let over = mk(48);
    assert!(
        under.counters.pages_prefetched > 0,
        "aggressive prefetching when the footprint fits"
    );
    assert_eq!(
        over.counters.pages_prefetched, 0,
        "prefetching disabled once oversubscribed"
    );
}

#[test]
fn report_serde_roundtrip() {
    let mut cfg = SimConfig::default();
    cfg.driver.gpu_memory_bytes = 32 * MIB;
    cfg.driver.capture_trace = true;
    let w = Workload::with_footprint(WorkloadKind::Stream, 8 * MIB);
    let r = run(&cfg, &w);
    let json = serde_json::to_string(&r).unwrap();
    let back: uvm_sim::SimReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.total_time, r.total_time);
    assert_eq!(back.counters, r.counters);
    assert_eq!(back.trace.len(), r.trace.len());
    // Configs round-trip too.
    let cfg_json = serde_json::to_string(&cfg).unwrap();
    let cfg_back: SimConfig = serde_json::from_str(&cfg_json).unwrap();
    assert_eq!(cfg_back, cfg);
}

#[test]
fn replay_policies_agree_on_final_state() {
    let policies = [
        ReplayPolicy::Block,
        ReplayPolicy::Batch,
        ReplayPolicy::BatchFlush,
        ReplayPolicy::Once,
    ];
    let mut residents = Vec::new();
    for p in policies {
        let mut cfg = SimConfig::default();
        cfg.driver.gpu_memory_bytes = 64 * MIB;
        cfg.driver.replay_policy = p;
        let w = Workload::with_footprint(WorkloadKind::Cufft, 16 * MIB);
        let r = run(&cfg, &w);
        residents.push(r.counters.pages_migrated_h2d());
    }
    assert!(
        residents.windows(2).all(|w| w[0] == w[1]),
        "all policies migrate the same pages: {residents:?}"
    );
}

#[test]
fn managed_space_is_the_single_residency_oracle() {
    // The engine's Residency view and the driver's bookkeeping are the
    // same object: what the driver marks resident, the engine hits.
    let mut space = ManagedSpace::new();
    let range = space.alloc(VABLOCK_SIZE, "x");
    space
        .resident_mut(VaBlockIdx(0))
        .set(range.page(17).offset_in_vablock());
    space.sync_block_residency(VaBlockIdx(0));
    assert!(space.is_resident(range.page(17)));
    assert!(!space.is_resident(range.page(18)));
}
