//! Schema and round-trip tests for the Chrome-trace exporter: a traced
//! run's exported JSON must parse, satisfy every trace-event-format
//! invariant [`metrics::chrome::validate`] checks, and reconcile exactly
//! — the span leaf durations per category must sum to the driver's
//! `Timers`, with dropped leaf time still accounted when the span buffer
//! is bounded below the run's event count.

use bench::experiments::Scale;
use metrics::{chrome, ChromePoint, SpanTrace};
use uvm_sim::{SimReport, WorkloadKind};

/// One oversubscribed QUICK-scale run (faults, migrations, evictions and
/// replays all exercised) with span recording at `span_capacity`.
fn traced_report(span_capacity: usize) -> SimReport {
    let scale = Scale::QUICK;
    let mut cfg = scale.config();
    cfg.driver.record_spans = true;
    cfg.driver.span_capacity = span_capacity;
    cfg.driver.capture_trace = true;
    uvm_sim::run(&cfg, &scale.workload(WorkloadKind::Random, 1.3))
}

fn point(r: &SimReport) -> ChromePoint {
    ChromePoint {
        label: format!("{} r={:.2}", r.workload, r.subscription_ratio),
        spans: r.span_trace.clone(),
        faults: r.trace.clone(),
        fault_drops: r.trace_dropped,
        timers: r.timers,
    }
}

#[test]
fn exported_trace_parses_and_validates() {
    let r = traced_report(1 << 20);
    assert_eq!(r.span_trace.dropped, 0, "capacity ample for QUICK scale");
    let json = chrome::render(&[point(&r)]);

    // Round-trip through the JSON parser: the export is a plain JSON
    // object, not a viewer-only dialect.
    let parsed: serde::Value = serde_json::from_str(&json).expect("export parses as JSON");
    assert!(matches!(parsed, serde::Value::Map(_)));

    let stats = chrome::validate(&json).expect("export satisfies trace-event invariants");
    assert_eq!(stats.processes, 1);
    assert_eq!(stats.dropped, 0);
    assert!(stats.leaf_spans > 0, "driver work recorded as leaf spans");
    assert!(stats.container_spans > 0, "pass containers recorded");
    assert!(stats.instants > 0, "fault instants recorded");
    // `events` counts the raw traceEvents array: each container is a B+E
    // pair, plus the metadata records naming processes/threads.
    assert!(
        stats.events >= stats.leaf_spans + 2 * stats.container_spans + stats.instants,
        "event count covers spans, pairs and metadata"
    );
}

#[test]
fn span_categories_sum_to_driver_timers() {
    let r = traced_report(1 << 20);
    assert_eq!(r.span_trace.dropped, 0);
    assert_eq!(
        r.span_trace.leaf_totals(),
        r.timers,
        "per-category leaf durations sum exactly to the driver timers"
    );
}

#[test]
fn bounded_capture_drops_events_but_never_time() {
    let r = traced_report(256);
    assert!(r.span_trace.dropped > 0, "tiny buffer must overflow");
    assert!(r.span_trace.events.len() <= 256 + 64, "capacity bounds capture");
    // Dropped leaves carry their sim-time into `dropped_time`, so the
    // reconciliation invariant survives the bound…
    assert_eq!(r.span_trace.reconciled_totals(), r.timers);
    // …and the export still validates (the validator checks
    // captured + dropped_ns == timers_ns per category).
    let json = chrome::render(&[point(&r)]);
    let stats = chrome::validate(&json).expect("bounded export still validates");
    assert_eq!(stats.dropped, r.span_trace.dropped);
}

#[test]
fn span_trace_serde_round_trips() {
    let r = traced_report(1 << 20);
    let body = serde_json::to_string(&r.span_trace).expect("serialize span trace");
    let back: SpanTrace = serde_json::from_str(&body).expect("deserialize span trace");
    assert_eq!(back.events, r.span_trace.events);
    assert_eq!(back.dropped, r.span_trace.dropped);
    assert_eq!(back.dropped_time, r.span_trace.dropped_time);
}

#[test]
fn multi_point_export_keeps_processes_separate() {
    let a = traced_report(1 << 20);
    let scale = Scale::QUICK;
    let mut cfg = scale.config();
    cfg.driver.record_spans = true;
    cfg.driver.span_capacity = 1 << 20;
    let b = uvm_sim::run(&cfg, &scale.workload(WorkloadKind::Regular, 0.5));
    let json = chrome::render(&[point(&a), point(&b)]);
    let stats = chrome::validate(&json).expect("two-point export validates");
    assert_eq!(stats.processes, 2);
}
