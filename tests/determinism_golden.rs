//! Golden determinism tests: the simulation is a pure function of
//! `(config, workload)` — repeated runs, prepared-trace reuse, sweep
//! batching, and the rayon thread count must all produce bit-identical
//! `SimReport`s. Guards the allocation-free fault pipeline and the
//! parallel sweep engine against nondeterminism creeping in.

use bench::experiments::Scale;
use uvm_sim::{PrefetchPolicy, SimConfig, Workload, WorkloadKind};

/// The two shapes the paper sweeps: a streaming regular kernel that fits
/// in memory, and a random-access kernel oversubscribed past eviction.
fn golden_points() -> Vec<(SimConfig, Workload)> {
    let scale = Scale::QUICK;
    let regular = (scale.config(), scale.workload(WorkloadKind::Regular, 0.5));
    let mut oversub_cfg = scale.config();
    oversub_cfg.driver.prefetch = PrefetchPolicy::Disabled;
    let oversub = (oversub_cfg, scale.workload(WorkloadKind::Random, 1.3));
    vec![regular, oversub]
}

/// Serialize a report to compare every field (SimReport has no PartialEq;
/// JSON equality is exact for the integer counters and bit-exact for the
/// f64 ratios since both sides run the same arithmetic).
fn fingerprint(r: &uvm_sim::SimReport) -> String {
    serde_json::to_string(r).expect("serialize report")
}

#[test]
fn same_seed_same_report_twice() {
    for (cfg, w) in golden_points() {
        let a = fingerprint(&uvm_sim::run(&cfg, &w));
        let b = fingerprint(&uvm_sim::run(&cfg, &w));
        assert_eq!(a, b, "two runs of {} diverged", w.name());
    }
}

#[test]
fn prepared_run_matches_plain_run() {
    for (cfg, w) in golden_points() {
        let plain = fingerprint(&uvm_sim::run(&cfg, &w));
        let prepared = uvm_sim::prepare(&cfg, &w);
        let via_prepare = fingerprint(&uvm_sim::run_prepared(&cfg, &prepared));
        // Reusing one prepared trace must also be stable.
        let again = fingerprint(&uvm_sim::run_prepared(&cfg, &prepared));
        assert_eq!(plain, via_prepare, "prepare() changed {} results", w.name());
        assert_eq!(via_prepare, again, "prepared reuse diverged");
    }
}

#[test]
fn sweep_matches_sequential_runs_any_thread_count() {
    let sequential: Vec<String> = golden_points()
        .iter()
        .map(|(cfg, w)| fingerprint(&uvm_sim::run(cfg, w)))
        .collect();
    for threads in [1, 4] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("configure thread pool");
        let swept: Vec<String> = uvm_sim::run_sweep(golden_points())
            .iter()
            .map(fingerprint)
            .collect();
        assert_eq!(
            sequential, swept,
            "run_sweep with {threads} thread(s) diverged from sequential runs"
        );
    }
}

#[test]
fn sweep_trace_dedup_preserves_results() {
    // Same (workload, seed) under different driver configs: the sweep
    // generates the trace once and shares it — results must still match
    // fully independent runs.
    let scale = Scale::QUICK;
    let w = scale.workload(WorkloadKind::Random, 1.3);
    let mut no_prefetch = scale.config();
    no_prefetch.driver.prefetch = PrefetchPolicy::Disabled;
    let points = vec![
        (scale.config(), w.clone()),
        (no_prefetch.clone(), w.clone()),
    ];
    let swept: Vec<String> = uvm_sim::run_sweep(points).iter().map(fingerprint).collect();
    let independent = vec![
        fingerprint(&uvm_sim::run(&scale.config(), &w)),
        fingerprint(&uvm_sim::run(&no_prefetch, &w)),
    ];
    assert_eq!(swept, independent);
}
