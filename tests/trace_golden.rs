//! Golden determinism for the span tracer: the recorded span stream is a
//! pure function of `(config, workload)` in its *sim-time* fields — only
//! `wall_ns` (host wall-clock) may differ between runs. In particular the
//! rayon thread count driving a sweep must not change a single event,
//! because each point's driver runs single-threaded and the sweep returns
//! reports in input order.

use bench::experiments::Scale;
use metrics::{SpanEvent, SpanTrace, DEFAULT_SPAN_CAPACITY};
use uvm_sim::{PrefetchPolicy, SimConfig, Workload, WorkloadKind};

/// Figure-1-style points at the `repro --scale 16` platform
/// (`Scale::DEFAULT` = 12 GB / 16): streaming and random kernels, under-
/// and over-subscribed, with and without the prefetcher.
fn traced_points() -> Vec<(SimConfig, Workload)> {
    let scale = Scale::DEFAULT;
    let mut points = Vec::new();
    for (kind, ratio, prefetch) in [
        (WorkloadKind::Regular, 0.25, true),
        (WorkloadKind::Regular, 1.2, true),
        (WorkloadKind::Random, 0.25, false),
        (WorkloadKind::Random, 1.2, false),
    ] {
        let mut cfg = scale.config();
        if !prefetch {
            cfg.driver.prefetch = PrefetchPolicy::Disabled;
        }
        cfg.driver.record_spans = true;
        cfg.driver.span_capacity = DEFAULT_SPAN_CAPACITY;
        points.push((cfg, scale.workload(kind, ratio)));
    }
    points
}

/// The span stream with the one legitimately nondeterministic field
/// (`wall_ns`) masked out; everything else must be bit-identical.
fn sim_time_view(trace: &SpanTrace) -> Vec<SpanEvent> {
    trace
        .events
        .iter()
        .map(|e| {
            let mut e = *e;
            e.wall_ns = 0;
            e
        })
        .collect()
}

#[test]
fn span_streams_identical_across_thread_counts() {
    let mut golden: Option<Vec<Vec<SpanEvent>>> = None;
    let mut golden_drops: Option<Vec<u64>> = None;
    for threads in [1usize, 4] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("configure thread pool");
        let reports = uvm_sim::run_sweep(traced_points());
        assert!(
            reports.iter().all(|r| !r.span_trace.events.is_empty()),
            "every traced point recorded spans"
        );
        let streams: Vec<Vec<SpanEvent>> =
            reports.iter().map(|r| sim_time_view(&r.span_trace)).collect();
        let drops: Vec<u64> = reports.iter().map(|r| r.span_trace.dropped).collect();
        match (&golden, &golden_drops) {
            (None, _) => {
                golden = Some(streams);
                golden_drops = Some(drops);
            }
            (Some(g), Some(d)) => {
                assert_eq!(
                    *g, streams,
                    "span sim-time stream diverged at {threads} threads"
                );
                assert_eq!(*d, drops, "drop counts diverged at {threads} threads");
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn span_streams_identical_across_service_workers() {
    // The intra-point planning pool must be invisible in everything
    // simulated: span streams (minus wall_ns), timers, counters, fault
    // traces. Only host wall time may change with the worker count.
    // 0 (auto, treated as serial by the simulator) is covered too: the
    // resolution path must not leak into simulated output either.
    let mut golden: Option<Vec<(Vec<SpanEvent>, String)>> = None;
    for workers in [0usize, 1, 4] {
        let mut points = traced_points();
        for (cfg, _) in points.iter_mut() {
            cfg.driver.service_workers = workers;
        }
        let reports = uvm_sim::run_sweep(points);
        let views: Vec<(Vec<SpanEvent>, String)> = reports
            .iter()
            .map(|r| {
                let summary = format!(
                    "{:?}|{:?}|{}|{}",
                    r.timers, r.counters, r.total_time, r.trace.len()
                );
                (sim_time_view(&r.span_trace), summary)
            })
            .collect();
        match &golden {
            None => golden = Some(views),
            Some(g) => assert_eq!(
                *g, views,
                "simulated output diverged at {workers} service workers"
            ),
        }
    }
}

#[test]
fn spans_reconcile_at_default_scale() {
    // The per-category reconciliation invariant holds at the full
    // `--scale 16` experiment size, not just the QUICK smoke scale.
    let (cfg, w) = traced_points().swap_remove(3);
    let r = uvm_sim::run(&cfg, &w);
    assert_eq!(r.span_trace.reconciled_totals(), r.timers);
}
